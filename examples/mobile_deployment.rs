//! Mobile deployment comparison: NeRFlex vs Single-NeRF (MobileNeRF) vs
//! Block-NeRF on both evaluation devices.
//!
//! This is a runnable, reduced-scale version of the paper's Figs. 5 and 6:
//! the same decision logic, with the configuration space and device budgets
//! scaled down so it completes in a couple of minutes on a laptop.
//!
//! ```bash
//! cargo run --release --example mobile_deployment
//! # share bakes across invocations via the persistent on-disk store:
//! NERFLEX_CACHE_DIR=.nerflex-bake-cache cargo run --release --example mobile_deployment
//! # additionally share them across machines through a common remote:
//! NERFLEX_CACHE_DIR=.nerflex-bake-cache NERFLEX_REMOTE_DIR=/mnt/farm/nerflex-store \
//!     cargo run --release --example mobile_deployment
//! ```

use nerflex::bake::BakeConfig;
use nerflex::core::baselines::{bake_block_nerf, bake_single_nerf, BaselineResult};
use nerflex::core::evaluation::{evaluate_baseline, evaluate_deployment};
use nerflex::core::experiments::EvaluationScene;
use nerflex::core::pipeline::{NerflexPipeline, PipelineOptions};
use nerflex::core::report::{fmt_f64, Table};
use nerflex::device::DeviceSpec;

/// Reduced-scale device models with ceilings derived from the measured
/// baseline sizes, so the paper's loading story survives the smaller assets:
/// Single-NeRF exceeds the iPhone-like ceiling but loads (degraded) on the
/// Pixel-like device, Block-NeRF exceeds both, NeRFlex fits both budgets.
fn scaled_devices(single: &BaselineResult, block: &BaselineResult) -> Vec<DeviceSpec> {
    let (iphone, pixel) = DeviceSpec::derived_evaluation_pair(
        single.workload.data_size_mb,
        block.workload.data_size_mb,
    );
    vec![iphone, pixel]
}

fn main() {
    let seed = 7;
    let built = EvaluationScene::Scene3.build(seed);
    let dataset = built.dataset(5, 2, 80);
    // The reduced-scale stand-in for the MobileNeRF default (128, 17).
    let baseline_config = BakeConfig::new(40, 9);
    let single_bake = bake_single_nerf(&built.scene, baseline_config);
    let block_bake = bake_block_nerf(&built.scene, baseline_config);

    let mut table = Table::new(
        "NeRFlex vs baselines (Scene 3, reduced scale)",
        &["device", "method", "size (MB)", "SSIM", "avg FPS", "renders"],
    );

    // NeRFlex prepares the whole fleet in one pass: segmentation and
    // profiling run once, each device pays only for selection under its own
    // budget plus incremental baking through the shared cache. With
    // NERFLEX_CACHE_DIR set the cache is the persistent on-disk store (and
    // with NERFLEX_REMOTE_DIR a local layer over a shared remote), and a
    // re-run of this example re-bakes nothing.
    let mut options = PipelineOptions::quick();
    if let Some(local) = std::env::var_os("NERFLEX_CACHE_DIR") {
        options.store = match std::env::var_os("NERFLEX_REMOTE_DIR") {
            None => nerflex::bake::StoreOptions::dir(local),
            Some(remote) => nerflex::bake::StoreOptions::shared(local, remote),
        };
    }
    let devices = scaled_devices(&single_bake, &block_bake);
    let fleet = NerflexPipeline::new(options)
        .try_deploy_fleet(&built.scene, &dataset, &devices)
        .expect("fleet deploy");

    for (device, deployment) in devices.iter().zip(&fleet.deployments) {
        let nerflex = evaluate_deployment(deployment, &built.scene, &dataset, 400, seed);
        // The baselines always use the fixed recommended configuration.
        let single = evaluate_baseline(&single_bake, &built.scene, &dataset, device, 400, seed);
        let block = evaluate_baseline(&block_bake, &built.scene, &dataset, device, 400, seed);
        for eval in [&nerflex, &single, &block] {
            table.push_row(vec![
                device.name.clone(),
                eval.method.clone(),
                fmt_f64(eval.size_mb, 1),
                fmt_f64(eval.ssim, 3),
                fmt_f64(eval.session.average_fps, 1),
                eval.renders().to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "fleet preparation: segmentation x{}, profiling x{}, selection x{}, bake cache {}",
        fleet.stage_runs.segmentation,
        fleet.stage_runs.profiling,
        fleet.stage_runs.selection,
        fleet.cache,
    );
    println!(
        "Expected shape (mirrors the paper): Block-NeRF has the best quality but exceeds the\n\
         memory ceiling and fails to render; Single-NeRF has the lowest quality and may also\n\
         fail on the tighter device; NeRFlex fits the budget on both devices with quality close\n\
         to Block-NeRF and the highest frame rates."
    );
}
