//! Mobile deployment comparison: NeRFlex vs Single-NeRF (MobileNeRF) vs
//! Block-NeRF on both evaluation devices.
//!
//! This is a runnable, reduced-scale version of the paper's Figs. 5 and 6:
//! the same decision logic, with the configuration space and device budgets
//! scaled down so it completes in a couple of minutes on a laptop.
//!
//! ```bash
//! cargo run --release --example mobile_deployment
//! ```

use nerflex::bake::BakeConfig;
use nerflex::core::baselines::{bake_block_nerf, bake_single_nerf};
use nerflex::core::evaluation::{evaluate_baseline, evaluate_deployment};
use nerflex::core::experiments::EvaluationScene;
use nerflex::core::pipeline::{NerflexPipeline, PipelineOptions};
use nerflex::core::report::{fmt_f64, Table};
use nerflex::device::DeviceSpec;

/// Scaled-down device models: budgets divided by 10 so the reduced
/// configuration space exercises the same memory-ceiling behaviour.
fn scaled_devices() -> Vec<DeviceSpec> {
    DeviceSpec::evaluation_devices()
        .into_iter()
        .map(|mut d| {
            d.hard_memory_limit_mb /= 10.0;
            d.recommended_budget_mb /= 10.0;
            d.soft_memory_limit_mb /= 10.0;
            d.fps_drop_per_mb_over_soft *= 10.0;
            d
        })
        .collect()
}

fn main() {
    let seed = 7;
    let built = EvaluationScene::Scene3.build(seed);
    let dataset = built.dataset(5, 2, 80);
    // The reduced-scale stand-in for the MobileNeRF default (128, 17).
    let baseline_config = BakeConfig::new(40, 9);

    let mut table = Table::new(
        "NeRFlex vs baselines (Scene 3, reduced scale)",
        &["device", "method", "size (MB)", "SSIM", "avg FPS", "renders"],
    );

    for device in scaled_devices() {
        // NeRFlex adapts its configurations to the device budget.
        let deployment = NerflexPipeline::new(PipelineOptions::quick()).run(&built.scene, &dataset, &device);
        let nerflex = evaluate_deployment(&deployment, &built.scene, &dataset, 400, seed);
        // The baselines always use the fixed recommended configuration.
        let single = evaluate_baseline(
            &bake_single_nerf(&built.scene, baseline_config),
            &built.scene,
            &dataset,
            &device,
            400,
            seed,
        );
        let block = evaluate_baseline(
            &bake_block_nerf(&built.scene, baseline_config),
            &built.scene,
            &dataset,
            &device,
            400,
            seed,
        );
        for eval in [&nerflex, &single, &block] {
            table.push_row(vec![
                device.name.clone(),
                eval.method.clone(),
                fmt_f64(eval.size_mb, 1),
                fmt_f64(eval.ssim, 3),
                fmt_f64(eval.session.average_fps, 1),
                eval.renders().to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Expected shape (mirrors the paper): Block-NeRF has the best quality but exceeds the\n\
         memory ceiling and fails to render; Single-NeRF has the lowest quality and may also\n\
         fail on the tighter device; NeRFlex fits the budget on both devices with quality close\n\
         to Block-NeRF and the highest frame rates."
    );
}
