//! Mobile deployment comparison: NeRFlex vs Single-NeRF (MobileNeRF) vs
//! Block-NeRF on both evaluation devices, plus a watch-class tier whose
//! budget is so tight the selector degrades objects to gaussian splat
//! clouds (`docs/splats.md`) instead of failing to deploy.
//!
//! This is a runnable, reduced-scale version of the paper's Figs. 5 and 6:
//! the same decision logic, with the configuration space and device budgets
//! scaled down so it completes in a couple of minutes on a laptop. The
//! scene is Scene 3 plus one extra soft-geometry object (a smooth beanbag)
//! — the kind of shape whose splat cloud keeps most of the visual quality
//! at a small fraction of the mesh bytes.
//!
//! ```bash
//! cargo run --release --example mobile_deployment
//! # share bakes across invocations via the persistent on-disk store:
//! NERFLEX_CACHE_DIR=.nerflex-bake-cache cargo run --release --example mobile_deployment
//! # additionally share them across machines through a common remote:
//! NERFLEX_CACHE_DIR=.nerflex-bake-cache NERFLEX_REMOTE_DIR=/mnt/farm/nerflex-store \
//!     cargo run --release --example mobile_deployment
//! ```

use nerflex::bake::BakeConfig;
use nerflex::core::baselines::{bake_block_nerf, bake_single_nerf, BaselineResult};
use nerflex::core::evaluation::{evaluate_baseline, evaluate_deployment};
use nerflex::core::experiments::EvaluationScene;
use nerflex::core::pipeline::{NerflexPipeline, PipelineOptions};
use nerflex::core::report::{fmt_f64, Table};
use nerflex::device::DeviceSpec;
use nerflex::image::Color;
use nerflex::math::Vec3;
use nerflex::profile::SplatSampleRange;
use nerflex::scene::appearance::Appearance;
use nerflex::scene::dataset::Dataset;
use nerflex::scene::object::ObjectModel;
use nerflex::scene::scene::Scene;
use nerflex::scene::sdf::Sdf;
use nerflex::solve::DpSelector;
use std::sync::Arc;

/// Reduced-scale device models with ceilings derived from the measured
/// baseline sizes, so the paper's loading story survives the smaller assets:
/// Single-NeRF exceeds the iPhone-like ceiling but loads (degraded) on the
/// Pixel-like device, Block-NeRF exceeds both, NeRFlex fits both budgets.
/// The watch-class tier sits far below every all-mesh assignment, so
/// NeRFlex must hand objects to the splat family to deploy at all (both
/// baselines simply fail to load there).
fn scaled_devices(single: &BaselineResult, block: &BaselineResult) -> Vec<DeviceSpec> {
    let (iphone, pixel) = DeviceSpec::derived_evaluation_pair(
        single.workload.data_size_mb,
        block.workload.data_size_mb,
    );
    vec![iphone, pixel, watch_tier()]
}

/// A watch-class device tier. 0.1 MB is far below the cheapest all-mesh
/// assignment of this scene yet several times the all-splat minimum (a
/// 128-splat cloud is 4 KiB), so the configuration selector must hand most
/// objects to the splat family — and keeps a cheap mesh only where the
/// quality models say it earns its bytes.
fn watch_tier() -> DeviceSpec {
    DeviceSpec {
        name: "Watch-class".to_string(),
        memory_gb: 1.0,
        hard_memory_limit_mb: 0.12,
        recommended_budget_mb: 0.1,
        base_fps: 30.0,
        fps_drop_per_mb_over_soft: 0.0,
        soft_memory_limit_mb: 0.1,
        fps_drop_per_100k_quads: 0.0,
        min_fps: 2.0,
    }
}

/// The extra soft-geometry object: a smooth two-lobe blob with low-frequency
/// appearance — almost no surface detail for the mesh family's atlas and MLP
/// to earn their bytes on, and an ideal candidate for a splat cloud.
fn beanbag() -> ObjectModel {
    let body = Sdf::Ellipsoid { radii: Vec3::new(0.45, 0.3, 0.45) };
    let top =
        Sdf::Ellipsoid { radii: Vec3::new(0.3, 0.22, 0.3) }.translated(Vec3::new(0.0, 0.28, 0.0));
    ObjectModel {
        name: "beanbag".to_string(),
        sdf: body.smooth_union(top, 0.15),
        appearance: Appearance::Noise {
            base: Color::new(0.45, 0.3, 0.55),
            accent: Color::new(0.6, 0.45, 0.7),
            frequency: 1.0,
            octaves: 1,
        },
    }
}

fn main() {
    let seed = 7;
    // Scene 3's five random objects plus the soft beanbag, re-placed as one
    // six-object scene.
    let built = EvaluationScene::Scene3.build(seed);
    let mut models: Vec<ObjectModel> =
        built.scene.objects().iter().map(|o| o.model.clone()).collect();
    models.push(beanbag());
    let scene = Scene::from_models(models, seed);
    let dataset = Dataset::generate(&scene, 5, 2, 80, 80);
    // The reduced-scale stand-in for the MobileNeRF default (128, 17).
    let baseline_config = BakeConfig::new(40, 9);
    let single_bake = bake_single_nerf(&scene, baseline_config);
    let block_bake = bake_block_nerf(&scene, baseline_config);

    let mut table = Table::new(
        "NeRFlex vs baselines (Scene 3 + beanbag, reduced scale)",
        &["device", "method", "size (MB)", "SSIM", "avg FPS", "renders"],
    );

    // NeRFlex prepares the whole fleet in one pass: segmentation and
    // profiling run once, each device pays only for selection under its own
    // budget plus incremental baking through the shared cache. With
    // NERFLEX_CACHE_DIR set the cache is the persistent on-disk store (and
    // with NERFLEX_REMOTE_DIR a local layer over a shared remote), and a
    // re-run of this example re-bakes nothing.
    //
    // The splat family rides the same pass: the profiler samples a splat
    // count ladder next to the mesh grid, the configuration space carries
    // splat candidates, and the DP quantization is tightened well below the
    // splat payload sizes so the watch-class budget stays representable.
    let mut options =
        PipelineOptions::quick().with_selector(Arc::new(DpSelector::with_quantization(0.002)));
    options.profiler = options.profiler.with_splats(SplatSampleRange::quick());
    options.space = options.space.clone().with_splats(24, vec![128, 256, 512, 1024]);
    if let Some(local) = std::env::var_os("NERFLEX_CACHE_DIR") {
        options.store = match std::env::var_os("NERFLEX_REMOTE_DIR") {
            None => nerflex::bake::StoreOptions::dir(local),
            Some(remote) => nerflex::bake::StoreOptions::shared(local, remote),
        };
    }
    let devices = scaled_devices(&single_bake, &block_bake);
    let fleet = NerflexPipeline::new(options)
        .try_deploy_fleet(&scene, &dataset, &devices)
        .expect("fleet deploy");

    for (device, deployment) in devices.iter().zip(&fleet.deployments) {
        let nerflex = evaluate_deployment(deployment, &scene, &dataset, 400, seed);
        // The baselines always use the fixed recommended configuration.
        let single = evaluate_baseline(&single_bake, &scene, &dataset, device, 400, seed);
        let block = evaluate_baseline(&block_bake, &scene, &dataset, device, 400, seed);
        for eval in [&nerflex, &single, &block] {
            table.push_row(vec![
                device.name.clone(),
                eval.method.clone(),
                fmt_f64(eval.size_mb, 1),
                fmt_f64(eval.ssim, 3),
                fmt_f64(eval.session.average_fps, 1),
                eval.renders().to_string(),
            ]);
        }
    }
    println!("{table}");

    // The watch-class deployment, object by object: which representation
    // family each object shipped as, and what it cost.
    let watch = fleet.deployments.last().expect("the watch tier deploys");
    let mut mix = Table::new(
        "Watch-class tier: representation family per object",
        &["object", "family", "config", "size"],
    );
    for asset in &watch.assets {
        mix.push_row(vec![
            asset.name.clone(),
            asset.config.family.name().to_string(),
            format!("{}", asset.config),
            format!("{:.1} KiB", asset.size_bytes() as f64 / 1024.0),
        ]);
    }
    println!("{mix}");
    let splat_assets = watch.assets.iter().filter(|a| a.splats.is_some()).count();
    println!(
        "watch tier: {splat_assets}/{} objects shipped as splat clouds, {:.1} KiB total \
         (budget {:.1} KiB)\n",
        watch.assets.len(),
        watch.selection.total_size_mb * 1024.0,
        watch.device.recommended_budget_mb * 1024.0,
    );

    println!(
        "fleet preparation: segmentation x{}, profiling x{}, selection x{}, bake cache {}",
        fleet.stage_runs.segmentation,
        fleet.stage_runs.profiling,
        fleet.stage_runs.selection,
        fleet.cache,
    );
    println!(
        "Expected shape (mirrors the paper): Block-NeRF has the best quality but exceeds the\n\
         memory ceiling and fails to render; Single-NeRF has the lowest quality and may also\n\
         fail on the tighter device; NeRFlex fits the budget on both devices with quality close\n\
         to Block-NeRF and the highest frame rates. On the watch-class tier both baselines\n\
         fail to load outright, while NeRFlex degrades gracefully to gaussian splat clouds\n\
         (docs/splats.md) and still ships the whole scene."
    );
}
