//! Fleet deployment service demo: a duplicate-heavy burst of deployment
//! requests flowing through [`DeployService`], with scene-level coalescing,
//! store-level in-flight dedup, and priority + warm-cache-first ordering.
//!
//! Twelve requests arrive for two distinct scenes and three devices, most
//! of them duplicates — the shape of a real fleet rollout, where many
//! devices ask for the same content at once. The service runs segmentation
//! and profiling once per distinct scene, bakes nothing twice, and streams
//! the outcomes back as they complete. Its outputs are byte-identical to
//! what the blocking `try_deploy_fleet` path would produce for the same
//! requests (`docs/service.md`).
//!
//! The demo also exercises the request lifecycle: a queue limit of ten
//! sheds the two lowest-priority stragglers at admission, and one queued
//! duplicate is cancelled before it runs — both settle as classified
//! outcomes, never as lost tickets.
//!
//! ```bash
//! cargo run --release --example deploy_service
//! # with background executor threads instead of inline processing:
//! NERFLEX_EXECUTORS=3 cargo run --release --example deploy_service
//! ```

use nerflex::core::experiments::EvaluationScene;
use nerflex::core::pipeline::PipelineOptions;
use nerflex::core::report::Table;
use nerflex::core::service::{DeployRequest, DeployService, ServiceOptions};
use nerflex::device::DeviceSpec;
use std::sync::Arc;

fn main() {
    let executors: usize =
        std::env::var("NERFLEX_EXECUTORS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);

    // Two distinct scenes; everything else in the burst is a duplicate.
    let built_a = EvaluationScene::Scene3.build(7);
    let built_b = EvaluationScene::Scene4.build(7);
    let scenes = [
        (Arc::new(built_a.dataset(4, 1, 64)), Arc::new(built_a.scene)),
        (Arc::new(built_b.dataset(4, 1, 64)), Arc::new(built_b.scene)),
    ];
    let kiosk = {
        let mut spec = DeviceSpec::pixel_4();
        spec.name = "kiosk display".to_string();
        spec.recommended_budget_mb = 60.0;
        spec
    };
    let devices = [DeviceSpec::iphone_13(), DeviceSpec::pixel_4(), kiosk];

    let service = DeployService::new(
        ServiceOptions::inline(PipelineOptions::quick())
            .with_executors(executors)
            .with_queue_limit(10),
    );

    // The burst: every (scene, device) pair twice, late requests marked
    // urgent so they jump the queue. The queue limit of ten sheds the two
    // lowest-priority stragglers at admission.
    let mut labels = std::collections::BTreeMap::new();
    let mut first_ticket = None;
    let mut shed_at_admission = 0usize;
    for round in 0..2 {
        for (scene_idx, (dataset, scene)) in scenes.iter().enumerate() {
            for device in &devices {
                let priority = if round == 1 && scene_idx == 0 { 5 } else { 0 };
                let request =
                    DeployRequest::new(Arc::clone(scene), Arc::clone(dataset), device.clone())
                        .with_priority(priority);
                match service.submit(request) {
                    Ok(ticket) => {
                        first_ticket.get_or_insert(ticket);
                        labels.insert(
                            ticket.id(),
                            format!("scene {} on {} (prio {priority})", scene_idx + 1, device.name),
                        );
                    }
                    Err(err) => {
                        shed_at_admission += 1;
                        println!(
                            "shed at admission: scene {} on {} (prio {priority}): {err}",
                            scene_idx + 1,
                            device.name
                        );
                    }
                }
            }
        }
    }
    // Cancel one queued duplicate before anything runs: it settles as a
    // `Cancelled` outcome and its (scene, device) twin still deploys.
    let cancelled_ticket = first_ticket.expect("first request admitted");
    assert!(service.cancel(cancelled_ticket), "queued request cancels");
    println!(
        "\nadmitted {} requests over {} distinct scenes ({shed_at_admission} shed), \
         cancelled ticket {}, executors={executors}\n",
        labels.len(),
        scenes.len(),
        cancelled_ticket.id()
    );

    let mut table = Table::new(
        "deployment outcomes (completion order)",
        &["ticket", "request", "coalesced", "size (MB)", "fingerprint"],
    );
    for outcome in service.drain() {
        let ticket = outcome.ticket;
        match outcome.into_success() {
            Ok(done) => table.push_row(vec![
                ticket.id().to_string(),
                labels[&ticket.id()].clone(),
                if done.coalesced { "yes" } else { "no (paid the stages)" }.to_string(),
                format!("{:.1}", done.deployment.workload().data_size_mb),
                format!("{:016x}", done.deployment_fingerprint),
            ]),
            Err(err) => table.push_row(vec![
                ticket.id().to_string(),
                labels[&ticket.id()].clone(),
                "-".to_string(),
                "-".to_string(),
                format!("{err}"),
            ]),
        }
    }
    println!("{}", table.render());

    let stats = service.stats();
    println!("\nservice: {stats}");
    let cache = service.cache_stats();
    println!(
        "bake cache: {} misses (work actually paid), {} hits, {} in-flight dedups",
        cache.misses, cache.hits, stats.bake_coalesced
    );
    assert_eq!(stats.shared_stage_runs, scenes.len(), "one shared-stage run per distinct scene");
    assert_eq!(stats.shed as usize, shed_at_admission, "both sheds happened at admission");
    assert_eq!(stats.cancelled, 1, "exactly one request was cancelled");
    service.shutdown();
}
