//! Lightweight-profiler demonstration: fit the white-box size/quality models
//! from a handful of variable-step samples and validate them against ground
//! truth on held-out configurations — a runnable version of the paper's
//! Fig. 3 and of its profiler error analysis.
//!
//! ```bash
//! cargo run --release --example profiler_fit
//! ```

use nerflex::core::report::{fmt_f64, Table};
use nerflex::profile::error::{analyze_errors, holdout_grid};
use nerflex::profile::measurement::MeasurementSettings;
use nerflex::profile::sampling::SampleRange;
use nerflex::profile::{build_profile, ProfilerOptions};
use nerflex::scene::object::CanonicalObject;

fn main() {
    let object = CanonicalObject::Chair;
    let model = object.build();
    // Reduced-scale range (the paper sweeps g to 128 and p to 45; see the
    // fig3 benchmark binary for the full-scale sweep).
    let options = ProfilerOptions {
        range: SampleRange { g_min: 10, g_max: 48, p_min: 3, p_max: 11 },
        measurement: MeasurementSettings {
            views: 3,
            resolution: 72,
            ..MeasurementSettings::default()
        },
        ..ProfilerOptions::default()
    };

    println!("profiling object '{}' with the variable-step sampling strategy ...", object.name());
    let profile = build_profile(&model, 0, &options);

    let mut samples = Table::new(
        "Sample points used for curve fitting",
        &["g", "p", "measured MB", "measured SSIM", "predicted MB", "predicted SSIM"],
    );
    for s in &profile.samples {
        samples.push_row(vec![
            s.config.grid.to_string(),
            s.config.patch.to_string(),
            fmt_f64(s.size_mb, 2),
            fmt_f64(s.ssim, 3),
            fmt_f64(profile.predict_size(s.config.grid, s.config.patch), 2),
            fmt_f64(profile.predict_quality(s.config.grid, s.config.patch), 3),
        ]);
    }
    println!("{samples}");

    println!(
        "fitted size model:    S(g,p) = {:.3e}·(g{:+.2})³·(p{:+.2})² + {:.2} MB",
        profile.size_model.k, profile.size_model.a, profile.size_model.b, profile.size_model.m
    );
    println!(
        "fitted quality model: Q(g,p) = {:.3} − {:.3e}/((g{:+.2})³·(p{:+.2})²)\n",
        profile.quality_model.q_inf,
        profile.quality_model.k,
        profile.quality_model.a,
        profile.quality_model.b
    );

    // Held-out validation on configurations the fitter never saw.
    let holdout = holdout_grid(12, 44, 4, 10, 3, 3);
    let analysis = analyze_errors(&model, &profile, &holdout, &options.measurement);
    println!("held-out validation over {} configurations:", analysis.configurations);
    println!(
        "  quality error: mean {:.4}  std {:.4}   (paper reports 0.0065 ± 0.0088 at full scale)",
        analysis.quality_error_mean, analysis.quality_error_std
    );
    println!(
        "  size error:    mean {:.2} MB  std {:.2} MB (paper reports 3.34 ± 2.73 MB at full scale)",
        analysis.size_error_mean, analysis.size_error_std
    );
}
