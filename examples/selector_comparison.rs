//! Configuration-selector ablation: the paper's DP (Algorithm 1) against the
//! Fairness and SLSQP baselines, plus the greedy and exhaustive extensions —
//! a runnable, reduced-scale version of Figs. 7 and 8.
//!
//! ```bash
//! cargo run --release --example selector_comparison
//! ```

use nerflex::core::experiments::EvaluationScene;
use nerflex::core::report::{fmt_f64, Table};
use nerflex::profile::{build_profile, ObjectProfile, ProfilerOptions};
use nerflex::solve::{
    ConfigSelector, ConfigSpace, DpSelector, ExhaustiveSelector, FairnessSelector, GreedySelector,
    SelectionProblem, SlsqpSelector,
};

fn main() {
    let seed = 19;
    let built = EvaluationScene::Scene4.build(seed);
    let options = ProfilerOptions::quick();
    let space = ConfigSpace::quick();

    println!("fitting lightweight profiles for {} objects ...", built.scene.len());
    let profiles: Vec<ObjectProfile> = built
        .scene
        .objects()
        .iter()
        .map(|obj| build_profile(&obj.model, obj.id, &options))
        .collect();
    for p in &profiles {
        println!(
            "  {:<10} size(40,9) ≈ {:>6.2} MB   quality(40,9) ≈ {:.3}",
            p.name,
            p.predict_size(40, 9),
            p.predict_quality(40, 9)
        );
    }

    // A budget tight enough that the allocation strategy matters.
    let budget_mb = profiles.iter().map(|p| p.predict_size(40, 9)).sum::<f64>() * 0.55;
    let problem = SelectionProblem::from_profiles(&profiles, &space, budget_mb);
    println!("\nbudget H = {budget_mb:.1} MB\n");

    let selectors: Vec<Box<dyn ConfigSelector>> = vec![
        Box::new(DpSelector::default()),
        Box::new(FairnessSelector),
        Box::new(SlsqpSelector::new(space.clone())),
        Box::new(GreedySelector),
        Box::new(ExhaustiveSelector::default()),
    ];

    let mut summary = Table::new(
        "Selector comparison (Scene 4, reduced scale)",
        &["selector", "total size (MB)", "mean predicted SSIM", "feasible"],
    );
    let mut per_object = Table::new(
        "Per-object memory allocation (MB)",
        &["selector", "hotdog", "ficus", "chair", "ship", "lego"],
    );

    for selector in &selectors {
        let outcome = selector.select(&problem);
        summary.push_row(vec![
            outcome.selector.clone(),
            fmt_f64(outcome.total_size_mb, 1),
            fmt_f64(outcome.mean_quality(), 3),
            outcome.feasible.to_string(),
        ]);
        let mut row = vec![outcome.selector.clone()];
        for obj in built.scene.objects() {
            let size =
                outcome.assignment_for(obj.id).map(|a| a.predicted_size_mb).unwrap_or(f64::NAN);
            row.push(fmt_f64(size, 1));
        }
        per_object.push_row(row);
    }

    println!("{summary}");
    println!("{per_object}");
    println!(
        "Expected shape: the DP matches the exhaustive optimum, Fairness wastes budget on simple\n\
         objects (hotdog/ficus) that are already saturated, and SLSQP's rounding/initialisation can\n\
         misallocate — the complex objects (ship, lego) receive the extra memory only under the DP."
    );
}
