//! Quickstart: deploy a complex five-object scene to an iPhone 13 with
//! NeRFlex and report quality, size and frame rate.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use nerflex::core::evaluation::evaluate_deployment;
use nerflex::core::experiments::EvaluationScene;
use nerflex::core::pipeline::{NerflexPipeline, PipelineOptions};
use nerflex::device::DeviceSpec;

fn main() {
    let seed = 42;
    println!("NeRFlex quickstart — Scene 4 (five distinct objects) on an iPhone 13\n");

    // 1. Build the scene and render its training/test views (the stand-in for
    //    the paper's captured image sets).
    let built = EvaluationScene::Scene4.build(seed);
    let dataset = built.dataset(6, 2, 96);
    println!(
        "scene: {} objects, {} training views, {} test views at {}x{}",
        built.scene.len(),
        dataset.train.len(),
        dataset.test.len(),
        dataset.width,
        dataset.height
    );

    // 2. Run the cloud-side pipeline: segmentation → profiling → DP selection
    //    → parallel baking. `quick()` keeps the example fast; use
    //    `PipelineOptions::default()` for paper-scale configuration spaces.
    let device = DeviceSpec::iphone_13();
    let pipeline = NerflexPipeline::new(PipelineOptions::quick());
    let deployment = pipeline.try_run(&built.scene, &dataset, &device).expect("quickstart deploy");

    println!("\nsegmentation decision:");
    println!(
        "  threshold α = {:.4}, {} dedicated sub-NeRFs, {} objects in the joint NeRF",
        deployment.segmentation.decision.threshold,
        deployment.segmentation.decision.individual.len(),
        deployment.segmentation.decision.joint.len()
    );
    println!(
        "\nper-object configuration selected by the DP (budget {:.0} MB):",
        deployment.budget_mb
    );
    for assignment in &deployment.selection.assignments {
        println!(
            "  {:<10} θ = {}  predicted {:>6.1} MB  predicted SSIM {:.3}",
            assignment.name,
            assignment.config,
            assignment.predicted_size_mb,
            assignment.predicted_quality
        );
    }
    println!("\ncloud-side overhead: {}", deployment.timings.summary());

    // 3. Evaluate on the device: quality on held-out views, memory, FPS.
    let eval = evaluate_deployment(&deployment, &built.scene, &dataset, 500, seed);
    println!("\non-device result ({}):", eval.device);
    println!("  data size    {:.1} MB", eval.size_mb);
    println!("  SSIM         {:.3}", eval.ssim);
    println!("  PSNR         {:.2} dB", eval.psnr);
    println!("  LPIPS*       {:.3} (perceptual proxy, lower is better)", eval.lpips);
    println!("  loads on device: {}", eval.renders());
    println!("  average FPS  {:.1}", eval.session.average_fps);
    println!("  smooth       {}", eval.session.is_smooth());
}
