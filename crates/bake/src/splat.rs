//! Gaussian-splat extraction — the second baked-representation family
//! (ISSUE 10).
//!
//! A [`SplatCloud`] approximates the object's surface with oriented
//! anisotropic gaussians instead of a quad mesh + texture atlas. Seed
//! points come from the boundary cells of the same [`VoxelGrid`] the mesh
//! family extracts from; each seed is refined onto the zero level set with
//! Newton steps along [`Sdf::normal`](nerflex_scene::sdf::Sdf::normal),
//! coloured by the appearance model, and flattened along its surface
//! normal. The splat count is the family's quality axis — more splats
//! means smaller, denser gaussians and a sharper reconstruction — playing
//! the role the patch size plays for the mesh family.
//!
//! The device-side counterpart lives in `nerflex-render::splat`: a
//! deterministic depth-sorted back-to-front compositor under the
//! repo-wide bit-identity contract (`docs/determinism.md`); the full
//! family design is documented in `docs/splats.md`.
//!
//! Extraction is deterministic: boundary cells are walked in the fixed
//! `z, y, x` grid order (the same order as
//! [`VoxelGrid::boundary_face_count`]), subsampling is a pure function of
//! (seed index, target count), and every per-splat value is scalar
//! sequential arithmetic — so extraction is trivially cacheable through
//! the content-addressed [`BakeCache`](crate::BakeCache).

use crate::config::BakeConfig;
use crate::voxel::VoxelGrid;
use nerflex_math::{Aabb, Vec3};
use nerflex_scene::object::ObjectModel;

/// Exact on-device (and on-disk payload) size of one splat in bytes:
/// position 3×f32 + scale 3×f32 + Y-rotation f32 + RGB u8×3 + opacity u8.
pub const SPLAT_BYTES: usize = 32;

/// Opacity assigned to every extracted splat (≈ 0.9 — high enough that a
/// few overlapping layers saturate, low enough that edges blend).
pub const SPLAT_OPACITY: u8 = 230;

/// One oriented anisotropic gaussian in the object's local frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Splat {
    /// Centre, on the SDF zero level set (local frame).
    pub position: Vec3,
    /// Per-local-axis standard deviations. The cloud is flattened along
    /// the surface normal (see [`SplatCloud::extract`]).
    pub scale: Vec3,
    /// Rotation about the local Y axis in radians, chosen so the local
    /// `+z` axis points along the horizontal component of the surface
    /// normal (the same single-angle orientation convention as
    /// [`Placement`](crate::Placement)).
    pub rotation_y: f32,
    /// Quantised sRGB albedo at the splat centre.
    pub color: [u8; 3],
    /// Quantised opacity (255 = opaque).
    pub opacity: u8,
}

/// An immutable cloud of [`Splat`]s — the splat family's entire baked
/// payload (no mesh, no atlas, no MLP).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SplatCloud {
    splats: Vec<Splat>,
}

impl SplatCloud {
    /// Wraps an already-built splat list (used by the disk codec).
    pub fn from_splats(splats: Vec<Splat>) -> Self {
        Self { splats }
    }

    /// The splats, in extraction order (fixed `z, y, x` seed order).
    pub fn splats(&self) -> &[Splat] {
        &self.splats
    }

    /// Number of splats actually extracted (≤ the requested count when the
    /// surface has fewer boundary cells than the budget).
    pub fn len(&self) -> usize {
        self.splats.len()
    }

    /// `true` when the cloud holds no splats.
    pub fn is_empty(&self) -> bool {
        self.splats.is_empty()
    }

    /// Exact payload size in bytes ([`SPLAT_BYTES`] per splat).
    pub fn size_bytes(&self) -> usize {
        self.splats.len() * SPLAT_BYTES
    }

    /// Local-frame bounding box: every centre inflated by its 3σ radius
    /// (the compositor's evaluation cut-off). Empty clouds return the
    /// empty box.
    pub fn bounding_box(&self) -> Aabb {
        let mut b = Aabb::empty();
        for s in &self.splats {
            let r = 3.0 * s.scale.max_component();
            b.expand_point(s.position - Vec3::splat(r));
            b.expand_point(s.position + Vec3::splat(r));
        }
        b
    }

    /// Extracts a splat cloud from the object's SDF surface.
    ///
    /// Seeds are the centres of the voxel grid's boundary cells (occupied
    /// with at least one empty 6-neighbour), walked in `z, y, x` order.
    /// When more seeds exist than the configuration's splat count, an
    /// even-stride subsample keeps exactly `count` of them. Each kept seed
    /// is projected onto the zero level set with two Newton steps
    /// `p ← p − d(p)·n(p)`, coloured by the appearance model at the
    /// refined point, and given an anisotropic scale: an in-surface radius
    /// sized so the kept splats still cover the boundary area, and a ~3×
    /// thinner radius along the surface normal (expressed through the
    /// single Y-rotation: the thin axis is local `z` for horizontal
    /// normals, local `y` for vertical ones, blended by `|n_y|`).
    ///
    /// # Panics
    ///
    /// Panics when `config` is not a splat-family configuration.
    pub fn extract(model: &ObjectModel, config: BakeConfig) -> Self {
        let target =
            config.splat_count().expect("splat extraction needs a splat-family config") as usize;
        let grid = VoxelGrid::from_sdf(&model.sdf, config.grid);
        let seeds = boundary_cell_centers(&grid);
        if seeds.is_empty() {
            return Self::default();
        }

        // Even-stride subsample: seed (i·n)/target for i in 0..target — a
        // pure function of (i, n, target), independent of everything else.
        let n = seeds.len();
        let kept: Vec<Vec3> =
            if n > target { (0..target).map(|i| seeds[i * n / target]).collect() } else { seeds };

        // In-surface radius: boundary cells tile the surface at one cell
        // per cell-width; keeping `kept` of `n` seeds spreads each splat
        // over n/kept cells of area, i.e. √(n/kept) cell widths.
        let cell = grid.cell_size().max_component();
        let spread = (n as f32 / kept.len() as f32).sqrt();
        let radius = (0.85 * cell * spread).clamp(0.5 * cell, 6.0 * cell);
        let thin = 0.35 * radius;

        let splats = kept
            .into_iter()
            .map(|seed| {
                let mut p = seed;
                for _ in 0..2 {
                    p = p - model.sdf.normal(p) * model.sdf.distance(p);
                }
                let normal = model.sdf.normal(p);
                let c = model.appearance.albedo(p, normal).clamped();
                let quantize = |v: f32| (v * 255.0).round() as u8;
                // Blend the thin axis between local z (horizontal normal)
                // and local y (vertical normal) — the two orientations a
                // single Y-rotation can express.
                let ny = normal.y.abs();
                Splat {
                    position: p,
                    scale: Vec3::new(
                        radius,
                        radius + (thin - radius) * ny,
                        thin + (radius - thin) * ny,
                    ),
                    rotation_y: normal.x.atan2(normal.z),
                    color: [quantize(c.r), quantize(c.g), quantize(c.b)],
                    opacity: SPLAT_OPACITY,
                }
            })
            .collect();
        Self { splats }
    }
}

/// Centres of every boundary cell (occupied, ≥ 1 empty 6-neighbour), in
/// the fixed `z, y, x` order of [`VoxelGrid::boundary_face_count`].
fn boundary_cell_centers(grid: &VoxelGrid) -> Vec<Vec3> {
    let r = grid.resolution() as i64;
    let half = grid.cell_size() * 0.5;
    let mut centers = Vec::new();
    for z in 0..r {
        for y in 0..r {
            for x in 0..r {
                if !grid.occupied(x, y, z) {
                    continue;
                }
                let exposed = !grid.occupied(x - 1, y, z)
                    || !grid.occupied(x + 1, y, z)
                    || !grid.occupied(x, y - 1, z)
                    || !grid.occupied(x, y + 1, z)
                    || !grid.occupied(x, y, z - 1)
                    || !grid.occupied(x, y, z + 1);
                if exposed {
                    centers.push(grid.corner_position(x as u32, y as u32, z as u32) + half);
                }
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;

    fn cloud(count: u32) -> SplatCloud {
        let model = CanonicalObject::Hotdog.build();
        SplatCloud::extract(&model, BakeConfig::splat(20, count))
    }

    #[test]
    fn extraction_respects_the_requested_count() {
        let big = cloud(4096);
        let small = cloud(256);
        assert_eq!(small.len(), 256, "dense surface must saturate the budget");
        assert!(big.len() > small.len());
        assert!(big.len() <= 4096);
        assert_eq!(small.size_bytes(), 256 * SPLAT_BYTES);
    }

    #[test]
    fn splats_sit_on_the_surface() {
        let model = CanonicalObject::Hotdog.build();
        let cloud = SplatCloud::extract(&model, BakeConfig::splat(24, 1024));
        assert!(!cloud.is_empty());
        let cell = VoxelGrid::from_sdf(&model.sdf, 24).cell_size().max_component();
        for s in cloud.splats() {
            let d = model.sdf.distance(s.position).abs();
            assert!(d < cell, "splat {d} further than a cell from the surface");
            assert_eq!(s.opacity, SPLAT_OPACITY);
            assert!(s.scale.x > 0.0 && s.scale.y > 0.0 && s.scale.z > 0.0);
        }
    }

    #[test]
    fn fewer_splats_grow_larger_radii() {
        // Coverage compensation: a smaller budget must spread each splat
        // over more surface, not leave holes.
        let sparse = cloud(128);
        let dense = cloud(2048);
        let radius = |c: &SplatCloud| c.splats()[0].scale.x;
        assert!(radius(&sparse) > radius(&dense));
    }

    #[test]
    fn extraction_is_deterministic() {
        assert_eq!(cloud(512), cloud(512));
    }

    #[test]
    fn bounding_box_contains_every_splat() {
        let c = cloud(512);
        let b = c.bounding_box();
        assert!(!b.is_empty());
        for s in c.splats() {
            assert!(b.contains(s.position));
        }
        assert_eq!(SplatCloud::default().bounding_box(), Aabb::empty());
    }

    #[test]
    #[should_panic(expected = "splat-family")]
    fn mesh_config_is_rejected() {
        let model = CanonicalObject::Hotdog.build();
        let _ = SplatCloud::extract(&model, BakeConfig::new(20, 5));
    }
}
