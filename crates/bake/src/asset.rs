//! Baked assets: the multi-modal NeRF representation data shipped to the
//! device, with exact size accounting.

use crate::atlas::TextureAtlas;
use crate::config::{BakeConfig, BakeFamily};
use crate::mesh::QuadMesh;
use crate::mlp::TinyMlp;
use crate::splat::SplatCloud;
use crate::voxel::VoxelGrid;
use nerflex_math::{Aabb, Vec3};
use nerflex_scene::object::ObjectModel;
use nerflex_scene::scene::{PlacedObject, Scene};
use std::sync::Arc;

/// Rigid placement of a baked asset in the scene (the asset itself is baked
/// in the object's local frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Translation into world space.
    pub translation: Vec3,
    /// Uniform scale.
    pub scale: f32,
    /// Rotation around the Y axis in radians.
    pub rotation_y: f32,
}

impl Default for Placement {
    fn default() -> Self {
        Self { translation: Vec3::ZERO, scale: 1.0, rotation_y: 0.0 }
    }
}

impl Placement {
    /// Transforms a local-space point into world space.
    pub fn to_world(&self, p: Vec3) -> Vec3 {
        let (s, c) = self.rotation_y.sin_cos();
        let rotated = Vec3::new(c * p.x + s * p.z, p.y, -s * p.x + c * p.z);
        rotated * self.scale + self.translation
    }

    /// Rotates a local-space direction into world space (no translation/scale
    /// normalisation is required for uniform scales).
    pub fn rotate_direction(&self, d: Vec3) -> Vec3 {
        let (s, c) = self.rotation_y.sin_cos();
        Vec3::new(c * d.x + s * d.z, d.y, -s * d.x + c * d.z)
    }
}

/// The baked multi-modal representation of one object: quad mesh, texture
/// atlas, deferred-shading MLP — or, for the splat family, a gaussian
/// splat cloud — and the configuration it was baked with.
///
/// The mesh, atlas and splat cloud — the megabytes — live behind [`Arc`]s:
/// cloning an asset to restamp its identity and placement (what every
/// cache hit does) copies reference counts, not the payload. All read
/// paths are unchanged (`Arc` derefs transparently); only construction
/// sites wrap.
#[derive(Debug, Clone)]
pub struct BakedAsset {
    /// Human-readable object name.
    pub name: String,
    /// Instance id of the source object within its scene (0 for standalone bakes).
    pub object_id: usize,
    /// The configuration used for baking.
    pub config: BakeConfig,
    /// Extracted quad mesh (local space), shared across placement-stamped
    /// copies of the same bake. Empty for splat-family assets.
    pub mesh: Arc<QuadMesh>,
    /// Baked texture atlas, shared across placement-stamped copies.
    /// Empty for splat-family assets.
    pub atlas: Arc<TextureAtlas>,
    /// Optional deferred-shading MLP (a shared few-KB network).
    pub mlp: Option<TinyMlp>,
    /// Gaussian splat cloud — the entire payload of splat-family assets,
    /// `None` for mesh-family assets.
    pub splats: Option<Arc<SplatCloud>>,
    /// Placement of the local frame in the scene.
    pub placement: Placement,
}

/// Bytes per vertex: position (3 × f32) + normal (3 × f32).
const VERTEX_BYTES: usize = 24;
/// Bytes per quad: four u32 vertex indices.
const QUAD_BYTES: usize = 16;
/// Size of the shared deferred-shading MLP counted when none is attached
/// (435 parameters × 4 bytes, see `TinyMlp::shading_model`).
const DEFAULT_MLP_BYTES: usize = 435 * 4;

impl BakedAsset {
    /// Geometry size in bytes (vertex buffer + index buffer).
    pub fn mesh_size_bytes(&self) -> usize {
        self.mesh.vertex_count() * VERTEX_BYTES + self.mesh.quad_count() * QUAD_BYTES
    }

    /// Texture size in bytes.
    pub fn texture_size_bytes(&self) -> usize {
        self.atlas.size_bytes()
    }

    /// Splat payload size in bytes (0 for mesh-family assets).
    pub fn splat_size_bytes(&self) -> usize {
        self.splats.as_ref().map_or(0, |cloud| cloud.size_bytes())
    }

    /// Size of the deferred-shading MLP in bytes (0 for splat-family
    /// assets, which ship no shading network).
    pub fn mlp_size_bytes(&self) -> usize {
        if self.splats.is_some() {
            return 0;
        }
        self.mlp.as_ref().map_or(DEFAULT_MLP_BYTES, TinyMlp::size_bytes)
    }

    /// Total baked-data size in bytes (mesh + texture + MLP for the mesh
    /// family; exactly the splat payload for the splat family).
    pub fn size_bytes(&self) -> usize {
        self.mesh_size_bytes()
            + self.texture_size_bytes()
            + self.splat_size_bytes()
            + self.mlp_size_bytes()
    }

    /// Number of device-side primitives: mesh quads plus splats. This is
    /// the load the device FPS model charges for rasterisation.
    pub fn primitive_count(&self) -> usize {
        self.mesh.quad_count() + self.splats.as_ref().map_or(0, |cloud| cloud.len())
    }

    /// Total baked-data size in megabytes.
    pub fn size_mb(&self) -> f64 {
        self.size_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Bounding box of the placed asset in world space (conservative;
    /// covers the mesh and the splat cloud's 3σ extents).
    pub fn world_bounding_box(&self) -> Aabb {
        let mut local = self.mesh.bounding_box();
        if let Some(cloud) = &self.splats {
            local = local.union(&cloud.bounding_box());
        }
        if local.is_empty() {
            return Aabb::empty();
        }
        let mut bb = Aabb::empty();
        for corner in 0..8 {
            let p = Vec3::new(
                if corner & 1 == 0 { local.min.x } else { local.max.x },
                if corner & 2 == 0 { local.min.y } else { local.max.y },
                if corner & 4 == 0 { local.min.z } else { local.max.z },
            );
            bb.expand_point(self.placement.to_world(p));
        }
        bb
    }
}

/// Bakes a standalone object (in its local frame) at the given configuration.
pub fn bake_object(model: &ObjectModel, config: BakeConfig) -> BakedAsset {
    bake_with_placement(model, config, Placement::default(), 0)
}

/// Bakes one placed scene object, preserving its placement and instance id.
pub fn bake_placed(object: &PlacedObject, config: BakeConfig) -> BakedAsset {
    bake_with_placement(
        &object.model,
        config,
        Placement {
            translation: object.translation,
            scale: object.scale,
            rotation_y: object.rotation_y,
        },
        object.id,
    )
}

fn bake_with_placement(
    model: &ObjectModel,
    config: BakeConfig,
    placement: Placement,
    object_id: usize,
) -> BakedAsset {
    if let BakeFamily::Splat { .. } = config.family {
        let cloud = SplatCloud::extract(model, config);
        return BakedAsset {
            name: model.name.clone(),
            object_id,
            config,
            mesh: Arc::new(QuadMesh::default()),
            atlas: Arc::new(TextureAtlas::from_raw(config.patch, 0, vec![])),
            mlp: None,
            splats: Some(Arc::new(cloud)),
            placement,
        };
    }
    let grid = VoxelGrid::from_sdf(&model.sdf, config.grid);
    let mesh = QuadMesh::extract(&grid, &model.sdf);
    // Highest texture frequency representable by the atlas: half the texel
    // sampling rate over a quad of one cell size (Nyquist).
    let cell = grid.cell_size().max_component().max(1e-6);
    let cutoff = 0.5 * config.patch as f32 / cell;
    let atlas = TextureAtlas::bake(&mesh, &model.appearance, config.patch, cutoff);
    BakedAsset {
        name: model.name.clone(),
        object_id,
        config,
        mesh: Arc::new(mesh),
        atlas: Arc::new(atlas),
        mlp: None,
        splats: None,
        placement,
    }
}

/// Bakes every object of a scene with its own configuration, in parallel
/// (one worker per available core). `configs[i]` is used for the object with
/// instance id `i`.
///
/// # Panics
///
/// Panics when `configs.len()` differs from the number of scene objects.
pub fn bake_scene(scene: &Scene, configs: &[BakeConfig]) -> Vec<BakedAsset> {
    assert_eq!(
        configs.len(),
        scene.objects().len(),
        "one configuration per scene object is required"
    );
    crate::pool::parallel_map(scene.len(), crate::pool::default_workers(scene.len()), |idx| {
        bake_placed(&scene.objects()[idx], configs[idx])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;

    #[test]
    fn size_accounting_adds_up() {
        let model = CanonicalObject::Hotdog.build();
        let asset = bake_object(&model, BakeConfig::new(16, 5));
        assert_eq!(
            asset.size_bytes(),
            asset.mesh_size_bytes() + asset.texture_size_bytes() + DEFAULT_MLP_BYTES
        );
        assert!(asset.size_mb() > 0.0);
        assert_eq!(asset.name, "hotdog");
    }

    #[test]
    fn splat_bakes_carry_only_the_cloud() {
        let model = CanonicalObject::Hotdog.build();
        let asset = bake_object(&model, BakeConfig::splat(20, 1024));
        let cloud = asset.splats.as_ref().expect("splat family bakes a cloud");
        assert!(!cloud.is_empty());
        assert_eq!(asset.mesh.quad_count(), 0);
        assert_eq!(asset.texture_size_bytes(), 0);
        assert_eq!(asset.mlp_size_bytes(), 0, "splat assets ship no MLP");
        assert_eq!(asset.size_bytes(), cloud.size_bytes(), "exact size accounting");
        assert_eq!(asset.primitive_count(), cloud.len());
        // The world bounding box comes from the cloud, never NaN.
        let bb = asset.world_bounding_box();
        assert!(!bb.is_empty());
        assert!(bb.center().length().is_finite());
    }

    #[test]
    fn splat_size_scales_with_the_count_axis() {
        let model = CanonicalObject::Chair.build();
        let small = bake_object(&model, BakeConfig::splat(24, 256));
        let big = bake_object(&model, BakeConfig::splat(24, 4096));
        assert!(big.size_bytes() > small.size_bytes());
        assert!(big.size_bytes() < bake_object(&model, BakeConfig::new(24, 9)).size_bytes());
    }

    #[test]
    fn size_grows_with_both_knobs() {
        let model = CanonicalObject::Chair.build();
        let small = bake_object(&model, BakeConfig::new(12, 3));
        let bigger_grid = bake_object(&model, BakeConfig::new(24, 3));
        let bigger_patch = bake_object(&model, BakeConfig::new(12, 9));
        assert!(bigger_grid.size_bytes() > small.size_bytes());
        assert!(bigger_patch.size_bytes() > small.size_bytes());
    }

    #[test]
    fn texture_dominates_at_large_patch_sizes() {
        // The paper's size model is ∝ g³·p²: at a realistic patch size the
        // texture term dwarfs the geometry term.
        let model = CanonicalObject::Hotdog.build();
        let asset = bake_object(&model, BakeConfig::new(24, 17));
        assert!(asset.texture_size_bytes() > asset.mesh_size_bytes());
    }

    #[test]
    fn placement_is_preserved_by_bake_placed() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 5);
        let obj = &scene.objects()[1];
        let asset = bake_placed(obj, BakeConfig::new(12, 3));
        assert_eq!(asset.object_id, 1);
        assert_eq!(asset.placement.translation, obj.translation);
        // World bounding box must sit near the object's world bounding box.
        let bb = asset.world_bounding_box();
        let reference = obj.world_bounding_box();
        assert!(bb.center().distance(reference.center()) < reference.diagonal());
    }

    #[test]
    fn bake_scene_bakes_every_object_with_its_own_config() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 8);
        let configs = vec![BakeConfig::new(10, 3), BakeConfig::new(18, 5)];
        let assets = bake_scene(&scene, &configs);
        assert_eq!(assets.len(), 2);
        assert_eq!(assets[0].config, configs[0]);
        assert_eq!(assets[1].config, configs[1]);
        assert_eq!(assets[0].object_id, 0);
        assert_eq!(assets[1].object_id, 1);
    }

    #[test]
    fn placement_roundtrip_matches_scene_transform() {
        let scene = Scene::with_objects(&[CanonicalObject::Lego], 3);
        let obj = &scene.objects()[0];
        let placement = Placement {
            translation: obj.translation,
            scale: obj.scale,
            rotation_y: obj.rotation_y,
        };
        for i in 0..20 {
            let local = Vec3::new((i % 4) as f32 * 0.1, (i % 3) as f32 * 0.2, (i % 5) as f32 * 0.1);
            let world = placement.to_world(local);
            assert!((obj.to_local(world) - local).length() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "one configuration per scene object")]
    fn mismatched_config_count_panics() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog], 1);
        let _ = bake_scene(&scene, &[]);
    }
}
