//! Content-addressed cache of baked assets.
//!
//! The cloud-side pipeline bakes the same (object, configuration) pair in two
//! places: the profiler measures a handful of sample configurations per
//! object, and the final baking stage bakes whatever the selector picked.
//! Whenever the selection lands on a configuration that was already probed —
//! which the variable-step sampling makes likely at the corners of the space —
//! the second bake is pure waste. A [`BakeCache`] shared between the two
//! stages eliminates it, which is a large part of the paper's "cloud
//! preparation stays cheap relative to baking" story (Fig. 9).
//!
//! Assets are baked in the object's local frame; the placement is only
//! stamped on afterwards (see [`crate::asset`]). The cache therefore stores
//! placement-free assets keyed by *content*: a fingerprint of the object's
//! geometry and appearance plus the [`BakeConfig`]. Two identical objects —
//! e.g. the same canonical object instanced twice in a scene — share cache
//! entries even though their instance ids and placements differ.
//!
//! The cache is [`Sync`]; the parallel profiling and baking stages share one
//! instance across worker threads.

use crate::asset::{bake_object, BakedAsset, Placement};
use crate::config::BakeConfig;
use nerflex_math::Vec3;
use nerflex_scene::object::ObjectModel;
use nerflex_scene::scene::PlacedObject;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a, the classic dependency-free stable hash.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Content fingerprint of an object model: a stable 64-bit hash of its name,
/// its geometry (SDF distances sampled on a fixed lattice over the local
/// frame) and its appearance (albedo sampled at fixed points and normals).
///
/// The fingerprint depends only on what the bake consumes — two models that
/// are content-identical hash equally even when they are separate allocations
/// built by independent generator calls. It is stable across runs and
/// platforms (FNV-1a over IEEE-754 bit patterns, no pointer or layout input).
pub fn model_fingerprint(model: &ObjectModel) -> u64 {
    let mut h = Fnv1a::new();
    h.write(model.name.as_bytes());
    // Geometry: signed distances on a 7³ lattice spanning the local frame.
    // Procedural objects sit roughly in the unit box around the origin; the
    // lattice extends past it so scaled/offset geometry still differentiates.
    const N: i32 = 3;
    const EXTENT: f32 = 1.25;
    for x in -N..=N {
        for y in -N..=N {
            for z in -N..=N {
                let p = Vec3::new(x as f32, y as f32, z as f32) * (EXTENT / N as f32);
                h.write_f32(model.sdf.distance(p));
            }
        }
    }
    // Appearance: albedo at a coarser lattice, probed along two fixed
    // normals so normal-dependent patterns (studs, stripes) contribute.
    for x in -1..=1 {
        for y in -1..=1 {
            for z in -1..=1 {
                let p = Vec3::new(x as f32, y as f32, z as f32) * 0.6;
                for n in [Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0)] {
                    let c = model.appearance.albedo(p, n);
                    h.write_f32(c.r);
                    h.write_f32(c.g);
                    h.write_f32(c.b);
                }
            }
        }
    }
    h.finish()
}

/// Hit/miss/occupancy counters of a [`BakeCache`], read via
/// [`BakeCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to bake.
    pub misses: usize,
    /// Distinct (object, configuration) assets currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self − earlier`, for per-stage accounting.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({} entries, {:.0}% hit rate)",
            self.hits,
            self.misses,
            self.entries,
            self.hit_ratio() * 100.0
        )
    }
}

/// A thread-safe, content-addressed store of local-frame baked assets.
///
/// ```
/// use nerflex_bake::{BakeCache, BakeConfig};
/// use nerflex_scene::object::CanonicalObject;
///
/// let cache = BakeCache::new();
/// let model = CanonicalObject::Hotdog.build();
/// let first = cache.get_or_bake(&model, BakeConfig::new(12, 3));
/// let again = cache.get_or_bake(&model, BakeConfig::new(12, 3));
/// assert_eq!(first.size_bytes(), again.size_bytes());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct BakeCache {
    entries: Mutex<HashMap<(u64, BakeConfig), Arc<BakedAsset>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl BakeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache poisoned").len(),
        }
    }

    /// `true` when the (model, config) pair is already baked.
    pub fn contains(&self, model: &ObjectModel, config: BakeConfig) -> bool {
        let key = (model_fingerprint(model), config);
        self.entries.lock().expect("cache poisoned").contains_key(&key)
    }

    /// Returns the local-frame asset for `(model, config)`, baking and
    /// storing it on first request.
    ///
    /// Concurrent misses on the same key may both bake (the lock is not held
    /// across the bake, deliberately — bakes are long); the result is
    /// identical either way because baking is deterministic, and only one
    /// copy is kept.
    pub fn get_or_bake(&self, model: &ObjectModel, config: BakeConfig) -> Arc<BakedAsset> {
        let key = (model_fingerprint(model), config);
        if let Some(asset) = self.entries.lock().expect("cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(asset);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let asset = Arc::new(bake_object(model, config));
        let mut entries = self.entries.lock().expect("cache poisoned");
        Arc::clone(entries.entry(key).or_insert(asset))
    }

    /// Cache-aware replacement for [`crate::asset::bake_placed`]: the
    /// local-frame asset comes from the cache (baked on first request) and
    /// the placement and instance id of `object` are stamped on the copy.
    pub fn get_or_bake_placed(&self, object: &PlacedObject, config: BakeConfig) -> BakedAsset {
        let shared = self.get_or_bake(&object.model, config);
        let mut asset = (*shared).clone();
        asset.object_id = object.id;
        asset.placement = Placement {
            translation: object.translation,
            scale: object.scale,
            rotation_y: object.rotation_y,
        };
        asset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;
    use nerflex_scene::scene::Scene;

    #[test]
    fn fingerprint_is_stable_across_identical_objects() {
        // Two independent builds of the same canonical object are separate
        // allocations with identical content — they must hash equally.
        let a = CanonicalObject::Lego.build();
        let b = CanonicalObject::Lego.build();
        assert_eq!(model_fingerprint(&a), model_fingerprint(&b));
        // And repeated hashing of the same model is stable.
        assert_eq!(model_fingerprint(&a), model_fingerprint(&a));
    }

    #[test]
    fn fingerprint_separates_different_objects() {
        let mut seen = std::collections::HashSet::new();
        for object in CanonicalObject::ALL {
            assert!(
                seen.insert(model_fingerprint(&object.build())),
                "fingerprint collision for {object}"
            );
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = BakeCache::new();
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();

        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(10, 3)); // miss
        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(10, 3)); // hit
        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(12, 3)); // miss (new config)
        let _ = cache.get_or_bake(&chair, BakeConfig::new(10, 3)); // miss (new object)
        let _ = cache.get_or_bake(&chair, BakeConfig::new(10, 3)); // hit

        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert!((stats.hit_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(stats.since(&CacheStats { hits: 1, misses: 1, entries: 0 }).hits, 1);
    }

    #[test]
    fn identical_instances_share_entries() {
        // The same canonical object placed twice: one bake serves both.
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Hotdog], 5);
        let cache = BakeCache::new();
        let a = cache.get_or_bake_placed(&scene.objects()[0], BakeConfig::new(12, 3));
        let b = cache.get_or_bake_placed(&scene.objects()[1], BakeConfig::new(12, 3));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        // Each copy keeps its own identity and placement…
        assert_eq!(a.object_id, 0);
        assert_eq!(b.object_id, 1);
        assert_eq!(b.placement.translation, scene.objects()[1].translation);
        // …over the shared local-frame geometry.
        assert_eq!(a.mesh.quad_count(), b.mesh.quad_count());
        assert_eq!(a.size_bytes(), b.size_bytes());
    }

    #[test]
    fn cached_bake_matches_a_direct_bake() {
        let scene = Scene::with_objects(&[CanonicalObject::Chair], 9);
        let object = &scene.objects()[0];
        let config = BakeConfig::new(14, 5);
        let cache = BakeCache::new();
        let cached = cache.get_or_bake_placed(object, config);
        let direct = crate::asset::bake_placed(object, config);
        assert_eq!(cached.size_bytes(), direct.size_bytes());
        assert_eq!(cached.mesh.quad_count(), direct.mesh.quad_count());
        assert_eq!(cached.placement.translation, direct.placement.translation);
        assert_eq!(cached.object_id, direct.object_id);
    }
}
