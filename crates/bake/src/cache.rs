//! Content-addressed cache of baked assets — a thin typed wrapper over the
//! generic [`crate::store::KeyedStore`].
//!
//! The cloud-side pipeline bakes the same (object, configuration) pair in two
//! places: the profiler measures a handful of sample configurations per
//! object, and the final baking stage bakes whatever the selector picked.
//! Whenever the selection lands on a configuration that was already probed —
//! which the variable-step sampling makes likely at the corners of the space —
//! the second bake is pure waste. A [`BakeCache`] shared between the two
//! stages eliminates it, which is a large part of the paper's "cloud
//! preparation stays cheap relative to baking" story (Fig. 9).
//!
//! Assets are baked in the object's local frame; the placement is only
//! stamped on afterwards (see [`crate::asset`]). The cache therefore stores
//! placement-free assets keyed by *content*: a fingerprint of the object's
//! geometry and appearance plus the [`BakeConfig`]. Two identical objects —
//! e.g. the same canonical object instanced twice in a scene — share cache
//! entries even though their instance ids and placements differ.
//!
//! The cache is [`Sync`]; the parallel profiling and baking stages share one
//! instance across worker threads.
//!
//! # Persistence
//!
//! This module contributes exactly two things: the content fingerprint
//! ([`model_fingerprint`]) and the entry codec (file naming + byte framing,
//! implemented by [`crate::disk`]). Everything else — the lazy filename
//! index, the snapshot-outside-lock flush, temporary sweeping,
//! [`crate::StoreLimits`] pruning, corruption tolerance, read-only mode and
//! the choice of storage backend (one directory, or a local layer over a
//! shared remote for cross-machine reuse) — is the shared [`KeyedStore`]
//! machinery, configured through [`crate::StoreOptions`]. `docs/stores.md`
//! documents the store API and the on-disk layout
//! (`{fingerprint:016x}-g{g}-p{p}.nfbake` for mesh-family entries,
//! `…-g{g}-s{count}.nfbake` for splat-family ones, format version
//! [`crate::disk::CACHE_FORMAT_VERSION`]). Both families ride the same
//! store path: splat extraction is cached, coalesced, shared cross-machine
//! and fault-injectable exactly like mesh baking.
//!
//! [`CacheStats`] distinguishes where a hit's entry came from: `hits` counts
//! lookups answered by an entry baked in this process, `disk_hits` lookups
//! answered by an entry loaded from the persistent layer — the cross-process
//! reuse signal.

use crate::asset::{bake_object, BakedAsset, Placement};
use crate::config::BakeConfig;
use crate::disk;
use crate::store::{EntryCodec, KeyedStore, StoreOptions};
use nerflex_math::Vec3;
use nerflex_scene::object::ObjectModel;
use nerflex_scene::scene::PlacedObject;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// 64-bit FNV-1a, the classic dependency-free stable hash.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Content fingerprint of an object model: a stable 64-bit hash of its name,
/// its geometry (SDF distances sampled on a fixed lattice over the local
/// frame) and its appearance (albedo sampled at fixed points and normals).
///
/// The fingerprint depends only on what the bake consumes — two models that
/// are content-identical hash equally even when they are separate allocations
/// built by independent generator calls. It is stable across runs and
/// platforms (FNV-1a over IEEE-754 bit patterns, no pointer or layout input).
pub fn model_fingerprint(model: &ObjectModel) -> u64 {
    let mut h = Fnv1a::new();
    h.write(model.name.as_bytes());
    // Geometry: signed distances on a 7³ lattice spanning the local frame.
    // Procedural objects sit roughly in the unit box around the origin; the
    // lattice extends past it so scaled/offset geometry still differentiates.
    const N: i32 = 3;
    const EXTENT: f32 = 1.25;
    for x in -N..=N {
        for y in -N..=N {
            for z in -N..=N {
                let p = Vec3::new(x as f32, y as f32, z as f32) * (EXTENT / N as f32);
                h.write_f32(model.sdf.distance(p));
            }
        }
    }
    // Appearance: albedo at a coarser lattice, probed along two fixed
    // normals so normal-dependent patterns (studs, stripes) contribute.
    for x in -1..=1 {
        for y in -1..=1 {
            for z in -1..=1 {
                let p = Vec3::new(x as f32, y as f32, z as f32) * 0.6;
                for n in [Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0)] {
                    let c = model.appearance.albedo(p, n);
                    h.write_f32(c.r);
                    h.write_f32(c.g);
                    h.write_f32(c.b);
                }
            }
        }
    }
    h.finish()
}

/// Hit/miss/occupancy counters of a [`BakeCache`], read via
/// [`BakeCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered by an entry baked in this process.
    pub hits: usize,
    /// Lookups answered by an entry loaded from disk (cross-process reuse).
    pub disk_hits: usize,
    /// Lookups that had to bake.
    pub misses: usize,
    /// Misses that ran a splat-family extraction (a subset of `misses`).
    /// The CI bench-smoke warm-run assertion keys on this: a second run
    /// over a warm store must report zero re-extractions.
    pub splat_extractions: usize,
    /// Lookups that waited on another lookup's in-flight bake of the same
    /// asset instead of duplicating it (0 unless the cache was opened with
    /// [`StoreOptions::coalesce`] — the deployment service does).
    pub coalesced: usize,
    /// Distinct (object, configuration) assets currently stored (decoded in
    /// memory or indexed on disk).
    pub entries: usize,
    /// Entries indexed from the cache directory when the cache was opened
    /// (decoded lazily on first lookup; 0 for in-memory caches).
    pub loaded_from_disk: usize,
    /// Logical remote operations attempted by a shared store's backend
    /// (0 unless the cache is layered over a remote).
    pub remote_ops: usize,
    /// Remote operations that failed after exhausting their retries.
    pub remote_errors: usize,
    /// Retries performed on transient remote errors
    /// ([`RetryPolicy`](crate::backend::RetryPolicy)).
    pub retries: usize,
    /// Lookups served local-only because the remote was degraded.
    pub degraded_ops: usize,
}

impl CacheStats {
    /// All lookups answered without baking (in-process plus disk-loaded).
    pub fn total_hits(&self) -> usize {
        self.hits + self.disk_hits
    }

    /// Hit ratio in `[0, 1]` (0 when the cache was never queried). Disk-
    /// loaded hits count as hits: the lookup was answered without baking.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }

    /// Counter difference `self − earlier`, for per-stage accounting. The
    /// occupancy fields (`entries`, `loaded_from_disk`) are states, not
    /// counters, and carry `self`'s current values.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
            splat_extractions: self.splat_extractions - earlier.splat_extractions,
            coalesced: self.coalesced - earlier.coalesced,
            entries: self.entries,
            loaded_from_disk: self.loaded_from_disk,
            remote_ops: self.remote_ops - earlier.remote_ops,
            remote_errors: self.remote_errors - earlier.remote_errors,
            retries: self.retries - earlier.retries,
            degraded_ops: self.degraded_ops - earlier.degraded_ops,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits ({} from disk) / {} misses ({} entries, {} loaded, {:.0}% hit rate)",
            self.total_hits(),
            self.disk_hits,
            self.misses,
            self.entries,
            self.loaded_from_disk,
            self.hit_ratio() * 100.0
        )?;
        if self.remote_errors + self.retries + self.degraded_ops > 0 {
            write!(
                f,
                ", resilience: {} retries / {} remote errors / {} degraded ops",
                self.retries, self.remote_errors, self.degraded_ops
            )?;
        }
        Ok(())
    }
}

/// The bake store's [`EntryCodec`]: `{fingerprint:016x}-g{g}-p{p}.nfbake`
/// (mesh) / `…-g{g}-s{count}.nfbake` (splat) file names and the
/// [`crate::disk`] framing. This is the *entire* store-specific surface of
/// the bake cache's persistence.
#[derive(Debug)]
pub struct BakeEntryCodec;

impl EntryCodec for BakeEntryCodec {
    type Key = (u64, BakeConfig);
    type Value = BakedAsset;
    type Context<'a> = ();
    const EXTENSION: &'static str = disk::ENTRY_EXTENSION;

    fn file_name(key: &Self::Key) -> String {
        disk::entry_file_name(key.0, key.1)
    }

    fn parse_file_name(name: &str) -> Option<Self::Key> {
        disk::parse_entry_file_name(name)
    }

    fn encode(key: &Self::Key, asset: &BakedAsset) -> Vec<u8> {
        disk::encode_entry(key.0, asset)
    }

    fn decode(key: &Self::Key, bytes: &[u8], (): ()) -> Option<Arc<BakedAsset>> {
        // The embedded key must echo the file name the entry was indexed by.
        let (fingerprint, config, asset) = disk::decode_entry(bytes).ok()?;
        ((fingerprint, config) == *key).then_some(asset)
    }
}

/// A thread-safe, content-addressed store of local-frame baked assets.
///
/// ```
/// use nerflex_bake::{BakeCache, BakeConfig};
/// use nerflex_scene::object::CanonicalObject;
///
/// let cache = BakeCache::new();
/// let model = CanonicalObject::Hotdog.build();
/// let first = cache.get_or_bake(&model, BakeConfig::new(12, 3));
/// let again = cache.get_or_bake(&model, BakeConfig::new(12, 3));
/// assert_eq!(first.size_bytes(), again.size_bytes());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct BakeCache {
    store: KeyedStore<BakeEntryCodec>,
    /// Splat-family extractions actually run (misses only; hits and
    /// coalesced waiters never extract).
    splat_extractions: std::sync::atomic::AtomicUsize,
}

impl BakeCache {
    /// Creates an empty in-memory cache (no persistence; [`BakeCache::flush`]
    /// is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a cache as the [`StoreOptions`] direct — a plain path (or
    /// anything convertible) opens the classic single-directory store:
    ///
    /// ```no_run
    /// use nerflex_bake::{BakeCache, StoreLimits, StoreOptions};
    ///
    /// // The classic layout: one directory.
    /// let cache = BakeCache::open("/tmp/bake-store")?;
    /// // Bounded, shared across machines through a remote directory.
    /// let cache = BakeCache::open(
    ///     StoreOptions::shared("/tmp/local-layer", "/mnt/farm/bake-store")
    ///         .with_limits(StoreLimits::default().with_max_bytes(1 << 30)),
    /// )?;
    /// # std::io::Result::Ok(())
    /// ```
    ///
    /// Opening sweeps orphaned temporaries and applies the retention limits
    /// (both skipped in read-only mode), then **indexes** the entry files by
    /// their key-encoding names — an entry is read and decoded on its first
    /// lookup, so opening a large accumulated store costs a listing, not a
    /// full decode of every entry.
    ///
    /// Lookups stay corruption-tolerant: a truncated, bit-flipped, foreign-
    /// version or key-mismatched file is discovered at first lookup and
    /// costs exactly one re-bake (the next flush repairs it), never an
    /// error. Files whose names do not parse as entry keys are ignored.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the backing store cannot be
    /// created or listed.
    pub fn open(options: impl Into<StoreOptions>) -> io::Result<Self> {
        Ok(Self {
            store: KeyedStore::open(options)?,
            splat_extractions: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// The primary local directory of a persistent cache (`None` when
    /// in-memory).
    pub fn dir(&self) -> Option<&Path> {
        self.store.options().primary_dir()
    }

    /// The store options this cache was opened with.
    pub fn store_options(&self) -> &StoreOptions {
        self.store.options()
    }

    /// Writes every entry baked since the last flush to the backing store,
    /// returning how many entries were written (0 for in-memory or
    /// read-only caches). See [`KeyedStore::flush`] for the concurrency and
    /// atomicity guarantees.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered. Every dirty entry is still
    /// attempted; the written ones stay flushed, the failed ones stay dirty
    /// and are retried next flush.
    pub fn flush(&self) -> io::Result<usize> {
        self.store.flush()
    }

    /// Like [`BakeCache::flush`], but attempts every dirty entry and
    /// collects the per-entry failures instead of stopping at the first
    /// (see [`KeyedStore::flush_report`]).
    pub fn flush_report(&self) -> crate::store::FlushReport {
        self.store.flush_report()
    }

    /// Current counters, including the shared store's resilience counters.
    pub fn stats(&self) -> CacheStats {
        let stats = self.store.stats();
        CacheStats {
            hits: stats.hits,
            disk_hits: stats.disk_hits,
            misses: stats.misses,
            splat_extractions: self.splat_extractions.load(std::sync::atomic::Ordering::Relaxed),
            coalesced: stats.coalesced,
            entries: stats.entries,
            loaded_from_disk: stats.indexed,
            remote_ops: stats.remote_ops,
            remote_errors: stats.remote_errors,
            retries: stats.retries,
            degraded_ops: stats.degraded_ops,
        }
    }

    /// `true` when the (model, config) pair is already baked or indexed on
    /// disk. For a not-yet-decoded disk entry this is optimistic: a damaged
    /// file is only discovered (and transparently re-baked) at lookup.
    pub fn contains(&self, model: &ObjectModel, config: BakeConfig) -> bool {
        self.store.contains(&(model_fingerprint(model), config))
    }

    /// Returns the local-frame asset for `(model, config)`, baking and
    /// storing it on first request. An entry indexed from the persistent
    /// store is read and decoded here, on its first lookup — outside the
    /// entry lock, so other workers keep hitting the cache meanwhile.
    ///
    /// Concurrent misses on the same key may both bake (the lock is not held
    /// across the bake, deliberately — bakes are long); the result is
    /// identical either way because baking is deterministic, and only one
    /// copy is kept.
    pub fn get_or_bake(&self, model: &ObjectModel, config: BakeConfig) -> Arc<BakedAsset> {
        let key = (model_fingerprint(model), config);
        self.store.get_or_build(key, (), || {
            // The builder only runs on a real miss, so this counts actual
            // extractions — hits, disk hits and coalesced waiters skip it.
            if config.splat_count().is_some() {
                self.splat_extractions.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            bake_object(model, config)
        })
    }

    /// Cache-aware replacement for [`crate::asset::bake_placed`]: the
    /// local-frame asset comes from the cache (baked on first request) and
    /// the placement and instance id of `object` are stamped on the copy.
    /// With the mesh and atlas behind [`Arc`], the copy is two reference-
    /// count bumps, not a deep clone — a hit is near-free.
    pub fn get_or_bake_placed(&self, object: &PlacedObject, config: BakeConfig) -> BakedAsset {
        let shared = self.get_or_bake(&object.model, config);
        let mut asset = (*shared).clone();
        asset.object_id = object.id;
        asset.placement = Placement {
            translation: object.translation,
            scale: object.scale,
            rotation_y: object.rotation_y,
        };
        asset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreLimits;
    use nerflex_scene::object::CanonicalObject;
    use nerflex_scene::scene::Scene;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fingerprint_is_stable_across_identical_objects() {
        // Two independent builds of the same canonical object are separate
        // allocations with identical content — they must hash equally.
        let a = CanonicalObject::Lego.build();
        let b = CanonicalObject::Lego.build();
        assert_eq!(model_fingerprint(&a), model_fingerprint(&b));
        // And repeated hashing of the same model is stable.
        assert_eq!(model_fingerprint(&a), model_fingerprint(&a));
    }

    #[test]
    fn fingerprint_separates_different_objects() {
        let mut seen = std::collections::HashSet::new();
        for object in CanonicalObject::ALL {
            assert!(
                seen.insert(model_fingerprint(&object.build())),
                "fingerprint collision for {object}"
            );
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = BakeCache::new();
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();

        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(10, 3)); // miss
        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(10, 3)); // hit
        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(12, 3)); // miss (new config)
        let _ = cache.get_or_bake(&chair, BakeConfig::new(10, 3)); // miss (new object)
        let _ = cache.get_or_bake(&chair, BakeConfig::new(10, 3)); // hit

        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert!((stats.hit_ratio() - 0.4).abs() < 1e-12);
        let earlier = CacheStats { hits: 1, misses: 1, ..CacheStats::default() };
        assert_eq!(stats.since(&earlier).hits, 1);
    }

    #[test]
    fn splat_extractions_are_counted_and_cached() {
        let tmp = TempDir::new("splat-count");
        let model = CanonicalObject::Hotdog.build();
        let config = BakeConfig::splat(16, 256);

        let cache = BakeCache::open(&tmp.0).expect("open");
        let first = cache.get_or_bake(&model, config);
        let again = cache.get_or_bake(&model, config);
        let _ = cache.get_or_bake(&model, BakeConfig::new(10, 3));
        let stats = cache.stats();
        assert_eq!(stats.splat_extractions, 1, "one extraction per distinct splat config");
        assert_eq!(stats.misses, 2, "mesh miss does not count as an extraction");
        assert_eq!(first.splats, again.splats);
        cache.flush().expect("flush");

        // A warm store serves the cloud from disk: zero re-extractions —
        // the acceptance criterion the CI bench-smoke run pins.
        let warm = BakeCache::open(&tmp.0).expect("reopen");
        let loaded = warm.get_or_bake(&model, config);
        let stats = warm.stats();
        assert_eq!((stats.disk_hits, stats.splat_extractions), (1, 0));
        assert_eq!(
            loaded.splats.as_deref().expect("cloud"),
            first.splats.as_deref().expect("cloud")
        );
    }

    #[test]
    fn identical_instances_share_entries() {
        // The same canonical object placed twice: one bake serves both.
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Hotdog], 5);
        let cache = BakeCache::new();
        let a = cache.get_or_bake_placed(&scene.objects()[0], BakeConfig::new(12, 3));
        let b = cache.get_or_bake_placed(&scene.objects()[1], BakeConfig::new(12, 3));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        // Each copy keeps its own identity and placement…
        assert_eq!(a.object_id, 0);
        assert_eq!(b.object_id, 1);
        assert_eq!(b.placement.translation, scene.objects()[1].translation);
        // …over the shared local-frame geometry.
        assert_eq!(a.mesh.quad_count(), b.mesh.quad_count());
        assert_eq!(a.size_bytes(), b.size_bytes());
    }

    /// A unique, self-cleaning temporary directory for persistence tests.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "nerflex-cache-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn flush_and_reopen_turn_misses_into_disk_hits() {
        let tmp = TempDir::new("roundtrip");
        let model = CanonicalObject::Hotdog.build();
        let config = BakeConfig::new(10, 3);

        // First process: miss, bake, flush one entry.
        let cache = BakeCache::open(&tmp.0).expect("open");
        assert_eq!(cache.stats().loaded_from_disk, 0);
        let first = cache.get_or_bake(&model, config);
        assert_eq!(cache.flush().expect("flush"), 1);
        // A second flush writes nothing: the entry is clean now.
        assert_eq!(cache.flush().expect("flush"), 0);

        // Second process (simulated): the entry loads, the lookup is a disk
        // hit, nothing re-bakes, the payload is identical.
        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1);
        assert!(reopened.contains(&model, config));
        let second = reopened.get_or_bake(&model, config);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (0, 1, 0));
        assert_eq!(*first.mesh, *second.mesh);
        assert_eq!(*first.atlas, *second.atlas);
        assert_eq!(first.size_bytes(), second.size_bytes());
    }

    #[test]
    fn hit_ratio_and_since_account_for_disk_hits() {
        let tmp = TempDir::new("ratio");
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();
        let config = BakeConfig::new(10, 3);

        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&hotdog, config);
        cache.flush().expect("flush");

        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        let _ = reopened.get_or_bake(&hotdog, config); // disk hit
        let before = reopened.stats();
        let _ = reopened.get_or_bake(&chair, config); // miss
        let _ = reopened.get_or_bake(&chair, config); // in-process hit
        let _ = reopened.get_or_bake(&hotdog, config); // disk hit

        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (1, 2, 1));
        assert_eq!(stats.total_hits(), 3);
        assert!((stats.hit_ratio() - 0.75).abs() < 1e-12, "{stats}");
        // The per-stage delta separates the two hit kinds.
        let delta = stats.since(&before);
        assert_eq!((delta.hits, delta.disk_hits, delta.misses), (1, 1, 1));
        assert_eq!(delta.loaded_from_disk, 1);
    }

    #[test]
    fn corrupted_and_foreign_files_are_skipped_on_open() {
        let tmp = TempDir::new("corrupt");
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();
        let config = BakeConfig::new(10, 3);

        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&hotdog, config);
        let _ = cache.get_or_bake(&chair, config);
        cache.flush().expect("flush");

        // Truncate one entry file and drop unrelated garbage next to it.
        let mut files: Vec<_> = std::fs::read_dir(&tmp.0)
            .expect("read dir")
            .map(|f| f.expect("entry").path())
            .collect();
        files.sort();
        let victim = &files[0];
        let bytes = std::fs::read(victim).expect("read entry");
        std::fs::write(victim, &bytes[..bytes.len() / 2]).expect("truncate");
        std::fs::write(tmp.0.join("garbage.nfbake"), b"not a cache entry").expect("garbage");
        std::fs::write(tmp.0.join("unrelated.txt"), b"ignored").expect("unrelated");

        // The lazy index keys on the (valid) file names: both real entries
        // index, the unparsable garbage does not. The damage surfaces at
        // first lookup — the truncated entry re-bakes (miss), the intact one
        // is a disk hit — and the next flush repairs the directory.
        let reopened = BakeCache::open(&tmp.0).expect("reopen survives corruption");
        assert_eq!(reopened.stats().loaded_from_disk, 2, "index is by file name");
        let _ = reopened.get_or_bake(&hotdog, config);
        let _ = reopened.get_or_bake(&chair, config);
        let stats = reopened.stats();
        assert_eq!(stats.disk_hits + stats.misses, 2);
        assert_eq!(stats.misses, 1, "exactly the damaged entry re-bakes");
        assert_eq!(reopened.flush().expect("repair flush"), 1);
        let repaired = BakeCache::open(&tmp.0).expect("open repaired");
        let _ = repaired.get_or_bake(&hotdog, config);
        let _ = repaired.get_or_bake(&chair, config);
        let after = repaired.stats();
        assert_eq!((after.disk_hits, after.misses), (2, 0), "repair restored both entries");
    }

    #[test]
    fn open_indexes_lazily_and_decodes_on_first_lookup() {
        let tmp = TempDir::new("lazy");
        let model = CanonicalObject::Hotdog.build();
        let config = BakeConfig::new(10, 3);
        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&model, config);
        cache.flush().expect("flush");

        // Damage the entry file *after* reopening: if `open` had decoded
        // eagerly the lookup would still be served from memory, but the
        // lazy index reads the file at first lookup and discovers the
        // damage, proving nothing was decoded at open time.
        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1);
        let entry_path =
            tmp.0.join(crate::disk::entry_file_name(model_fingerprint(&model), config));
        std::fs::write(&entry_path, b"damaged after open").expect("overwrite");
        let _ = reopened.get_or_bake(&model, config);
        let stats = reopened.stats();
        assert_eq!((stats.disk_hits, stats.misses), (0, 1), "decode happens at lookup: {stats:?}");
        // The re-baked entry serves subsequent lookups from memory.
        let _ = reopened.get_or_bake(&model, config);
        assert_eq!(reopened.stats().hits, 1);
    }

    #[test]
    fn stale_flush_temporaries_are_swept_on_open() {
        let tmp = TempDir::new("tmp-sweep");
        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&CanonicalObject::Hotdog.build(), BakeConfig::new(10, 3));
        cache.flush().expect("flush");
        // Simulate a crash between write and rename in another process.
        let orphan = tmp.0.join(format!(
            "{}.tmp-99999",
            crate::disk::entry_file_name(42, BakeConfig::new(10, 3))
        ));
        std::fs::write(&orphan, b"partial write").expect("orphan");

        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1, "real entry still loads");
        assert!(!orphan.exists(), "orphaned temporary must be swept");
    }

    #[test]
    fn limits_prune_and_evicted_entries_rebake() {
        let tmp = TempDir::new("limits");
        let model = CanonicalObject::Hotdog.build();
        let config = BakeConfig::new(10, 3);
        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&model, config);
        cache.flush().expect("flush");

        // A zero age budget sweeps every persisted entry on the next open…
        let options = StoreOptions::dir(&tmp.0)
            .with_limits(StoreLimits::default().with_max_age(std::time::Duration::ZERO));
        let pruned = BakeCache::open(options).expect("open with limits");
        assert_eq!(pruned.stats().loaded_from_disk, 0, "expired entry must not index");
        // …and the evicted entry simply re-bakes (a miss, not an error).
        let _ = pruned.get_or_bake(&model, config);
        assert_eq!(pruned.stats().misses, 1);
        pruned.flush().expect("repair flush");

        // Unbounded limits leave the repaired store intact.
        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1);
    }

    #[test]
    fn read_only_caches_serve_hits_but_never_write() {
        let tmp = TempDir::new("read-only");
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();
        let config = BakeConfig::new(10, 3);
        let writer = BakeCache::open(&tmp.0).expect("open");
        let _ = writer.get_or_bake(&hotdog, config);
        writer.flush().expect("flush");
        let files_before = std::fs::read_dir(&tmp.0).expect("read dir").count();

        let reader = BakeCache::open(StoreOptions::dir(&tmp.0).read_only(true)).expect("open");
        let _ = reader.get_or_bake(&hotdog, config); // disk hit
        let _ = reader.get_or_bake(&chair, config); // miss, stays in memory
        let stats = reader.stats();
        assert_eq!((stats.disk_hits, stats.misses), (1, 1));
        assert_eq!(reader.flush().expect("read-only flush"), 0);
        assert_eq!(
            std::fs::read_dir(&tmp.0).expect("read dir").count(),
            files_before,
            "a read-only cache must not change the store"
        );
    }

    #[test]
    fn in_memory_cache_flush_is_a_noop() {
        let cache = BakeCache::new();
        let _ = cache.get_or_bake(&CanonicalObject::Hotdog.build(), BakeConfig::new(10, 3));
        assert_eq!(cache.dir(), None);
        assert_eq!(cache.flush().expect("noop"), 0);
    }

    #[test]
    fn cached_bake_matches_a_direct_bake() {
        let scene = Scene::with_objects(&[CanonicalObject::Chair], 9);
        let object = &scene.objects()[0];
        let config = BakeConfig::new(14, 5);
        let cache = BakeCache::new();
        let cached = cache.get_or_bake_placed(object, config);
        let direct = crate::asset::bake_placed(object, config);
        assert_eq!(cached.size_bytes(), direct.size_bytes());
        assert_eq!(cached.mesh.quad_count(), direct.mesh.quad_count());
        assert_eq!(cached.placement.translation, direct.placement.translation);
        assert_eq!(cached.object_id, direct.object_id);
    }

    #[test]
    fn shared_store_serves_a_cold_local_dir_from_the_remote() {
        // Machine A bakes against (local A, remote R); machine B — a cold
        // local dir sharing R — must re-bake nothing and load identical
        // bytes. This is the fleet-scale scenario the backend seam exists
        // for (ISSUE 5 acceptance criterion).
        let local_a = TempDir::new("shared-a");
        let local_b = TempDir::new("shared-b");
        let remote = TempDir::new("shared-remote");
        let model = CanonicalObject::Lego.build();
        let config = BakeConfig::new(12, 3);

        let a = BakeCache::open(StoreOptions::shared(&local_a.0, &remote.0)).expect("open A");
        let baked = a.get_or_bake(&model, config);
        a.flush().expect("flush A");

        let b = BakeCache::open(StoreOptions::shared(&local_b.0, &remote.0)).expect("open B");
        assert_eq!(b.stats().loaded_from_disk, 1, "cold local layer indexes the remote");
        let loaded = b.get_or_bake(&model, config);
        let stats = b.stats();
        assert_eq!((stats.disk_hits, stats.misses), (1, 0), "warm remote → zero misses");
        assert_eq!(*baked.mesh, *loaded.mesh);
        assert_eq!(*baked.atlas, *loaded.atlas);
        assert_eq!(baked.mlp, loaded.mlp);
    }
}
