//! Content-addressed cache of baked assets.
//!
//! The cloud-side pipeline bakes the same (object, configuration) pair in two
//! places: the profiler measures a handful of sample configurations per
//! object, and the final baking stage bakes whatever the selector picked.
//! Whenever the selection lands on a configuration that was already probed —
//! which the variable-step sampling makes likely at the corners of the space —
//! the second bake is pure waste. A [`BakeCache`] shared between the two
//! stages eliminates it, which is a large part of the paper's "cloud
//! preparation stays cheap relative to baking" story (Fig. 9).
//!
//! Assets are baked in the object's local frame; the placement is only
//! stamped on afterwards (see [`crate::asset`]). The cache therefore stores
//! placement-free assets keyed by *content*: a fingerprint of the object's
//! geometry and appearance plus the [`BakeConfig`]. Two identical objects —
//! e.g. the same canonical object instanced twice in a scene — share cache
//! entries even though their instance ids and placements differ.
//!
//! The cache is [`Sync`]; the parallel profiling and baking stages share one
//! instance across worker threads.
//!
//! # On-disk persistence
//!
//! Content fingerprints are stable across runs and platforms, so a cache
//! opened with [`BakeCache::open`] outlives the process: [`BakeCache::flush`]
//! writes every entry baked since the last flush to the directory, and the
//! next `open` — in this process or another — starts warm. Repeated bench
//! invocations, CI runs and fleet re-deployments then re-bake nothing whose
//! (fingerprint, configuration) pair is already on disk.
//!
//! ## Layout
//!
//! One file per entry, named `{fingerprint:016x}-g{g}-p{p}.nfbake`, each
//! fully self-contained (see [`crate::disk`] for the byte-level format):
//!
//! ```text
//! <dir>/
//!   2f1c66aa01945f10-g30-p6.nfbake     magic | version | key | payload | checksum
//!   9bd05c771e22ab43-g40-p9.nfbake
//!   ...
//! ```
//!
//! The file name encodes the full cache key, so [`BakeCache::open`] only
//! **indexes** the directory — an entry file is read and decoded on its
//! first lookup. Opening a large accumulated store is O(directory listing)
//! in time and RAM, not O(store size), and a run that touches three entries
//! decodes exactly three files.
//!
//! Per-entry files keep loading corruption-tolerant (a damaged file costs
//! exactly one entry) and make flushes atomic per entry: each file is
//! written to a process-unique temporary name and renamed into place, so a
//! concurrent reader sees either the old state or the complete new entry,
//! never a torn write. [`BakeCache::flush`] snapshots the dirty entries and
//! writes the files **outside the entry lock**, so concurrent bakes proceed
//! during large flushes.
//!
//! ## Versioning policy
//!
//! Entries embed [`crate::disk::CACHE_FORMAT_VERSION`]. Any layout change
//! bumps the version; readers *reject* foreign versions rather than migrate
//! (a cache can always be rebuilt, so migration machinery would buy
//! nothing). Damaged, truncated or foreign-version files are skipped on
//! load — never a panic — and simply get re-baked and overwritten on the
//! next flush. CI keys its persisted cache on the same version constant, so
//! a format bump naturally starts CI from a cold cache.
//!
//! [`CacheStats`] distinguishes where a hit's entry came from: `hits` counts
//! lookups answered by an entry baked in this process, `disk_hits` lookups
//! answered by an entry loaded from disk — the cross-process reuse signal.

use crate::asset::{bake_object, BakedAsset, Placement};
use crate::config::BakeConfig;
use crate::disk;
use nerflex_math::Vec3;
use nerflex_scene::object::ObjectModel;
use nerflex_scene::scene::PlacedObject;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a, the classic dependency-free stable hash.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_f32(&mut self, v: f32) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Content fingerprint of an object model: a stable 64-bit hash of its name,
/// its geometry (SDF distances sampled on a fixed lattice over the local
/// frame) and its appearance (albedo sampled at fixed points and normals).
///
/// The fingerprint depends only on what the bake consumes — two models that
/// are content-identical hash equally even when they are separate allocations
/// built by independent generator calls. It is stable across runs and
/// platforms (FNV-1a over IEEE-754 bit patterns, no pointer or layout input).
pub fn model_fingerprint(model: &ObjectModel) -> u64 {
    let mut h = Fnv1a::new();
    h.write(model.name.as_bytes());
    // Geometry: signed distances on a 7³ lattice spanning the local frame.
    // Procedural objects sit roughly in the unit box around the origin; the
    // lattice extends past it so scaled/offset geometry still differentiates.
    const N: i32 = 3;
    const EXTENT: f32 = 1.25;
    for x in -N..=N {
        for y in -N..=N {
            for z in -N..=N {
                let p = Vec3::new(x as f32, y as f32, z as f32) * (EXTENT / N as f32);
                h.write_f32(model.sdf.distance(p));
            }
        }
    }
    // Appearance: albedo at a coarser lattice, probed along two fixed
    // normals so normal-dependent patterns (studs, stripes) contribute.
    for x in -1..=1 {
        for y in -1..=1 {
            for z in -1..=1 {
                let p = Vec3::new(x as f32, y as f32, z as f32) * 0.6;
                for n in [Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0)] {
                    let c = model.appearance.albedo(p, n);
                    h.write_f32(c.r);
                    h.write_f32(c.g);
                    h.write_f32(c.b);
                }
            }
        }
    }
    h.finish()
}

/// Hit/miss/occupancy counters of a [`BakeCache`], read via
/// [`BakeCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered by an entry baked in this process.
    pub hits: usize,
    /// Lookups answered by an entry loaded from disk (cross-process reuse).
    pub disk_hits: usize,
    /// Lookups that had to bake.
    pub misses: usize,
    /// Distinct (object, configuration) assets currently stored (decoded in
    /// memory or indexed on disk).
    pub entries: usize,
    /// Entries indexed from the cache directory when the cache was opened
    /// (decoded lazily on first lookup; 0 for in-memory caches).
    pub loaded_from_disk: usize,
}

impl CacheStats {
    /// All lookups answered without baking (in-process plus disk-loaded).
    pub fn total_hits(&self) -> usize {
        self.hits + self.disk_hits
    }

    /// Hit ratio in `[0, 1]` (0 when the cache was never queried). Disk-
    /// loaded hits count as hits: the lookup was answered without baking.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }

    /// Counter difference `self − earlier`, for per-stage accounting. The
    /// occupancy fields (`entries`, `loaded_from_disk`) are states, not
    /// counters, and carry `self`'s current values.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            loaded_from_disk: self.loaded_from_disk,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits ({} from disk) / {} misses ({} entries, {} loaded, {:.0}% hit rate)",
            self.total_hits(),
            self.disk_hits,
            self.misses,
            self.entries,
            self.loaded_from_disk,
            self.hit_ratio() * 100.0
        )
    }
}

/// A thread-safe, content-addressed store of local-frame baked assets.
///
/// ```
/// use nerflex_bake::{BakeCache, BakeConfig};
/// use nerflex_scene::object::CanonicalObject;
///
/// let cache = BakeCache::new();
/// let model = CanonicalObject::Hotdog.build();
/// let first = cache.get_or_bake(&model, BakeConfig::new(12, 3));
/// let again = cache.get_or_bake(&model, BakeConfig::new(12, 3));
/// assert_eq!(first.size_bytes(), again.size_bytes());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct BakeCache {
    entries: Mutex<HashMap<(u64, BakeConfig), StoredEntry>>,
    hits: AtomicUsize,
    disk_hits: AtomicUsize,
    misses: AtomicUsize,
    /// Backing directory for [`BakeCache::flush`]; `None` for in-memory caches.
    dir: Option<PathBuf>,
    /// Entries indexed from `dir` when the cache was opened.
    loaded: usize,
}

/// One cached asset plus its persistence bookkeeping.
#[derive(Debug)]
enum StoredEntry {
    /// Decoded and ready.
    Memory {
        asset: Arc<BakedAsset>,
        /// The entry came off disk (hits on it are cross-process reuse).
        from_disk: bool,
        /// Not yet on disk; written by the next flush.
        dirty: bool,
    },
    /// Indexed from the store directory by its file name; read and decoded
    /// on first lookup.
    OnDisk(PathBuf),
}

impl BakeCache {
    /// Creates an empty in-memory cache (no persistence; [`BakeCache::flush`]
    /// is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a persistent cache backed by `dir`, creating the directory when
    /// missing and **indexing** the entry files already present by their
    /// key-encoding file names — an entry is read and decoded on its first
    /// lookup, so opening a large accumulated store costs a directory
    /// listing, not a full decode of every entry.
    ///
    /// Lookups stay corruption-tolerant: a truncated, bit-flipped, foreign-
    /// version or key-mismatched file is discovered at first lookup and
    /// costs exactly one re-bake (the next flush repairs it), never an
    /// error. Files whose names do not parse as entry keys are ignored.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created or
    /// read.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_limits(dir, &disk::StoreLimits::default())
    }

    /// [`BakeCache::open`] with retention limits: before indexing, the
    /// directory is swept by [`disk::prune_store`] — entries older than
    /// `limits.max_age` go first, then the oldest survivors until the store
    /// fits `limits.max_bytes`. Pruned entries simply re-bake on their next
    /// miss, so the sweep bounds an otherwise monotonically growing store
    /// (CI caches, long-lived developer machines) at the cost of re-baking
    /// evicted configurations.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created or
    /// read (per-file prune failures are skipped, never an error).
    pub fn open_with_limits(dir: impl AsRef<Path>, limits: &disk::StoreLimits) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        disk::prune_store(&dir, disk::ENTRY_EXTENSION, limits)?;
        let mut entries = HashMap::new();
        for file in std::fs::read_dir(&dir)? {
            let path = file?.path();
            // Sweep temporaries orphaned by a crash between write and rename
            // (possibly another process's — entry content is deterministic,
            // so a live writer's rename losing to this unlink only costs a
            // re-flush next run).
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.contains(&format!(".{}.tmp-", disk::ENTRY_EXTENSION)) {
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if let Some(key) = disk::parse_entry_file_name(name) {
                entries.insert(key, StoredEntry::OnDisk(path));
            }
        }
        let loaded = entries.len();
        Ok(Self { entries: Mutex::new(entries), dir: Some(dir), loaded, ..Self::default() })
    }

    /// The backing directory of a persistent cache (`None` when in-memory).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Writes every entry baked since the last flush to the backing
    /// directory, returning how many files were written (0 for in-memory
    /// caches). The dirty entries are snapshotted first and the files
    /// written **outside the entry lock** — bakes and lookups proceed
    /// concurrently during large flushes. Each entry is written to a
    /// process-unique temporary file and renamed into place, so concurrent
    /// readers never observe a torn entry.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered; entries flushed before the
    /// failure stay flushed and are not re-written next time.
    pub fn flush(&self) -> io::Result<usize> {
        let Some(dir) = &self.dir else { return Ok(0) };
        // Snapshot the dirty entries (an Arc clone each) under the lock…
        let dirty: Vec<((u64, BakeConfig), Arc<BakedAsset>)> = {
            let entries = self.entries.lock().expect("cache poisoned");
            entries
                .iter()
                .filter_map(|(&key, entry)| match entry {
                    StoredEntry::Memory { asset, dirty: true, .. } => {
                        Some((key, Arc::clone(asset)))
                    }
                    _ => None,
                })
                .collect()
        };
        // …then write without it. Entries are immutable once baked, so the
        // snapshot cannot go stale.
        // Writers are no longer serialized by the entry lock, so the
        // temporary name must be unique per flush call, not just per
        // process — concurrent flushes of one entry must never share a tmp.
        static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
        let mut written = Vec::with_capacity(dirty.len());
        let mut failure = None;
        for ((fingerprint, config), asset) in dirty {
            let bytes = disk::encode_entry(fingerprint, &asset);
            let name = disk::entry_file_name(fingerprint, config);
            let path = dir.join(&name);
            let tmp = dir.join(format!(
                "{name}.tmp-{}-{}",
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
            match result {
                Ok(()) => written.push((fingerprint, config)),
                Err(err) => {
                    let _ = std::fs::remove_file(&tmp);
                    failure = Some(err);
                    break;
                }
            }
        }
        let mut entries = self.entries.lock().expect("cache poisoned");
        for key in &written {
            if let Some(StoredEntry::Memory { dirty, .. }) = entries.get_mut(key) {
                *dirty = false;
            }
        }
        match failure {
            Some(err) => Err(err),
            None => Ok(written.len()),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache poisoned").len(),
            loaded_from_disk: self.loaded,
        }
    }

    /// `true` when the (model, config) pair is already baked or indexed on
    /// disk. For a not-yet-decoded disk entry this is optimistic: a damaged
    /// file is only discovered (and transparently re-baked) at lookup.
    pub fn contains(&self, model: &ObjectModel, config: BakeConfig) -> bool {
        let key = (model_fingerprint(model), config);
        self.entries.lock().expect("cache poisoned").contains_key(&key)
    }

    /// Returns the local-frame asset for `(model, config)`, baking and
    /// storing it on first request. An entry indexed from the persistent
    /// store is read and decoded here, on its first lookup — outside the
    /// entry lock, so other workers keep hitting the cache meanwhile.
    ///
    /// Concurrent misses on the same key may both bake (the lock is not held
    /// across the bake, deliberately — bakes are long); the result is
    /// identical either way because baking is deterministic, and only one
    /// copy is kept.
    pub fn get_or_bake(&self, model: &ObjectModel, config: BakeConfig) -> Arc<BakedAsset> {
        let key = (model_fingerprint(model), config);
        let pending_path = {
            let entries = self.entries.lock().expect("cache poisoned");
            match entries.get(&key) {
                Some(StoredEntry::Memory { asset, from_disk, .. }) => {
                    let counter = if *from_disk { &self.disk_hits } else { &self.hits };
                    counter.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(asset);
                }
                Some(StoredEntry::OnDisk(path)) => Some(path.clone()),
                None => None,
            }
        };

        if let Some(path) = pending_path {
            let decoded = std::fs::read(&path)
                .ok()
                .and_then(|bytes| disk::decode_entry(&bytes).ok())
                // The embedded key must echo the file name it was indexed by.
                .filter(|&(fingerprint, config, _)| (fingerprint, config) == key)
                .map(|(_, _, asset)| asset);
            if let Some(asset) = decoded {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let mut entries = self.entries.lock().expect("cache poisoned");
                return match entries.get(&key) {
                    // A concurrent lookup decoded (or re-baked) it first;
                    // the content is identical either way.
                    Some(StoredEntry::Memory { asset, .. }) => Arc::clone(asset),
                    _ => {
                        entries.insert(
                            key,
                            StoredEntry::Memory {
                                asset: Arc::clone(&asset),
                                from_disk: true,
                                dirty: false,
                            },
                        );
                        asset
                    }
                };
            }
            // Damaged or key-mismatched file: fall through to a re-bake
            // (the next flush overwrites it).
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let asset = Arc::new(bake_object(model, config));
        let mut entries = self.entries.lock().expect("cache poisoned");
        match entries.get(&key) {
            Some(StoredEntry::Memory { asset, .. }) => Arc::clone(asset),
            _ => {
                entries.insert(
                    key,
                    StoredEntry::Memory {
                        asset: Arc::clone(&asset),
                        from_disk: false,
                        dirty: true,
                    },
                );
                asset
            }
        }
    }

    /// Cache-aware replacement for [`crate::asset::bake_placed`]: the
    /// local-frame asset comes from the cache (baked on first request) and
    /// the placement and instance id of `object` are stamped on the copy.
    /// With the mesh and atlas behind [`Arc`], the copy is two reference-
    /// count bumps, not a deep clone — a hit is near-free.
    pub fn get_or_bake_placed(&self, object: &PlacedObject, config: BakeConfig) -> BakedAsset {
        let shared = self.get_or_bake(&object.model, config);
        let mut asset = (*shared).clone();
        asset.object_id = object.id;
        asset.placement = Placement {
            translation: object.translation,
            scale: object.scale,
            rotation_y: object.rotation_y,
        };
        asset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;
    use nerflex_scene::scene::Scene;

    #[test]
    fn fingerprint_is_stable_across_identical_objects() {
        // Two independent builds of the same canonical object are separate
        // allocations with identical content — they must hash equally.
        let a = CanonicalObject::Lego.build();
        let b = CanonicalObject::Lego.build();
        assert_eq!(model_fingerprint(&a), model_fingerprint(&b));
        // And repeated hashing of the same model is stable.
        assert_eq!(model_fingerprint(&a), model_fingerprint(&a));
    }

    #[test]
    fn fingerprint_separates_different_objects() {
        let mut seen = std::collections::HashSet::new();
        for object in CanonicalObject::ALL {
            assert!(
                seen.insert(model_fingerprint(&object.build())),
                "fingerprint collision for {object}"
            );
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = BakeCache::new();
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();

        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(10, 3)); // miss
        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(10, 3)); // hit
        let _ = cache.get_or_bake(&hotdog, BakeConfig::new(12, 3)); // miss (new config)
        let _ = cache.get_or_bake(&chair, BakeConfig::new(10, 3)); // miss (new object)
        let _ = cache.get_or_bake(&chair, BakeConfig::new(10, 3)); // hit

        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert!((stats.hit_ratio() - 0.4).abs() < 1e-12);
        let earlier = CacheStats { hits: 1, misses: 1, ..CacheStats::default() };
        assert_eq!(stats.since(&earlier).hits, 1);
    }

    #[test]
    fn identical_instances_share_entries() {
        // The same canonical object placed twice: one bake serves both.
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Hotdog], 5);
        let cache = BakeCache::new();
        let a = cache.get_or_bake_placed(&scene.objects()[0], BakeConfig::new(12, 3));
        let b = cache.get_or_bake_placed(&scene.objects()[1], BakeConfig::new(12, 3));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        // Each copy keeps its own identity and placement…
        assert_eq!(a.object_id, 0);
        assert_eq!(b.object_id, 1);
        assert_eq!(b.placement.translation, scene.objects()[1].translation);
        // …over the shared local-frame geometry.
        assert_eq!(a.mesh.quad_count(), b.mesh.quad_count());
        assert_eq!(a.size_bytes(), b.size_bytes());
    }

    /// A unique, self-cleaning temporary directory for persistence tests.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "nerflex-cache-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn flush_and_reopen_turn_misses_into_disk_hits() {
        let tmp = TempDir::new("roundtrip");
        let model = CanonicalObject::Hotdog.build();
        let config = BakeConfig::new(10, 3);

        // First process: miss, bake, flush one entry.
        let cache = BakeCache::open(&tmp.0).expect("open");
        assert_eq!(cache.stats().loaded_from_disk, 0);
        let first = cache.get_or_bake(&model, config);
        assert_eq!(cache.flush().expect("flush"), 1);
        // A second flush writes nothing: the entry is clean now.
        assert_eq!(cache.flush().expect("flush"), 0);

        // Second process (simulated): the entry loads, the lookup is a disk
        // hit, nothing re-bakes, the payload is identical.
        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1);
        assert!(reopened.contains(&model, config));
        let second = reopened.get_or_bake(&model, config);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (0, 1, 0));
        assert_eq!(*first.mesh, *second.mesh);
        assert_eq!(*first.atlas, *second.atlas);
        assert_eq!(first.size_bytes(), second.size_bytes());
    }

    #[test]
    fn hit_ratio_and_since_account_for_disk_hits() {
        let tmp = TempDir::new("ratio");
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();
        let config = BakeConfig::new(10, 3);

        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&hotdog, config);
        cache.flush().expect("flush");

        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        let _ = reopened.get_or_bake(&hotdog, config); // disk hit
        let before = reopened.stats();
        let _ = reopened.get_or_bake(&chair, config); // miss
        let _ = reopened.get_or_bake(&chair, config); // in-process hit
        let _ = reopened.get_or_bake(&hotdog, config); // disk hit

        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (1, 2, 1));
        assert_eq!(stats.total_hits(), 3);
        assert!((stats.hit_ratio() - 0.75).abs() < 1e-12, "{stats}");
        // The per-stage delta separates the two hit kinds.
        let delta = stats.since(&before);
        assert_eq!((delta.hits, delta.disk_hits, delta.misses), (1, 1, 1));
        assert_eq!(delta.loaded_from_disk, 1);
    }

    #[test]
    fn corrupted_and_foreign_files_are_skipped_on_open() {
        let tmp = TempDir::new("corrupt");
        let hotdog = CanonicalObject::Hotdog.build();
        let chair = CanonicalObject::Chair.build();
        let config = BakeConfig::new(10, 3);

        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&hotdog, config);
        let _ = cache.get_or_bake(&chair, config);
        cache.flush().expect("flush");

        // Truncate one entry file and drop unrelated garbage next to it.
        let mut files: Vec<_> = std::fs::read_dir(&tmp.0)
            .expect("read dir")
            .map(|f| f.expect("entry").path())
            .collect();
        files.sort();
        let victim = &files[0];
        let bytes = std::fs::read(victim).expect("read entry");
        std::fs::write(victim, &bytes[..bytes.len() / 2]).expect("truncate");
        std::fs::write(tmp.0.join("garbage.nfbake"), b"not a cache entry").expect("garbage");
        std::fs::write(tmp.0.join("unrelated.txt"), b"ignored").expect("unrelated");

        // The lazy index keys on the (valid) file names: both real entries
        // index, the unparsable garbage does not. The damage surfaces at
        // first lookup — the truncated entry re-bakes (miss), the intact one
        // is a disk hit — and the next flush repairs the directory.
        let reopened = BakeCache::open(&tmp.0).expect("reopen survives corruption");
        assert_eq!(reopened.stats().loaded_from_disk, 2, "index is by file name");
        let _ = reopened.get_or_bake(&hotdog, config);
        let _ = reopened.get_or_bake(&chair, config);
        let stats = reopened.stats();
        assert_eq!(stats.disk_hits + stats.misses, 2);
        assert_eq!(stats.misses, 1, "exactly the damaged entry re-bakes");
        assert_eq!(reopened.flush().expect("repair flush"), 1);
        let repaired = BakeCache::open(&tmp.0).expect("open repaired");
        let _ = repaired.get_or_bake(&hotdog, config);
        let _ = repaired.get_or_bake(&chair, config);
        let after = repaired.stats();
        assert_eq!((after.disk_hits, after.misses), (2, 0), "repair restored both entries");
    }

    #[test]
    fn open_indexes_lazily_and_decodes_on_first_lookup() {
        let tmp = TempDir::new("lazy");
        let model = CanonicalObject::Hotdog.build();
        let config = BakeConfig::new(10, 3);
        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&model, config);
        cache.flush().expect("flush");

        // Damage the entry file *after* reopening: if `open` had decoded
        // eagerly the lookup would still be served from memory, but the
        // lazy index reads the file at first lookup and discovers the
        // damage, proving nothing was decoded at open time.
        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1);
        let entry_path =
            tmp.0.join(crate::disk::entry_file_name(model_fingerprint(&model), config));
        std::fs::write(&entry_path, b"damaged after open").expect("overwrite");
        let _ = reopened.get_or_bake(&model, config);
        let stats = reopened.stats();
        assert_eq!((stats.disk_hits, stats.misses), (0, 1), "decode happens at lookup: {stats:?}");
        // The re-baked entry serves subsequent lookups from memory.
        let _ = reopened.get_or_bake(&model, config);
        assert_eq!(reopened.stats().hits, 1);
    }

    #[test]
    fn stale_flush_temporaries_are_swept_on_open() {
        let tmp = TempDir::new("tmp-sweep");
        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&CanonicalObject::Hotdog.build(), BakeConfig::new(10, 3));
        cache.flush().expect("flush");
        // Simulate a crash between write and rename in another process.
        let orphan = tmp.0.join(format!(
            "{}.tmp-99999",
            crate::disk::entry_file_name(42, BakeConfig::new(10, 3))
        ));
        std::fs::write(&orphan, b"partial write").expect("orphan");

        let reopened = BakeCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1, "real entry still loads");
        assert!(!orphan.exists(), "orphaned temporary must be swept");
    }

    #[test]
    fn open_with_limits_prunes_and_rebakes_evicted_entries() {
        let tmp = TempDir::new("limits");
        let model = CanonicalObject::Hotdog.build();
        let config = BakeConfig::new(10, 3);
        let cache = BakeCache::open(&tmp.0).expect("open");
        let _ = cache.get_or_bake(&model, config);
        cache.flush().expect("flush");

        // A zero age budget sweeps every persisted entry on the next open…
        let limits = crate::disk::StoreLimits::default().with_max_age(std::time::Duration::ZERO);
        let pruned = BakeCache::open_with_limits(&tmp.0, &limits).expect("open with limits");
        assert_eq!(pruned.stats().loaded_from_disk, 0, "expired entry must not index");
        // …and the evicted entry simply re-bakes (a miss, not an error).
        let _ = pruned.get_or_bake(&model, config);
        assert_eq!(pruned.stats().misses, 1);
        pruned.flush().expect("repair flush");

        // Unbounded limits leave the repaired store intact.
        let reopened = BakeCache::open_with_limits(&tmp.0, &crate::disk::StoreLimits::default())
            .expect("reopen");
        assert_eq!(reopened.stats().loaded_from_disk, 1);
    }

    #[test]
    fn in_memory_cache_flush_is_a_noop() {
        let cache = BakeCache::new();
        let _ = cache.get_or_bake(&CanonicalObject::Hotdog.build(), BakeConfig::new(10, 3));
        assert_eq!(cache.dir(), None);
        assert_eq!(cache.flush().expect("noop"), 0);
    }

    #[test]
    fn cached_bake_matches_a_direct_bake() {
        let scene = Scene::with_objects(&[CanonicalObject::Chair], 9);
        let object = &scene.objects()[0];
        let config = BakeConfig::new(14, 5);
        let cache = BakeCache::new();
        let cached = cache.get_or_bake_placed(object, config);
        let direct = crate::asset::bake_placed(object, config);
        assert_eq!(cached.size_bytes(), direct.size_bytes());
        assert_eq!(cached.mesh.quad_count(), direct.mesh.quad_count());
        assert_eq!(cached.placement.translation, direct.placement.translation);
        assert_eq!(cached.object_id, direct.object_id);
    }
}
