//! Quad-mesh extraction from the occupancy voxel grid.
//!
//! Each boundary face of the occupancy grid (an occupied cell adjacent to an
//! empty one) becomes one textured quad, mirroring MobileNeRF's polygonal
//! representation. Vertices are then projected onto the SDF zero level set
//! (a surface-nets style relaxation) so the mesh converges to the true
//! surface as the granularity `g` grows — which is what makes the rendered
//! quality a saturating function of `g`, the behaviour the profiler models.

use crate::voxel::VoxelGrid;
use nerflex_math::{Aabb, Vec3};
use nerflex_scene::sdf::Sdf;
use std::collections::HashMap;

/// One textured quad face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quad {
    /// Indices of the four corner vertices (counter-clockwise seen from outside).
    pub vertices: [u32; 4],
    /// Outward face normal before vertex projection (axis-aligned).
    pub face_normal: Vec3,
}

/// An indexed quad mesh with per-vertex positions and normals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuadMesh {
    /// Vertex positions (object/local space).
    pub positions: Vec<Vec3>,
    /// Per-vertex surface normals.
    pub normals: Vec<Vec3>,
    /// Quad faces.
    pub quads: Vec<Quad>,
}

impl QuadMesh {
    /// Extracts the boundary-face quad mesh from `grid`, projecting vertices
    /// onto the surface of `sdf`.
    pub fn extract(grid: &VoxelGrid, sdf: &Sdf) -> Self {
        let r = grid.resolution() as i64;
        let mut vertex_index: HashMap<(u32, u32, u32), u32> = HashMap::new();
        let mut positions: Vec<Vec3> = Vec::new();
        let mut quads: Vec<Quad> = Vec::new();

        // The four lattice corners of the face of cell (x,y,z) facing `dir`,
        // ordered counter-clockwise when seen from outside the cell.
        let face_corners = |x: i64, y: i64, z: i64, dir: usize| -> [(i64, i64, i64); 4] {
            let (x1, y1, z1) = (x + 1, y + 1, z + 1);
            match dir {
                0 => [(x1, y, z), (x1, y1, z), (x1, y1, z1), (x1, y, z1)], // +X
                1 => [(x, y, z), (x, y, z1), (x, y1, z1), (x, y1, z)],     // -X
                2 => [(x, y1, z), (x, y1, z1), (x1, y1, z1), (x1, y1, z)], // +Y
                3 => [(x, y, z), (x1, y, z), (x1, y, z1), (x, y, z1)],     // -Y
                4 => [(x, y, z1), (x1, y, z1), (x1, y1, z1), (x, y1, z1)], // +Z
                _ => [(x, y, z), (x, y1, z), (x1, y1, z), (x1, y, z)],     // -Z
            }
        };
        const DIRS: [(i64, i64, i64); 6] =
            [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)];

        for z in 0..r {
            for y in 0..r {
                for x in 0..r {
                    if !grid.occupied(x, y, z) {
                        continue;
                    }
                    for (dir, (dx, dy, dz)) in DIRS.iter().enumerate() {
                        if grid.occupied(x + dx, y + dy, z + dz) {
                            continue;
                        }
                        let corners = face_corners(x, y, z, dir);
                        let mut idx = [0u32; 4];
                        for (i, &(cx, cy, cz)) in corners.iter().enumerate() {
                            let key = (cx as u32, cy as u32, cz as u32);
                            idx[i] = *vertex_index.entry(key).or_insert_with(|| {
                                positions.push(grid.corner_position(key.0, key.1, key.2));
                                (positions.len() - 1) as u32
                            });
                        }
                        quads.push(Quad {
                            vertices: idx,
                            face_normal: Vec3::new(*dx as f32, *dy as f32, *dz as f32),
                        });
                    }
                }
            }
        }

        // Project lattice vertices onto the SDF surface (bounded relaxation so
        // coarse grids stay watertight) and record analytic normals.
        let max_move = grid.cell_size().max_component();
        let mut normals = Vec::with_capacity(positions.len());
        for p in positions.iter_mut() {
            let mut q = *p;
            for _ in 0..3 {
                let d = sdf.distance(q);
                if d.abs() < 1e-4 {
                    break;
                }
                let n = sdf.normal(q);
                q -= n * d;
            }
            if (q - *p).length() <= max_move {
                *p = q;
            }
            normals.push(sdf.normal(*p));
        }

        Self { positions, normals, quads }
    }

    /// Number of quad faces — the paper's measure of geometric complexity.
    pub fn quad_count(&self) -> usize {
        self.quads.len()
    }

    /// Number of unique vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// The centre of quad `q`.
    pub fn quad_center(&self, q: usize) -> Vec3 {
        let quad = &self.quads[q];
        quad.vertices.iter().map(|&i| self.positions[i as usize]).fold(Vec3::ZERO, |acc, p| acc + p)
            * 0.25
    }

    /// Bilinear interpolation of position across quad `q` at patch
    /// coordinates `(u, v)` in `[0, 1]²`.
    pub fn quad_point(&self, q: usize, u: f32, v: f32) -> Vec3 {
        let quad = &self.quads[q];
        let p0 = self.positions[quad.vertices[0] as usize];
        let p1 = self.positions[quad.vertices[1] as usize];
        let p2 = self.positions[quad.vertices[2] as usize];
        let p3 = self.positions[quad.vertices[3] as usize];
        let bottom = p0.lerp(p1, u);
        let top = p3.lerp(p2, u);
        bottom.lerp(top, v)
    }

    /// Bilinear interpolation of the vertex normals across quad `q`.
    pub fn quad_normal(&self, q: usize, u: f32, v: f32) -> Vec3 {
        let quad = &self.quads[q];
        let n0 = self.normals[quad.vertices[0] as usize];
        let n1 = self.normals[quad.vertices[1] as usize];
        let n2 = self.normals[quad.vertices[2] as usize];
        let n3 = self.normals[quad.vertices[3] as usize];
        let bottom = n0.lerp(n1, u);
        let top = n3.lerp(n2, u);
        bottom.lerp(top, v).normalized()
    }

    /// Approximate world-space edge length of quad `q` (mean of its two edges).
    pub fn quad_size(&self, q: usize) -> f32 {
        let quad = &self.quads[q];
        let p0 = self.positions[quad.vertices[0] as usize];
        let p1 = self.positions[quad.vertices[1] as usize];
        let p3 = self.positions[quad.vertices[3] as usize];
        (p0.distance(p1) + p0.distance(p3)) * 0.5
    }

    /// Bounding box of all vertices.
    pub fn bounding_box(&self) -> Aabb {
        let mut bb = Aabb::empty();
        for p in &self.positions {
            bb.expand_point(*p);
        }
        bb
    }

    /// Mean absolute distance from the mesh vertices to the true surface — a
    /// direct measure of geometric error used in tests and ablations.
    pub fn mean_surface_error(&self, sdf: &Sdf) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        self.positions.iter().map(|&p| sdf.distance(p).abs() as f64).sum::<f64>()
            / self.positions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;

    fn sphere_mesh(resolution: u32) -> (QuadMesh, Sdf) {
        let sdf = Sdf::Sphere { radius: 1.0 };
        let grid = VoxelGrid::from_sdf(&sdf, resolution);
        (QuadMesh::extract(&grid, &sdf), sdf)
    }

    #[test]
    fn extraction_matches_boundary_face_count() {
        let sdf = Sdf::Sphere { radius: 1.0 };
        let grid = VoxelGrid::from_sdf(&sdf, 16);
        let mesh = QuadMesh::extract(&grid, &sdf);
        assert_eq!(mesh.quad_count(), grid.boundary_face_count());
        assert!(mesh.vertex_count() > 0);
    }

    #[test]
    fn vertices_are_shared_between_adjacent_quads() {
        let (mesh, _) = sphere_mesh(12);
        // A closed quad surface over a lattice shares vertices: strictly fewer
        // than 4 unique vertices per quad.
        assert!(mesh.vertex_count() < mesh.quad_count() * 4);
    }

    #[test]
    fn projection_reduces_surface_error() {
        let (mesh, sdf) = sphere_mesh(20);
        // After projection the vertices should hug the unit sphere far better
        // than the lattice spacing (2/20 = 0.1).
        let err = mesh.mean_surface_error(&sdf);
        assert!(err < 0.02, "mean surface error {err}");
    }

    #[test]
    fn finer_grids_reduce_geometric_error() {
        let (coarse, sdf) = sphere_mesh(10);
        let (fine, _) = sphere_mesh(40);
        assert!(fine.mean_surface_error(&sdf) <= coarse.mean_surface_error(&sdf));
        assert!(fine.quad_count() > coarse.quad_count());
    }

    #[test]
    fn quad_interpolation_stays_near_surface() {
        let (mesh, sdf) = sphere_mesh(24);
        for q in (0..mesh.quad_count()).step_by(37) {
            let p = mesh.quad_point(q, 0.5, 0.5);
            assert!(sdf.distance(p).abs() < 0.15, "quad {q} centre too far: {p:?}");
            let n = mesh.quad_normal(q, 0.5, 0.5);
            assert!((n.length() - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn quad_sizes_match_cell_scale() {
        let (mesh, _) = sphere_mesh(20);
        // Cell size is about 2/20 = 0.1; projected quads stay within a small
        // multiple of that.
        for q in (0..mesh.quad_count()).step_by(53) {
            let s = mesh.quad_size(q);
            assert!(s > 0.005 && s < 0.4, "quad {q} size {s}");
        }
    }

    #[test]
    fn complexity_ordering_lego_vs_hotdog() {
        let build = |o: CanonicalObject| {
            let model = o.build();
            let grid = VoxelGrid::from_sdf(&model.sdf, 32);
            QuadMesh::extract(&grid, &model.sdf).quad_count()
        };
        assert!(build(CanonicalObject::Lego) > build(CanonicalObject::Hotdog));
    }

    #[test]
    fn bounding_box_encloses_unit_sphere_mesh() {
        let (mesh, _) = sphere_mesh(16);
        let bb = mesh.bounding_box();
        assert!(bb.min.x >= -1.2 && bb.max.x <= 1.2);
        assert!(bb.diagonal() > 2.0);
    }
}
