//! Texture atlas: `p × p` texels baked per quad face.
//!
//! "For each quad face, they allocate p×p pixels for its final appearance
//! texture" (paper §III-B). Texels are stored quantised to 8 bits per
//! channel — the same storage format the real systems ship as PNGs — so the
//! atlas byte size is exactly `quad_count · p² · 3`.

use crate::mesh::QuadMesh;
use nerflex_image::Color;
use nerflex_scene::appearance::Appearance;
use serde::{Deserialize, Serialize};

/// A per-quad texture atlas with `patch × patch` texels per quad.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextureAtlas {
    patch: u32,
    quad_count: usize,
    /// Quantised RGB texels, `quad_count · patch · patch` entries.
    data: Vec<[u8; 3]>,
}

impl TextureAtlas {
    /// Bakes the atlas for `mesh` from the object's procedural `appearance`.
    ///
    /// `texel_density_cutoff` is the highest spatial frequency (cycles per
    /// world unit) the atlas can represent; it is derived from the patch size
    /// and quad size by the caller ([`crate::bake_object`]) and passed to the
    /// band-limited appearance sampler so small patches yield blurrier
    /// textures, mirroring how a low-resolution baked texture loses detail.
    ///
    /// # Panics
    ///
    /// Panics when `patch` is zero.
    pub fn bake(
        mesh: &QuadMesh,
        appearance: &Appearance,
        patch: u32,
        texel_density_cutoff: f32,
    ) -> Self {
        Self::bake_with(mesh, patch, |pos, normal| {
            appearance.albedo_band_limited(pos, normal, texel_density_cutoff)
        })
    }

    /// Bakes the atlas with an arbitrary per-texel sampler `sampler(position,
    /// normal) → albedo`. Used by the Single-NeRF baseline, whose scene-level
    /// mesh spans objects with different appearances.
    ///
    /// # Panics
    ///
    /// Panics when `patch` is zero.
    pub fn bake_with(
        mesh: &QuadMesh,
        patch: u32,
        mut sampler: impl FnMut(nerflex_math::Vec3, nerflex_math::Vec3) -> Color,
    ) -> Self {
        assert!(patch > 0, "patch size must be positive");
        let p = patch as usize;
        let quad_count = mesh.quad_count();
        let mut data = vec![[0u8; 3]; quad_count * p * p];
        for q in 0..quad_count {
            for ty in 0..p {
                for tx in 0..p {
                    // Texel centres in patch space.
                    let u = (tx as f32 + 0.5) / patch as f32;
                    let v = (ty as f32 + 0.5) / patch as f32;
                    let pos = mesh.quad_point(q, u, v);
                    let normal = mesh.quad_normal(q, u, v);
                    let color = sampler(pos, normal).clamped();
                    data[(q * p + ty) * p + tx] = [
                        (color.r * 255.0).round() as u8,
                        (color.g * 255.0).round() as u8,
                        (color.b * 255.0).round() as u8,
                    ];
                }
            }
        }
        Self { patch, quad_count, data }
    }

    /// Reassembles an atlas from its raw parts (the persistence codec's
    /// inverse of [`TextureAtlas::texel_data`]).
    ///
    /// # Panics
    ///
    /// Panics when `patch` is zero or `data` does not hold exactly
    /// `quad_count · patch²` texels.
    pub fn from_raw(patch: u32, quad_count: usize, data: Vec<[u8; 3]>) -> Self {
        assert!(patch > 0, "patch size must be positive");
        assert_eq!(
            data.len(),
            quad_count * (patch as usize) * (patch as usize),
            "texel buffer does not match quad_count · patch²"
        );
        Self { patch, quad_count, data }
    }

    /// The raw quantised texel buffer (row-major per quad), as stored on disk.
    pub fn texel_data(&self) -> &[[u8; 3]] {
        &self.data
    }

    /// Texture patch side length in texels.
    pub fn patch(&self) -> u32 {
        self.patch
    }

    /// Number of quads covered by the atlas.
    pub fn quad_count(&self) -> usize {
        self.quad_count
    }

    /// Total number of texels.
    pub fn texel_count(&self) -> usize {
        self.data.len()
    }

    /// Storage size in bytes (3 bytes per texel).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * 3
    }

    /// The colour of texel `(tx, ty)` of quad `q`.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn texel(&self, q: usize, tx: u32, ty: u32) -> Color {
        assert!(q < self.quad_count, "quad index {q} out of range");
        assert!(tx < self.patch && ty < self.patch, "texel ({tx},{ty}) out of range");
        let p = self.patch as usize;
        let [r, g, b] = self.data[(q * p + ty as usize) * p + tx as usize];
        Color::new(r as f32 / 255.0, g as f32 / 255.0, b as f32 / 255.0)
    }

    /// Bilinearly filtered sample of quad `q` at patch coordinates `(u, v)` in
    /// `[0, 1]²` (clamped).
    pub fn sample(&self, q: usize, u: f32, v: f32) -> Color {
        let p = self.patch as f32;
        let x = (u.clamp(0.0, 1.0) * p - 0.5).clamp(0.0, p - 1.0);
        let y = (v.clamp(0.0, 1.0) * p - 0.5).clamp(0.0, p - 1.0);
        let x0 = x.floor() as u32;
        let y0 = y.floor() as u32;
        let x1 = (x0 + 1).min(self.patch - 1);
        let y1 = (y0 + 1).min(self.patch - 1);
        let fx = x - x0 as f32;
        let fy = y - y0 as f32;
        let top = self.texel(q, x0, y0).lerp(self.texel(q, x1, y0), fx);
        let bottom = self.texel(q, x0, y1).lerp(self.texel(q, x1, y1), fx);
        top.lerp(bottom, fy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voxel::VoxelGrid;
    use nerflex_scene::sdf::Sdf;

    fn small_mesh() -> QuadMesh {
        let sdf = Sdf::Sphere { radius: 0.8 };
        let grid = VoxelGrid::from_sdf(&sdf, 8);
        QuadMesh::extract(&grid, &sdf)
    }

    #[test]
    fn atlas_size_accounting_is_exact() {
        let mesh = small_mesh();
        let app = Appearance::Solid { color: Color::new(0.2, 0.5, 0.9) };
        let atlas = TextureAtlas::bake(&mesh, &app, 5, 100.0);
        assert_eq!(atlas.quad_count(), mesh.quad_count());
        assert_eq!(atlas.texel_count(), mesh.quad_count() * 25);
        assert_eq!(atlas.size_bytes(), mesh.quad_count() * 25 * 3);
    }

    #[test]
    fn solid_appearance_bakes_uniform_texels() {
        let mesh = small_mesh();
        let app = Appearance::Solid { color: Color::new(0.25, 0.5, 0.75) };
        let atlas = TextureAtlas::bake(&mesh, &app, 3, 100.0);
        let c = atlas.texel(0, 1, 1);
        assert!((c.r - 0.25).abs() < 0.01 && (c.g - 0.5).abs() < 0.01 && (c.b - 0.75).abs() < 0.01);
        // Bilinear sample of a uniform patch is the same colour.
        let s = atlas.sample(0, 0.37, 0.81);
        assert!(s.max_channel_diff(c) < 0.01);
    }

    #[test]
    fn larger_patches_reduce_texture_error_against_full_appearance() {
        let mesh = small_mesh();
        let app = Appearance::Noise {
            base: Color::BLACK,
            accent: Color::WHITE,
            frequency: 8.0,
            octaves: 3,
        };
        // Mean error of baked texels relative to the full-bandwidth appearance;
        // the cut-off grows with the patch size (as in `bake_object`), so
        // larger patches must reproduce the texture more faithfully.
        let mean_error = |patch: u32| {
            let cutoff = patch as f32 / 0.2; // pretend quads are 0.2 units wide
            let atlas = TextureAtlas::bake(&mesh, &app, patch, cutoff);
            let mut err = 0.0f64;
            let mut count = 0.0f64;
            for q in 0..atlas.quad_count() {
                for ty in 0..patch {
                    for tx in 0..patch {
                        let u = (tx as f32 + 0.5) / patch as f32;
                        let v = (ty as f32 + 0.5) / patch as f32;
                        let reference =
                            app.albedo(mesh.quad_point(q, u, v), mesh.quad_normal(q, u, v));
                        err += atlas.texel(q, tx, ty).max_channel_diff(reference) as f64;
                        count += 1.0;
                    }
                }
            }
            err / count
        };
        let coarse = mean_error(3);
        let fine = mean_error(9);
        assert!(fine < coarse, "texture error should shrink with patch size: {coarse} -> {fine}");
        assert!(fine < 0.02, "full-bandwidth bake should be near-exact, got {fine}");
    }

    #[test]
    fn quantisation_error_is_bounded() {
        let mesh = small_mesh();
        let app = Appearance::Solid { color: Color::new(0.1234, 0.5678, 0.9012) };
        let atlas = TextureAtlas::bake(&mesh, &app, 3, 10.0);
        let c = atlas.texel(0, 0, 0);
        assert!(c.max_channel_diff(Color::new(0.1234, 0.5678, 0.9012)) <= 0.5 / 255.0 + 1e-4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_texel_panics() {
        let mesh = small_mesh();
        let atlas = TextureAtlas::bake(&mesh, &Appearance::Solid { color: Color::WHITE }, 3, 10.0);
        let _ = atlas.texel(0, 3, 0);
    }
}
