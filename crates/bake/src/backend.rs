//! Storage backends for the generic [`crate::store::KeyedStore`].
//!
//! A backend is a flat namespace of named, atomically replaceable blobs —
//! exactly what the persistence layer needs and nothing more. The store
//! owns every *policy* (lazy indexing, dirty tracking, pruning, corruption
//! tolerance, statistics); a backend owns only the *mechanism* of listing,
//! reading and atomically writing entry files, so a new storage substrate
//! (an object store, a network share, a test double) plugs in by
//! implementing five methods.
//!
//! Three backends ship here:
//!
//! * [`DirBackend`] — one local directory, one file per entry, written via
//!   a process-unique temporary and renamed into place. This is the
//!   pre-existing on-disk layout, byte for byte: stores written by earlier
//!   versions open unchanged, and CI cache keys keyed on the format
//!   version keep working.
//! * [`MemBackend`] — an in-memory map behind a mutex. Used as the "remote
//!   object store" stand-in in tests and as the simplest possible
//!   reference implementation of the contract.
//! * [`SharedBackend`] — a local [`DirBackend`] layered over a shared
//!   remote backend, read-through and write-through: reads that miss the
//!   local layer are served from the remote and populate the local copy,
//!   writes land in both. A build farm points every machine's local layer
//!   at one shared remote and each entry is baked once, fleet-wide.
//!
//! # Contract
//!
//! * `list` returns candidate entry files only: names carrying the
//!   backend's extension, excluding in-flight `.tmp-` temporaries. Foreign
//!   names are harmless (the store ignores anything its codec cannot
//!   parse), but backends should not invent entries.
//! * `write_atomic(name, bytes)` must never expose a torn entry to a
//!   concurrent reader: either the old blob or the complete new one.
//! * `remove` and `sweep_tmp` are local maintenance: a layered backend
//!   confines them to its local layer — **pruning never evicts the shared
//!   remote** (see [`SharedBackend`]).
//! * Determinism: a backend stores and returns entry bytes verbatim. The
//!   worker/backend choice never changes output bits (`docs/stores.md`,
//!   `docs/determinism.md`).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, SystemTime};

/// Listing metadata of one stored entry blob — everything pruning needs
/// (age + size) without reading any payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryMeta {
    /// Entry file name (the flat key of the backend namespace).
    pub name: String,
    /// Payload size in bytes.
    pub size: u64,
    /// Last-modified time (best effort; backends without timestamps report
    /// their creation-order approximation).
    pub modified: SystemTime,
}

/// A flat namespace of named, atomically replaceable entry blobs — the
/// pluggable substrate under [`crate::store::KeyedStore`]. See the module
/// docs for the contract.
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Lists the candidate entry blobs currently visible (local and, for
    /// layered backends, remote), excluding in-flight temporaries.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the namespace itself cannot be
    /// enumerated (a missing local directory lists as empty, not an error).
    fn list(&self) -> io::Result<Vec<EntryMeta>>;

    /// The subset of [`StoreBackend::list`] that pruning may remove. The
    /// default is everything; layered backends override this to confine
    /// retention sweeps to their local layer.
    ///
    /// # Errors
    ///
    /// Same as [`StoreBackend::list`].
    fn list_prunable(&self) -> io::Result<Vec<EntryMeta>> {
        self.list()
    }

    /// Reads one entry's bytes.
    ///
    /// # Errors
    ///
    /// `NotFound` when no such entry exists; otherwise the underlying
    /// error. Callers treat any error as "entry unavailable" and rebuild.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Writes one entry so that a concurrent reader observes either the old
    /// blob or the complete new one, never a torn write.
    ///
    /// # Errors
    ///
    /// Returns the underlying error; a failed write must not leave a
    /// partially visible entry.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Removes one entry (from the local layer of a layered backend).
    ///
    /// # Errors
    ///
    /// `NotFound` when no such entry exists; otherwise the underlying
    /// error. Pruning treats per-entry failures as skips.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Removes temporaries orphaned by a crash between write and rename
    /// (local layer only). Per-file failures are skipped.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the namespace cannot be
    /// enumerated.
    fn sweep_tmp(&self) -> io::Result<()>;

    /// One-line human-readable description (for logs and reports).
    fn describe(&self) -> String;

    /// Resilience counters for layered backends ([`SharedBackend`] retries,
    /// degradation, local-layer faults). Simple backends have nothing to
    /// report; decorators forward to their inner backend.
    fn resilience(&self) -> ResilienceStats {
        ResilienceStats::default()
    }
}

// ---------------------------------------------------------------------------
// Resilience: retry policy, remote health, counters
// ---------------------------------------------------------------------------

/// Bounded-retry policy for remote-side store operations.
///
/// Applied by [`SharedBackend`] to *transient* remote errors (timeouts,
/// connection resets and friends — see [`RetryPolicy::is_transient`]):
/// a failing call is re-attempted up to `max_attempts` total tries with a
/// doubling `backoff` between tries. `NotFound` is a normal answer, never
/// retried; non-transient kinds fail fast. When the attempts are exhausted
/// the backend trips its circuit breaker and degrades to local-only service
/// (see [`RemoteHealth`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per logical operation (1 = no retries). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three tries with a 1 ms initial backoff — enough to ride out blips
    /// without stalling a build on a genuinely dead remote.
    fn default() -> Self {
        Self { max_attempts: 3, backoff: Duration::from_millis(1) }
    }
}

impl RetryPolicy {
    /// A policy with the given attempt bound and initial backoff.
    pub fn new(max_attempts: u32, backoff: Duration) -> Self {
        Self { max_attempts, backoff }
    }

    /// No retries: every remote error is final.
    pub fn none() -> Self {
        Self { max_attempts: 1, backoff: Duration::ZERO }
    }

    /// Whether an error kind is worth retrying: the transport may recover
    /// on the next attempt. Semantic errors (`NotFound`, `InvalidInput`,
    /// permission failures, full disks) are not transient.
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::TimedOut
                | io::ErrorKind::Interrupted
                | io::ErrorKind::WouldBlock
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::ConnectionRefused
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
        )
    }
}

/// Circuit-breaker state of a layered backend's remote side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteHealth {
    /// Remote operations are attempted (with retries) as usual.
    Healthy,
    /// The remote failed persistently; operations are served local-only and
    /// the remote is re-probed periodically.
    Degraded,
}

/// Resilience counters surfaced through [`StoreBackend::resilience`] and
/// merged into `StoreStats` by the store layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Logical remote operations attempted (each may span several tries).
    pub remote_ops: usize,
    /// Remote operations that failed after exhausting their retry budget
    /// (or failed a degraded-mode probe).
    pub remote_errors: usize,
    /// Individual retries performed on transient remote errors.
    pub retries: usize,
    /// Operations short-circuited to local-only because the remote was
    /// degraded at the time.
    pub degraded_ops: usize,
    /// Local-layer errors other than `NotFound` observed on the read path
    /// (a corrupt or unreadable local entry hidden behind a remote
    /// fallback).
    pub local_errors: usize,
    /// Whether the remote is currently degraded.
    pub degraded: bool,
}

impl ResilienceStats {
    /// The circuit-breaker state this snapshot was taken in.
    pub fn health(&self) -> RemoteHealth {
        if self.degraded {
            RemoteHealth::Degraded
        } else {
            RemoteHealth::Healthy
        }
    }

    /// Merge another snapshot (summing counters; degraded if either is).
    pub fn merge(&self, other: &ResilienceStats) -> ResilienceStats {
        ResilienceStats {
            remote_ops: self.remote_ops + other.remote_ops,
            remote_errors: self.remote_errors + other.remote_errors,
            retries: self.retries + other.retries,
            degraded_ops: self.degraded_ops + other.degraded_ops,
            local_errors: self.local_errors + other.local_errors,
            degraded: self.degraded || other.degraded,
        }
    }
}

/// Process-unique suffix for in-flight temporary files. Unique per call,
/// not just per process: concurrent flushes of one entry must never share
/// a temporary.
fn tmp_suffix() -> String {
    static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
    format!(".tmp-{}-{}", std::process::id(), TMP_SEQ.fetch_add(1, Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// DirBackend
// ---------------------------------------------------------------------------

/// The classic one-directory, one-file-per-entry backend. Writes go to a
/// process-unique `<name>.tmp-<pid>-<seq>` sibling and are renamed into
/// place, so concurrent readers never observe a torn entry. The layout is
/// byte-identical to the pre-`KeyedStore` stores.
///
/// The namespace is strictly **flat**: names containing a path separator
/// are rejected with `InvalidInput` (its non-recursive `list` could never
/// return them, so accepting such a write would create an entry that is
/// invisible to indexing — a silent sharing failure). Nesting several
/// stores in one directory tree is done at the *path* level
/// ([`crate::store::StoreOptions::subdir`] joins directories); the
/// name-prefix wrapper [`PrefixedBackend`] is for genuinely flat
/// namespaces like [`MemBackend`].
#[derive(Debug, Clone)]
pub struct DirBackend {
    dir: PathBuf,
    extension: String,
}

impl DirBackend {
    /// Opens (creating if missing) a directory backend for entry files with
    /// the given extension (no leading dot).
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>, extension: &str) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, extension: extension.to_string() })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rejects names that would escape the flat namespace (see the type
    /// docs): such an entry could be written but never listed back.
    fn flat(name: &str) -> io::Result<&str> {
        if name.contains('/') || name.contains('\\') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("entry name {name:?} is nested; DirBackend namespaces are flat"),
            ));
        }
        Ok(name)
    }
}

impl StoreBackend for DirBackend {
    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        let listing = match std::fs::read_dir(&self.dir) {
            Ok(listing) => listing,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(err) => return Err(err),
        };
        let suffix = format!(".{}", self.extension);
        let now = SystemTime::now();
        let mut entries = Vec::new();
        for file in listing {
            let Ok(file) = file else { continue };
            let Some(name) = file.file_name().to_str().map(str::to_string) else { continue };
            if !name.ends_with(&suffix) || name.contains(".tmp-") {
                continue;
            }
            let Ok(meta) = file.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            entries.push(EntryMeta {
                name,
                size: meta.len(),
                modified: meta.modified().unwrap_or(now),
            });
        }
        Ok(entries)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.dir.join(Self::flat(name)?))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let path = self.dir.join(Self::flat(name)?);
        let tmp = self.dir.join(format!("{name}{}", tmp_suffix()));
        let result = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, &path));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.dir.join(Self::flat(name)?))
    }

    fn sweep_tmp(&self) -> io::Result<()> {
        let listing = match std::fs::read_dir(&self.dir) {
            Ok(listing) => listing,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(err) => return Err(err),
        };
        // Only sweep temporaries of *this* store's entries (possibly another
        // process's — entry content is deterministic, so a live writer's
        // rename losing to this unlink only costs a re-flush next run).
        let marker = format!(".{}.tmp-", self.extension);
        for file in listing.flatten() {
            if file.file_name().to_str().is_some_and(|n| n.contains(&marker)) {
                let _ = std::fs::remove_file(file.path());
            }
        }
        Ok(())
    }

    fn describe(&self) -> String {
        format!("dir {}", self.dir.display())
    }
}

// ---------------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------------

/// An in-memory backend: the "remote object store" stand-in for tests and
/// the reference implementation of the contract. Share one instance behind
/// an [`Arc`] to model several machines talking to one remote.
#[derive(Debug, Default)]
pub struct MemBackend {
    entries: Mutex<HashMap<String, (Vec<u8>, SystemTime)>>,
}

impl MemBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl StoreBackend for MemBackend {
    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        Ok(self
            .entries
            .lock()
            .expect("mem backend poisoned")
            .iter()
            .map(|(name, (bytes, modified))| EntryMeta {
                name: name.clone(),
                size: bytes.len() as u64,
                modified: *modified,
            })
            .collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.entries
            .lock()
            .expect("mem backend poisoned")
            .get(name)
            .map(|(bytes, _)| bytes.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no entry {name}")))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.entries
            .lock()
            .expect("mem backend poisoned")
            .insert(name.to_string(), (bytes.to_vec(), SystemTime::now()));
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.entries
            .lock()
            .expect("mem backend poisoned")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no entry {name}")))
    }

    fn sweep_tmp(&self) -> io::Result<()> {
        Ok(()) // writes are atomic map inserts; there are no temporaries
    }

    fn describe(&self) -> String {
        format!("mem ({} entries)", self.len())
    }
}

// ---------------------------------------------------------------------------
// SharedBackend
// ---------------------------------------------------------------------------

/// A local directory layered over a shared remote backend — the
/// build-farm-style cross-machine store.
///
/// * **Reads** are read-through: a local hit is served locally; a local
///   miss is fetched from the remote and (best-effort) populated into the
///   local layer, so the next read is local.
/// * **Writes** are write-through: an entry lands in the local layer first,
///   then in the remote, so every other machine sharing the remote sees it.
/// * **Listing** is the union of both layers, which is what lets a machine
///   with a *cold local directory* index a warm remote and re-bake nothing.
/// * **Maintenance** ([`StoreBackend::remove`], [`StoreBackend::sweep_tmp`],
///   [`StoreBackend::list_prunable`]) is confined to the local layer:
///   pruning a machine's local cache never evicts the fleet's shared
///   entries.
///
/// Entries are content-addressed and deterministic, so two machines racing
/// to write one name write identical bytes — last-write-wins is correct by
/// construction (see `docs/stores.md`).
///
/// # Resilience
///
/// Remote calls run under a [`RetryPolicy`]: transient errors are retried
/// with doubling backoff; a call that exhausts its attempts (or fails with
/// a non-transient kind) trips a circuit breaker and the backend degrades
/// to **local-only** service ([`RemoteHealth::Degraded`]): listings show
/// the local layer, reads that miss locally report the remote unavailable
/// (the store rebuilds — correctness is preserved, sharing is not), and
/// writes land locally only. Every [`REPROBE_INTERVAL`]-th remote-needing
/// operation probes the remote once; a successful probe restores
/// [`RemoteHealth::Healthy`]. `NotFound` from the remote is a normal
/// answer — never retried, and it *clears* degradation on a probe (the
/// remote responded). All of it is counted in [`ResilienceStats`] and
/// surfaced through `StoreStats` (see `docs/faults.md`).
#[derive(Debug)]
pub struct SharedBackend {
    local: DirBackend,
    remote: Arc<dyn StoreBackend>,
    policy: RetryPolicy,
    state: Arc<ResilienceState>,
    /// Degraded-mode re-probe cadence, counted per *handle*: each clone
    /// probes on every [`REPROBE_INTERVAL`]-th of its own degraded
    /// operations. The counter deliberately lives outside the shared
    /// [`ResilienceState`] — with a shared counter, a busy clone could
    /// consume all the probe slots and starve a quiet one (or hand it a
    /// probe on its very first operation).
    probe_tick: AtomicUsize,
}

impl Clone for SharedBackend {
    fn clone(&self) -> Self {
        Self {
            local: self.local.clone(),
            remote: Arc::clone(&self.remote),
            policy: self.policy,
            state: Arc::clone(&self.state),
            // Breaker state and counters are shared; the probe cadence
            // starts fresh so the clone probes on its own 16th degraded op.
            probe_tick: AtomicUsize::new(1),
        }
    }
}

/// In degraded mode, every N-th remote-needing operation re-probes the
/// remote instead of short-circuiting, so a recovered remote is picked up
/// without an explicit reset.
pub const REPROBE_INTERVAL: usize = 16;

#[derive(Debug, Default)]
struct ResilienceState {
    degraded: AtomicBool,
    remote_ops: AtomicUsize,
    remote_errors: AtomicUsize,
    retries: AtomicUsize,
    degraded_ops: AtomicUsize,
    local_errors: AtomicUsize,
}

impl SharedBackend {
    /// Layers `local` over `remote` with the default [`RetryPolicy`].
    pub fn new(local: DirBackend, remote: Arc<dyn StoreBackend>) -> Self {
        Self {
            local,
            remote,
            policy: RetryPolicy::default(),
            state: Arc::default(),
            probe_tick: AtomicUsize::new(1),
        }
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The local layer's directory.
    pub fn local_dir(&self) -> &Path {
        self.local.dir()
    }

    /// Current circuit-breaker state of the remote side.
    pub fn remote_health(&self) -> RemoteHealth {
        if self.state.degraded.load(Ordering::Relaxed) {
            RemoteHealth::Degraded
        } else {
            RemoteHealth::Healthy
        }
    }

    /// Runs one logical remote operation under the retry policy and the
    /// circuit breaker. `NotFound` passes through untouched (a remote that
    /// answers "no such entry" is healthy).
    fn remote_call<T>(&self, op: &str, call: impl Fn() -> io::Result<T>) -> io::Result<T> {
        let state = &self.state;
        state.remote_ops.fetch_add(1, Ordering::Relaxed);
        if state.degraded.load(Ordering::Relaxed) {
            let tick = self.probe_tick.fetch_add(1, Ordering::Relaxed);
            if !tick.is_multiple_of(REPROBE_INTERVAL) {
                state.degraded_ops.fetch_add(1, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    format!("remote degraded; {op} served local-only"),
                ));
            }
            return match call() {
                Ok(value) => {
                    state.degraded.store(false, Ordering::Relaxed);
                    eprintln!("nerflex store: remote recovered; leaving local-only mode");
                    Ok(value)
                }
                Err(err) if err.kind() == io::ErrorKind::NotFound => {
                    // The remote responded — it is reachable again.
                    state.degraded.store(false, Ordering::Relaxed);
                    Err(err)
                }
                Err(err) => {
                    state.remote_errors.fetch_add(1, Ordering::Relaxed);
                    state.degraded_ops.fetch_add(1, Ordering::Relaxed);
                    Err(err)
                }
            };
        }
        let attempts = self.policy.max_attempts.max(1);
        let mut backoff = self.policy.backoff;
        let mut attempt = 1;
        loop {
            match call() {
                Ok(value) => return Ok(value),
                Err(err) if err.kind() == io::ErrorKind::NotFound => return Err(err),
                Err(err) => {
                    if attempt < attempts && RetryPolicy::is_transient(err.kind()) {
                        attempt += 1;
                        state.retries.fetch_add(1, Ordering::Relaxed);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                            backoff = backoff.saturating_mul(2);
                        }
                        continue;
                    }
                    state.remote_errors.fetch_add(1, Ordering::Relaxed);
                    if !state.degraded.swap(true, Ordering::Relaxed) {
                        self.probe_tick.store(1, Ordering::Relaxed);
                        eprintln!(
                            "nerflex store: remote {op} failed ({err}); degrading to \
                             local-only with periodic re-probe"
                        );
                    }
                    return Err(err);
                }
            }
        }
    }
}

impl StoreBackend for SharedBackend {
    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        let mut entries = self.local.list()?;
        // A degraded or failing remote shrinks the view to the local layer:
        // entries the remote holds get rebuilt instead of shared, which
        // costs time, never bits.
        let Ok(remote) = self.remote_call("list", || self.remote.list()) else {
            return Ok(entries);
        };
        let seen: std::collections::HashSet<String> =
            entries.iter().map(|e| e.name.clone()).collect();
        for meta in remote {
            if !seen.contains(&meta.name) {
                entries.push(meta);
            }
        }
        Ok(entries)
    }

    fn list_prunable(&self) -> io::Result<Vec<EntryMeta>> {
        self.local.list()
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        match self.local.read(name) {
            Ok(bytes) => return Ok(bytes),
            // Only a clean miss falls through silently; any other local
            // error (permissions, corruption) is counted and reported, then
            // the remote gets its chance to serve the entry anyway.
            Err(err) if err.kind() == io::ErrorKind::NotFound => {}
            Err(err) => {
                self.state.local_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("nerflex store: local read of {name:?} failed ({err}); trying remote");
            }
        }
        let bytes = self.remote_call("read", || self.remote.read(name))?;
        // Populate the local layer so the next read stays local.
        // Best-effort: a full local disk must not fail the lookup.
        let _ = self.local.write_atomic(name, &bytes);
        Ok(bytes)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.local.write_atomic(name, bytes)?;
        // The local layer holds the entry; failing to propagate it to the
        // remote degrades *sharing*, not correctness. The failure is
        // counted (and trips the breaker), not raised.
        let _ = self.remote_call("write", || self.remote.write_atomic(name, bytes));
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.local.remove(name)
    }

    fn sweep_tmp(&self) -> io::Result<()> {
        self.local.sweep_tmp()
    }

    fn describe(&self) -> String {
        let health = match self.remote_health() {
            RemoteHealth::Healthy => "",
            RemoteHealth::Degraded => " (degraded)",
        };
        format!(
            "shared local={} remote=[{}]{health}",
            self.local.dir().display(),
            self.remote.describe()
        )
    }

    fn resilience(&self) -> ResilienceStats {
        ResilienceStats {
            remote_ops: self.state.remote_ops.load(Ordering::Relaxed),
            remote_errors: self.state.remote_errors.load(Ordering::Relaxed),
            retries: self.state.retries.load(Ordering::Relaxed),
            degraded_ops: self.state.degraded_ops.load(Ordering::Relaxed),
            local_errors: self.state.local_errors.load(Ordering::Relaxed),
            degraded: self.state.degraded.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// PrefixedBackend
// ---------------------------------------------------------------------------

/// A view of another backend under a name prefix (`<prefix>/<name>`), used
/// to nest several stores (bake, ground truth) in one flat remote
/// namespace. Directory-backed remotes nest at the path level instead; this
/// wrapper serves flat-namespace backends like [`MemBackend`].
#[derive(Debug, Clone)]
pub struct PrefixedBackend {
    inner: Arc<dyn StoreBackend>,
    prefix: String,
}

impl PrefixedBackend {
    /// Wraps `inner`, mapping every entry name to `<prefix>/<name>`.
    pub fn new(inner: Arc<dyn StoreBackend>, prefix: &str) -> Self {
        Self { inner, prefix: prefix.to_string() }
    }

    fn full(&self, name: &str) -> String {
        format!("{}/{name}", self.prefix)
    }
}

impl StoreBackend for PrefixedBackend {
    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        let marker = format!("{}/", self.prefix);
        Ok(self
            .inner
            .list()?
            .into_iter()
            .filter_map(|meta| {
                let name = meta.name.strip_prefix(&marker)?.to_string();
                Some(EntryMeta { name, ..meta })
            })
            .collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(&self.full(name))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_atomic(&self.full(name), bytes)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(&self.full(name))
    }

    fn sweep_tmp(&self) -> io::Result<()> {
        self.inner.sweep_tmp()
    }

    fn describe(&self) -> String {
        format!("{}/{}", self.inner.describe(), self.prefix)
    }

    fn resilience(&self) -> ResilienceStats {
        self.inner.resilience()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique, self-cleaning temporary directory.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "nerflex-backend-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn dir_backend_round_trips_and_filters_listing() {
        let tmp = TempDir::new("dir");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        backend.write_atomic("a.nftest", b"alpha").expect("write");
        backend.write_atomic("b.nftest", b"beta").expect("write");
        std::fs::write(tmp.0.join("foreign.txt"), b"ignored").expect("foreign");
        std::fs::write(tmp.0.join("c.nftest.tmp-1-2"), b"in flight").expect("tmp");

        let mut names: Vec<String> =
            backend.list().expect("list").into_iter().map(|e| e.name).collect();
        names.sort();
        assert_eq!(names, ["a.nftest", "b.nftest"]);
        assert_eq!(backend.read("a.nftest").expect("read"), b"alpha");
        assert!(backend.read("missing.nftest").is_err());

        backend.sweep_tmp().expect("sweep");
        assert!(!tmp.0.join("c.nftest.tmp-1-2").exists(), "orphaned temporary swept");
        assert!(tmp.0.join("foreign.txt").exists(), "foreign file untouched");

        backend.remove("a.nftest").expect("remove");
        assert!(backend.read("a.nftest").is_err());
        assert_eq!(backend.list().expect("list").len(), 1);
    }

    #[test]
    fn dir_backend_rejects_nested_names_loudly() {
        // A nested name could be written (create_dir_all would oblige) but
        // never listed back by the non-recursive listing — a silent sharing
        // failure. The backend must reject it up front instead.
        let tmp = TempDir::new("flat");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        for name in ["sub/a.nftest", "..\\b.nftest"] {
            assert_eq!(
                backend.write_atomic(name, b"x").unwrap_err().kind(),
                io::ErrorKind::InvalidInput,
                "{name}"
            );
            assert_eq!(backend.read(name).unwrap_err().kind(), io::ErrorKind::InvalidInput);
            assert_eq!(backend.remove(name).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        }
        assert!(!tmp.0.join("sub").exists(), "no nested path may be created");
    }

    #[test]
    fn dir_backend_missing_directory_lists_empty() {
        let tmp = TempDir::new("missing");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        std::fs::remove_dir_all(&tmp.0).expect("remove dir");
        assert_eq!(backend.list().expect("list"), Vec::new());
        backend.sweep_tmp().expect("sweep of missing dir is a no-op");
    }

    #[test]
    fn mem_backend_implements_the_contract() {
        let backend = MemBackend::new();
        assert!(backend.is_empty());
        backend.write_atomic("x.nftest", b"payload").expect("write");
        assert_eq!(backend.read("x.nftest").expect("read"), b"payload");
        assert_eq!(backend.list().expect("list").len(), 1);
        assert_eq!(backend.list().expect("list")[0].size, 7);
        assert!(backend.read("y.nftest").is_err());
        backend.remove("x.nftest").expect("remove");
        assert!(backend.remove("x.nftest").is_err(), "double remove is NotFound");
        assert!(backend.is_empty());
    }

    #[test]
    fn shared_backend_reads_through_and_populates_local() {
        let tmp = TempDir::new("shared-read");
        let remote = Arc::new(MemBackend::new());
        remote.write_atomic("warm.nftest", b"from the farm").expect("seed remote");
        let local = DirBackend::create(&tmp.0, "nftest").expect("local");
        let shared = SharedBackend::new(local.clone(), remote.clone());

        // The union listing shows the remote entry to a cold local layer…
        let names: Vec<String> = shared.list().expect("list").into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["warm.nftest"]);
        // …the read is served remotely and populates the local layer…
        assert_eq!(shared.read("warm.nftest").expect("read"), b"from the farm");
        assert_eq!(local.read("warm.nftest").expect("local copy"), b"from the farm");
        // …and pruning scope excludes what only the remote holds.
        local.remove("warm.nftest").expect("clear local");
        assert_eq!(shared.list_prunable().expect("prunable").len(), 0);
        assert_eq!(shared.list().expect("list").len(), 1, "remote entry still listed");
    }

    #[test]
    fn shared_backend_writes_through_to_both_layers() {
        let tmp = TempDir::new("shared-write");
        let remote = Arc::new(MemBackend::new());
        let shared = SharedBackend::new(
            DirBackend::create(&tmp.0, "nftest").expect("local"),
            remote.clone(),
        );
        shared.write_atomic("new.nftest", b"baked here").expect("write");
        assert_eq!(remote.read("new.nftest").expect("remote copy"), b"baked here");
        assert_eq!(shared.read("new.nftest").expect("local copy"), b"baked here");
        // remove/sweep stay local: the fleet's copy survives local pruning.
        shared.remove("new.nftest").expect("remove local");
        assert_eq!(remote.read("new.nftest").expect("remote survives"), b"baked here");
        assert_eq!(shared.read("new.nftest").expect("read-through again"), b"baked here");
    }

    #[test]
    fn shared_backend_retries_transient_remote_faults() {
        use crate::fault::{FaultMode, FaultOp, FaultPlan, FaultyBackend};
        let tmp = TempDir::new("shared-retry");
        let mem = Arc::new(MemBackend::new());
        mem.write_atomic("warm.nftest", b"flaky but there").expect("seed remote");
        let remote = Arc::new(FaultyBackend::new(
            mem,
            FaultPlan::none().fail_nth(
                FaultOp::Read,
                0,
                FaultMode::Transient(io::ErrorKind::TimedOut),
            ),
        ));
        let shared =
            SharedBackend::new(DirBackend::create(&tmp.0, "nftest").expect("local"), remote)
                .with_retry(RetryPolicy::new(3, Duration::ZERO));

        assert_eq!(shared.read("warm.nftest").expect("retried read"), b"flaky but there");
        let stats = shared.resilience();
        assert_eq!(stats.retries, 1, "one transient fault, one retry");
        assert_eq!(stats.remote_errors, 0);
        assert_eq!(shared.remote_health(), RemoteHealth::Healthy);
    }

    #[test]
    fn shared_backend_degrades_on_persistent_failure_and_reprobes_back() {
        use crate::fault::{FaultMode, FaultOp, FaultPlan, FaultyBackend};
        let tmp = TempDir::new("shared-degrade");
        let mem = Arc::new(MemBackend::new());
        mem.write_atomic("warm.nftest", b"behind the outage").expect("seed remote");
        // A non-transient failure on the first remote read trips the breaker
        // immediately; every read after that is served local-only until the
        // re-probe window comes around and finds the remote recovered.
        let remote = Arc::new(FaultyBackend::new(
            mem,
            FaultPlan::none().fail_nth(
                FaultOp::Read,
                0,
                FaultMode::Transient(io::ErrorKind::PermissionDenied),
            ),
        ));
        let shared =
            SharedBackend::new(DirBackend::create(&tmp.0, "nftest").expect("local"), remote)
                .with_retry(RetryPolicy::new(3, Duration::ZERO));

        let err = shared.read("warm.nftest").expect_err("non-transient fault is final");
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(shared.remote_health(), RemoteHealth::Degraded);
        assert_eq!(shared.resilience().remote_errors, 1);
        assert_eq!(shared.resilience().retries, 0, "non-transient kinds are not retried");

        let mut served = None;
        for _ in 0..=REPROBE_INTERVAL {
            if let Ok(bytes) = shared.read("warm.nftest") {
                served = Some(bytes);
                break;
            }
        }
        assert_eq!(served.as_deref(), Some(&b"behind the outage"[..]), "re-probe recovered");
        assert_eq!(shared.remote_health(), RemoteHealth::Healthy);
        let stats = shared.resilience();
        assert!(stats.degraded_ops > 0, "local-only window was counted");
        assert!(!stats.degraded);
    }

    #[test]
    fn shared_backend_counts_local_errors_before_remote_fallback() {
        let tmp = TempDir::new("shared-local-err");
        let remote = Arc::new(MemBackend::new());
        remote.write_atomic("hurt.nftest", b"remote copy").expect("seed remote");
        let shared =
            SharedBackend::new(DirBackend::create(&tmp.0, "nftest").expect("local"), remote);
        // A directory squatting on the entry path makes the local read fail
        // with a non-NotFound error: that must be *counted*, not conflated
        // with a clean miss, and the remote still serves the entry.
        std::fs::create_dir(tmp.0.join("hurt.nftest")).expect("squat");
        assert_eq!(shared.read("hurt.nftest").expect("remote serves"), b"remote copy");
        let stats = shared.resilience();
        assert_eq!(stats.local_errors, 1, "local-layer fault surfaced in the counters");
        assert_eq!(stats.remote_errors, 0);
        assert_eq!(shared.remote_health(), RemoteHealth::Healthy);
    }

    #[test]
    fn shared_backend_write_survives_a_dead_remote() {
        use crate::fault::{FaultPlan, FaultyBackend};
        let tmp = TempDir::new("shared-dead-write");
        let remote = Arc::new(FaultyBackend::new(Arc::new(MemBackend::new()), FaultPlan::dead()));
        let shared =
            SharedBackend::new(DirBackend::create(&tmp.0, "nftest").expect("local"), remote)
                .with_retry(RetryPolicy::new(2, Duration::ZERO));

        shared.write_atomic("kept.nftest", b"local holds it").expect("write degrades, not fails");
        assert_eq!(shared.read("kept.nftest").expect("local read"), b"local holds it");
        let stats = shared.resilience();
        assert!(stats.remote_errors >= 1);
        assert!(stats.retries >= 1, "ConnectionRefused is transient; it was retried first");
        assert_eq!(shared.remote_health(), RemoteHealth::Degraded);
        assert!(shared.describe().contains("degraded"));
    }

    #[test]
    fn prefixed_backend_nests_a_flat_namespace() {
        let inner = Arc::new(MemBackend::new());
        let bake = PrefixedBackend::new(inner.clone(), "bake");
        let gt = PrefixedBackend::new(inner.clone(), "ground-truth");
        bake.write_atomic("a.nfbake", b"asset").expect("write");
        gt.write_atomic("a.nfgt", b"images").expect("write");
        assert_eq!(inner.len(), 2);
        assert_eq!(bake.list().expect("list").len(), 1);
        assert_eq!(bake.list().expect("list")[0].name, "a.nfbake");
        assert_eq!(gt.read("a.nfgt").expect("read"), b"images");
        assert!(bake.read("a.nfgt").is_err(), "prefixes are disjoint");
        bake.remove("a.nfbake").expect("remove");
        assert_eq!(inner.len(), 1);
    }
}
