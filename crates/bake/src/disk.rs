//! Versioned binary on-disk format for cached [`BakedAsset`]s.
//!
//! The vendored `serde` shim is a capability marker with no wire format, so
//! persistence is a small hand-rolled codec: explicit little-endian fields,
//! a magic number, a format version, and a trailing checksum. This module is
//! **pure codec** — the bake store's [`crate::store::EntryCodec`] half. The
//! store policy (lazy index, flush, pruning) lives in [`crate::store`]; the
//! storage mechanism lives in [`crate::backend`].
//!
//! Every entry file is self-contained and self-validating:
//!
//! ```text
//! magic "NFBC" | version u32 | fingerprint u64
//! family u8 (0 = mesh, 1 = splat) | grid u32 | axis2 u32
//!   (axis2 is the family's second knob: patch side for meshes, splat
//!    count for splats)
//! name (u32 len + UTF-8 bytes)
//! family 0 payload:
//!   mesh:  vertex count u32, quad count u32,
//!          positions [3×f32]*, normals [3×f32]*,
//!          quads [4×u32 indices + 3×f32 face normal]*
//!   atlas: patch u32, quad count u64, texel count u64, texels [3×u8]*
//!   mlp:   present u8, then per layer: rows u32 × cols u32 + row-major
//!          f32 weights, and the bias vectors
//! family 1 payload:
//!   splat count u64, then per splat: position 3×f32, scale 3×f32,
//!   rotation_y f32, rgb 3×u8, opacity u8 (32 bytes)
//! checksum: FNV-1a u64 over every preceding byte
//! ```
//!
//! Decoding is total: any truncation, bad magic, version mismatch or
//! checksum failure yields a [`DecodeError`] instead of a panic, so a
//! corrupted cache directory degrades to re-baking the damaged entries.

use crate::asset::{BakedAsset, Placement};
use crate::atlas::TextureAtlas;
use crate::config::{BakeConfig, BakeFamily};
use crate::mesh::{Quad, QuadMesh};
use crate::mlp::TinyMlp;
use crate::splat::{Splat, SplatCloud, SPLAT_BYTES};
use nerflex_math::Vec3;
use std::sync::Arc;

/// Version of the on-disk entry format. Bump on ANY layout change: readers
/// reject foreign versions (no migration — entries are a cache, re-baking is
/// always correct), so a bump simply invalidates persisted entries.
/// Version 2 added the representation-family tag and the splat payload
/// (ISSUE 10).
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Magic bytes identifying a NeRFlex bake-cache entry file.
pub const MAGIC: [u8; 4] = *b"NFBC";

/// File extension used for entry files.
pub const ENTRY_EXTENSION: &str = "nfbake";

/// Why a persisted entry failed to decode. All variants are recoverable: the
/// caller skips the entry and re-bakes on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the expected field.
    Truncated,
    /// The magic bytes are not [`MAGIC`].
    BadMagic,
    /// The entry was written by a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// A decoded field is structurally impossible (e.g. a quad index out of
    /// range, a zero patch size, mismatched layer shapes).
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "entry truncated"),
            DecodeError::BadMagic => write!(f, "not a bake-cache entry"),
            DecodeError::VersionMismatch { found } => {
                write!(f, "format version {found} (expected {CACHE_FORMAT_VERSION})")
            }
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed entry: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a over a byte slice (the same stable hash the fingerprint uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_vec3(out: &mut Vec<u8>, v: Vec3) {
    put_f32(out, v.x);
    put_f32(out, v.y);
    put_f32(out, v.z);
}

/// Serializes one local-frame cache entry (`fingerprint` is the content key
/// the entry is stored under; the asset's placement and object id are *not*
/// persisted — the cache stores placement-free assets).
pub fn encode_entry(fingerprint: u64, asset: &BakedAsset) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + asset.size_bytes());
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, CACHE_FORMAT_VERSION);
    put_u64(&mut out, fingerprint);
    out.push(asset.config.family.tag());
    put_u32(&mut out, asset.config.grid);
    put_u32(&mut out, asset.config.axis2());

    put_u32(&mut out, asset.name.len() as u32);
    out.extend_from_slice(asset.name.as_bytes());

    // Splat-family entries carry only the cloud — no mesh/atlas/MLP
    // sections at all.
    if let BakeFamily::Splat { .. } = asset.config.family {
        let cloud = asset.splats.as_deref();
        let splats = cloud.map_or(&[][..], SplatCloud::splats);
        put_u64(&mut out, splats.len() as u64);
        for s in splats {
            put_vec3(&mut out, s.position);
            put_vec3(&mut out, s.scale);
            put_f32(&mut out, s.rotation_y);
            out.extend_from_slice(&s.color);
            out.push(s.opacity);
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        return out;
    }

    // Mesh.
    let mesh = &asset.mesh;
    put_u32(&mut out, mesh.vertex_count() as u32);
    put_u32(&mut out, mesh.quad_count() as u32);
    for p in &mesh.positions {
        put_vec3(&mut out, *p);
    }
    for n in &mesh.normals {
        put_vec3(&mut out, *n);
    }
    for quad in &mesh.quads {
        for idx in quad.vertices {
            put_u32(&mut out, idx);
        }
        put_vec3(&mut out, quad.face_normal);
    }

    // Atlas.
    let atlas = &asset.atlas;
    put_u32(&mut out, atlas.patch());
    put_u64(&mut out, atlas.quad_count() as u64);
    put_u64(&mut out, atlas.texel_data().len() as u64);
    for texel in atlas.texel_data() {
        out.extend_from_slice(texel);
    }

    // Optional deferred-shading MLP.
    match &asset.mlp {
        None => out.push(0),
        Some(mlp) => {
            out.push(1);
            let (weights, biases) = mlp.parameters();
            put_u32(&mut out, weights.len() as u32);
            for (layer, bias) in weights.iter().zip(biases) {
                put_u32(&mut out, layer.len() as u32);
                put_u32(&mut out, layer.first().map_or(0, Vec::len) as u32);
                for row in layer {
                    for &w in row {
                        put_f32(&mut out, w);
                    }
                }
                for &b in bias {
                    put_f32(&mut out, b);
                }
            }
        }
    }

    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over an entry buffer.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Guards an upcoming `count`-element allocation: the elements occupy at
    /// least `count · elem_bytes` of the remaining buffer, so a declared
    /// count that cannot possibly fit is rejected *before* any allocation.
    /// This is what keeps decoding total even for checksum-consistent files
    /// that declare absurd counts (a buggy writer, a hand-crafted file): the
    /// entry is skipped instead of aborting the process on a huge
    /// `Vec::with_capacity`.
    fn expect_elements(&self, count: usize, elem_bytes: usize) -> Result<(), DecodeError> {
        let needed = count.checked_mul(elem_bytes).ok_or(DecodeError::Truncated)?;
        if needed > self.bytes.len() - self.pos {
            return Err(DecodeError::Truncated);
        }
        Ok(())
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn vec3(&mut self) -> Result<Vec3, DecodeError> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }
}

/// Deserializes one cache entry, returning the content key it was stored
/// under and the reconstructed local-frame asset.
pub fn decode_entry(bytes: &[u8]) -> Result<(u64, BakeConfig, Arc<BakedAsset>), DecodeError> {
    // Validate the envelope before touching the payload: magic, version,
    // then the trailing checksum over everything that precedes it.
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(DecodeError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut cursor = Cursor { bytes, pos: MAGIC.len() };
    let version = cursor.u32()?;
    if version != CACHE_FORMAT_VERSION {
        return Err(DecodeError::VersionMismatch { found: version });
    }
    let body_len = bytes.len() - 8;
    let stored_checksum = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..body_len]) != stored_checksum {
        return Err(DecodeError::ChecksumMismatch);
    }
    let mut cursor = Cursor { bytes: &bytes[..body_len], pos: cursor.pos };

    let fingerprint = cursor.u64()?;
    let family_tag = cursor.take(1)?[0];
    let grid = cursor.u32()?;
    let axis2 = cursor.u32()?;
    if grid == 0 || axis2 == 0 {
        return Err(DecodeError::Malformed("zero configuration knob"));
    }
    let config = match family_tag {
        0 => BakeConfig::new(grid, axis2),
        1 => BakeConfig::splat(grid, axis2),
        _ => return Err(DecodeError::Malformed("unknown representation family")),
    };

    let name_len = cursor.u32()? as usize;
    let name = std::str::from_utf8(cursor.take(name_len)?)
        .map_err(|_| DecodeError::Malformed("name is not UTF-8"))?
        .to_string();

    // Splat payload: the cloud is the entire asset.
    if family_tag == 1 {
        let stored = cursor.u64()? as usize;
        if stored > axis2 as usize {
            return Err(DecodeError::Malformed("more splats than the configured count"));
        }
        cursor.expect_elements(stored, SPLAT_BYTES)?;
        let mut splats = Vec::with_capacity(stored);
        for _ in 0..stored {
            let position = cursor.vec3()?;
            let scale = cursor.vec3()?;
            let rotation_y = cursor.f32()?;
            let rgba = cursor.take(4)?;
            splats.push(Splat {
                position,
                scale,
                rotation_y,
                color: [rgba[0], rgba[1], rgba[2]],
                opacity: rgba[3],
            });
        }
        if cursor.pos != body_len {
            return Err(DecodeError::Malformed("trailing bytes after payload"));
        }
        let asset = BakedAsset {
            name,
            object_id: 0,
            config,
            mesh: Arc::new(QuadMesh::default()),
            atlas: Arc::new(TextureAtlas::from_raw(config.patch, 0, vec![])),
            mlp: None,
            splats: Some(Arc::new(SplatCloud::from_splats(splats))),
            placement: Placement::default(),
        };
        return Ok((fingerprint, config, Arc::new(asset)));
    }

    // Mesh.
    let vertex_count = cursor.u32()? as usize;
    let quad_count = cursor.u32()? as usize;
    // Positions and normals are 12 bytes each, quads 28 (4×u32 + Vec3).
    cursor.expect_elements(vertex_count, 24)?;
    cursor.expect_elements(quad_count, 28)?;
    let mut positions = Vec::with_capacity(vertex_count);
    for _ in 0..vertex_count {
        positions.push(cursor.vec3()?);
    }
    let mut normals = Vec::with_capacity(vertex_count);
    for _ in 0..vertex_count {
        normals.push(cursor.vec3()?);
    }
    let mut quads = Vec::with_capacity(quad_count);
    for _ in 0..quad_count {
        let mut vertices = [0u32; 4];
        for v in &mut vertices {
            *v = cursor.u32()?;
            if *v as usize >= vertex_count {
                return Err(DecodeError::Malformed("quad index out of range"));
            }
        }
        quads.push(Quad { vertices, face_normal: cursor.vec3()? });
    }
    let mesh = QuadMesh { positions, normals, quads };

    // Atlas.
    let atlas_patch = cursor.u32()?;
    let atlas_quads = cursor.u64()? as usize;
    let texel_count = cursor.u64()? as usize;
    if atlas_patch == 0 {
        return Err(DecodeError::Malformed("zero atlas patch"));
    }
    // The atlas allocates one patch per mesh quad; a mismatch would decode
    // fine but panic at render time on the first out-of-range quad index.
    if atlas_quads != quad_count {
        return Err(DecodeError::Malformed("atlas quad count differs from mesh"));
    }
    let expected_texels = (atlas_patch as usize)
        .checked_mul(atlas_patch as usize)
        .and_then(|pp| pp.checked_mul(atlas_quads));
    if expected_texels != Some(texel_count) {
        return Err(DecodeError::Malformed("atlas texel count mismatch"));
    }
    cursor.expect_elements(texel_count, 3)?;
    let mut data = Vec::with_capacity(texel_count);
    for _ in 0..texel_count {
        let t = cursor.take(3)?;
        data.push([t[0], t[1], t[2]]);
    }
    let atlas = TextureAtlas::from_raw(atlas_patch, atlas_quads, data);

    // Optional MLP.
    let mlp = match cursor.take(1)?[0] {
        0 => None,
        1 => {
            let layer_count = cursor.u32()? as usize;
            if layer_count == 0 || layer_count > 64 {
                return Err(DecodeError::Malformed("implausible MLP layer count"));
            }
            let mut weights = Vec::with_capacity(layer_count);
            let mut biases = Vec::with_capacity(layer_count);
            for _ in 0..layer_count {
                let rows = cursor.u32()? as usize;
                let cols = cursor.u32()? as usize;
                if rows == 0 || cols == 0 {
                    return Err(DecodeError::Malformed("empty MLP layer"));
                }
                // rows × cols weights plus rows biases, 4 bytes each.
                cursor.expect_elements(rows, cols.checked_mul(4).ok_or(DecodeError::Truncated)?)?;
                let mut layer = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let mut row = Vec::with_capacity(cols);
                    for _ in 0..cols {
                        row.push(cursor.f32()?);
                    }
                    layer.push(row);
                }
                let mut bias = Vec::with_capacity(rows);
                for _ in 0..rows {
                    bias.push(cursor.f32()?);
                }
                weights.push(layer);
                biases.push(bias);
            }
            Some(
                TinyMlp::from_parameters(weights, biases)
                    .map_err(|_| DecodeError::Malformed("inconsistent MLP shapes"))?,
            )
        }
        _ => return Err(DecodeError::Malformed("bad MLP presence flag")),
    };

    if cursor.pos != body_len {
        return Err(DecodeError::Malformed("trailing bytes after payload"));
    }

    let asset = BakedAsset {
        name,
        object_id: 0,
        config,
        mesh: Arc::new(mesh),
        atlas: Arc::new(atlas),
        mlp,
        splats: None,
        placement: Placement::default(),
    };
    Ok((fingerprint, config, Arc::new(asset)))
}

/// The canonical file name of an entry:
/// `"{fingerprint:016x}-g{g}-p{p}.nfbake"` for the mesh family,
/// `"{fingerprint:016x}-g{g}-s{count}.nfbake"` for the splat family.
pub fn entry_file_name(fingerprint: u64, config: BakeConfig) -> String {
    match config.family {
        BakeFamily::Mesh => {
            format!("{fingerprint:016x}-g{}-p{}.{ENTRY_EXTENSION}", config.grid, config.patch)
        }
        BakeFamily::Splat { count } => {
            format!("{fingerprint:016x}-g{}-s{count}.{ENTRY_EXTENSION}", config.grid)
        }
    }
}

/// Parses an [`entry_file_name`] back into its `(fingerprint, config)` key.
/// Returns `None` for foreign file names — the basis of the store's lazy
/// index: [`crate::BakeCache::open`] keys the directory by file name alone
/// and defers decoding to the first lookup.
pub fn parse_entry_file_name(name: &str) -> Option<(u64, BakeConfig)> {
    let stem = name.strip_suffix(&format!(".{ENTRY_EXTENSION}"))?;
    let mut parts = stem.split('-');
    let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
    let grid: u32 = parts.next()?.strip_prefix('g')?.parse().ok()?;
    // The third part's prefix selects the family: `p` = mesh patch,
    // `s` = splat count.
    let axis2 = parts.next()?;
    let (splat, axis2) = match axis2.strip_prefix('p') {
        Some(rest) => (false, rest),
        None => (true, axis2.strip_prefix('s')?),
    };
    let axis2: u32 = axis2.parse().ok()?;
    // Reject zero knobs here: the config constructors assert positivity,
    // and a foreign `-g0-`/`-p0-`/`-s0-` file name must be ignored, not a
    // panic.
    if grid == 0 || axis2 == 0 || parts.next().is_some() {
        return None;
    }
    let config = if splat { BakeConfig::splat(grid, axis2) } else { BakeConfig::new(grid, axis2) };
    Some((fingerprint, config))
}

/// The canonical byte representation of one *placed* asset: its entry
/// encoding (keyed by instance id) followed by the placement bit patterns.
/// This is the single definition of "byte-identical deployment output" —
/// the fig9 `deployment_fingerprint` and the shared-store integration tests
/// both build on it, so the two checks can never drift apart.
pub fn placed_asset_bytes(asset: &BakedAsset) -> Vec<u8> {
    let mut bytes = encode_entry(asset.object_id as u64, asset);
    for v in [
        asset.placement.translation.x,
        asset.placement.translation.y,
        asset.placement.translation.z,
        asset.placement.scale,
        asset.placement.rotation_y,
    ] {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    bytes
}

/// FNV-1a over every asset's [`placed_asset_bytes`]: a stable byte-level
/// fingerprint of a whole deployment.
pub fn deployment_fingerprint(assets: &[BakedAsset]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for asset in assets {
        for &b in &placed_asset_bytes(asset) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::bake_object;
    use nerflex_scene::object::CanonicalObject;

    fn sample_asset(with_mlp: bool) -> BakedAsset {
        let model = CanonicalObject::Hotdog.build();
        let mut asset = bake_object(&model, BakeConfig::new(12, 3));
        if with_mlp {
            asset.mlp = Some(TinyMlp::shading_model(7));
        }
        asset
    }

    fn splat_asset() -> BakedAsset {
        let model = CanonicalObject::Hotdog.build();
        bake_object(&model, BakeConfig::splat(16, 512))
    }

    /// Offset of the first payload count field (mesh vertex count / stored
    /// splat count): the fixed header (magic, version, fingerprint, family
    /// tag, grid, axis2, name length) plus the name bytes.
    fn payload_count_offset(asset: &BakedAsset) -> usize {
        MAGIC.len() + 4 + 8 + 1 + 4 + 4 + 4 + asset.name.len()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        for with_mlp in [false, true] {
            let asset = sample_asset(with_mlp);
            let bytes = encode_entry(0xdead_beef, &asset);
            let (fp, config, decoded) = decode_entry(&bytes).expect("decodes");
            assert_eq!(fp, 0xdead_beef);
            assert_eq!(config, asset.config);
            assert_eq!(decoded.name, asset.name);
            assert_eq!(*decoded.mesh, *asset.mesh);
            assert_eq!(*decoded.atlas, *asset.atlas);
            assert_eq!(decoded.mlp, asset.mlp);
            assert_eq!(decoded.size_bytes(), asset.size_bytes());
            // Placement is never persisted: entries are local-frame.
            assert_eq!(decoded.placement, Placement::default());
            assert_eq!(decoded.object_id, 0);
        }
    }

    #[test]
    fn splat_round_trip_preserves_every_field() {
        let asset = splat_asset();
        let bytes = encode_entry(0xfeed_f00d, &asset);
        let (fp, config, decoded) = decode_entry(&bytes).expect("decodes");
        assert_eq!(fp, 0xfeed_f00d);
        assert_eq!(config, asset.config);
        assert_eq!(config.splat_count(), Some(512));
        assert_eq!(decoded.name, asset.name);
        assert_eq!(
            decoded.splats.as_deref().expect("cloud survives"),
            asset.splats.as_deref().expect("cloud baked")
        );
        assert_eq!(decoded.size_bytes(), asset.size_bytes());
        assert_eq!(decoded.mesh.quad_count(), 0);
        assert_eq!(decoded.placement, Placement::default());
        // Re-encoding a decoded entry is byte-identical: cached and fresh
        // assets produce the same `placed_asset_bytes`.
        assert_eq!(encode_entry(0xfeed_f00d, &decoded), bytes);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        for asset in [sample_asset(false), splat_asset()] {
            let bytes = encode_entry(1, &asset);
            // Every strict prefix must fail cleanly (checksum or
            // truncation), never panic.
            for len in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
                assert!(decode_entry(&bytes[..len]).is_err(), "prefix of {len} bytes decoded");
            }
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        for asset in [sample_asset(false), splat_asset()] {
            let bytes = encode_entry(1, &asset);
            for pos in [MAGIC.len() + 4, bytes.len() / 2, bytes.len() - 9] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 0x40;
                assert!(decode_entry(&corrupt).is_err(), "bit flip at {pos} not detected");
            }
        }
    }

    #[test]
    fn foreign_versions_are_rejected_not_misread() {
        for asset in [sample_asset(false), splat_asset()] {
            let mut bytes = encode_entry(1, &asset);
            bytes[4..8].copy_from_slice(&(CACHE_FORMAT_VERSION + 1).to_le_bytes());
            // Fix up the checksum so only the version differs.
            let body = bytes.len() - 8;
            let sum = fnv1a(&bytes[..body]);
            bytes[body..].copy_from_slice(&sum.to_le_bytes());
            assert_eq!(
                decode_entry(&bytes).err(),
                Some(DecodeError::VersionMismatch { found: CACHE_FORMAT_VERSION + 1 })
            );
        }
    }

    #[test]
    fn unknown_family_tags_are_rejected() {
        let asset = sample_asset(false);
        let mut bytes = encode_entry(1, &asset);
        let family_offset = MAGIC.len() + 4 + 8;
        assert_eq!(bytes[family_offset], 0, "offset arithmetic drifted from the format");
        bytes[family_offset] = 9;
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_entry(&bytes).err(),
            Some(DecodeError::Malformed("unknown representation family"))
        );
    }

    #[test]
    fn checksum_consistent_absurd_counts_are_rejected_without_allocating() {
        // A hostile or buggy-writer entry can be checksum-consistent yet
        // declare counts that would allocate terabytes. Decoding must reject
        // it (skip-one-entry semantics), not abort the process.
        let asset = sample_asset(false);
        let bytes = encode_entry(1, &asset);
        // vertex_count sits right after the fixed header and the name.
        let vertex_count_offset = payload_count_offset(&asset);
        assert_eq!(
            u32::from_le_bytes(
                bytes[vertex_count_offset..vertex_count_offset + 4].try_into().expect("4")
            ) as usize,
            asset.mesh.vertex_count(),
            "offset arithmetic drifted from the format"
        );
        let mut hostile = bytes.clone();
        hostile[vertex_count_offset..vertex_count_offset + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let body = hostile.len() - 8;
        let sum = fnv1a(&hostile[..body]);
        hostile[body..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_entry(&hostile).err(), Some(DecodeError::Truncated));
    }

    #[test]
    fn checksum_consistent_absurd_splat_counts_are_rejected() {
        // Same guard for the splat payload: an inflated stored-splat count
        // is caught by the configured-count bound, never allocated.
        let asset = splat_asset();
        let bytes = encode_entry(1, &asset);
        let count_offset = payload_count_offset(&asset);
        let stored =
            u64::from_le_bytes(bytes[count_offset..count_offset + 8].try_into().expect("8"))
                as usize;
        assert_eq!(
            stored,
            asset.splats.as_deref().expect("cloud").len(),
            "offset arithmetic drifted from the format"
        );
        let mut hostile = bytes.clone();
        hostile[count_offset..count_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body = hostile.len() - 8;
        let sum = fnv1a(&hostile[..body]);
        hostile[body..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_entry(&hostile).err(),
            Some(DecodeError::Malformed("more splats than the configured count"))
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_entry(1, &sample_asset(false));
        bytes[0] = b'X';
        assert_eq!(decode_entry(&bytes).err(), Some(DecodeError::BadMagic));
        assert!(decode_entry(&[]).is_err());
    }

    #[test]
    fn entry_file_names_are_unique_per_key() {
        let a = entry_file_name(7, BakeConfig::new(10, 3));
        let b = entry_file_name(7, BakeConfig::new(10, 5));
        let c = entry_file_name(8, BakeConfig::new(10, 3));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.ends_with(".nfbake"));
        // The family is part of the name: a splat entry with the same grid
        // and numeric second knob never collides with a mesh entry.
        let s = entry_file_name(7, BakeConfig::splat(10, 3));
        assert_ne!(a, s);
        assert!(s.contains("-s3."));
    }

    #[test]
    fn entry_file_names_parse_back_to_their_key() {
        let key = (0x2f1c_66aa_0194_5f10u64, BakeConfig::new(30, 6));
        assert_eq!(parse_entry_file_name(&entry_file_name(key.0, key.1)), Some(key));
        let splat_key = (0x2f1c_66aa_0194_5f10u64, BakeConfig::splat(24, 2048));
        assert_eq!(
            parse_entry_file_name(&entry_file_name(splat_key.0, splat_key.1)),
            Some(splat_key)
        );
        assert_eq!(parse_entry_file_name("garbage.nfbake"), None);
        assert_eq!(parse_entry_file_name("0123-g10.nfbake"), None);
        assert_eq!(parse_entry_file_name("0123-g10-p3-extra.nfbake"), None);
        assert_eq!(parse_entry_file_name("0123-g10-p3.other"), None);
        assert_eq!(parse_entry_file_name("zz-g10-p3.nfbake"), None);
        assert_eq!(parse_entry_file_name("0123-g10-q3.nfbake"), None);
        // Zero knobs must be ignored, not panic via the config constructors.
        assert_eq!(parse_entry_file_name("0123-g0-p3.nfbake"), None);
        assert_eq!(parse_entry_file_name("0123-g10-p0.nfbake"), None);
        assert_eq!(parse_entry_file_name("0123-g10-s0.nfbake"), None);
    }
}
