//! The tiny deferred-shading MLP shipped alongside the baked data.
//!
//! Mesh-assisted NeRF renderers (MobileNeRF, NeRF2Mesh) store view-dependent
//! appearance in a minimal MLP evaluated per fragment. The paper notes the
//! MLP "is extremely small, around only a few KB" and excludes it from the
//! configuration knobs; we do the same, but we still implement it as a real
//! network — a fully-connected ReLU MLP with a sigmoid output — train it to
//! reproduce the reference shading model, account for its bytes in the asset
//! size, and let the renderer optionally use it instead of analytic shading
//! (an ablation in the benchmark suite).

use nerflex_image::Color;
use nerflex_math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A small fully-connected network with ReLU hidden activations and a
/// sigmoid output layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TinyMlp {
    /// Per-layer weight matrices, row-major `[out][in]`.
    weights: Vec<Vec<Vec<f32>>>,
    /// Per-layer bias vectors.
    biases: Vec<Vec<f32>>,
}

impl TinyMlp {
    /// Creates a network with the given layer sizes (e.g. `[6, 16, 16, 3]`)
    /// and small deterministic random weights.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two layer sizes are given or any size is zero.
    pub fn new(layer_sizes: &[usize], seed: u64) -> Self {
        assert!(layer_sizes.len() >= 2, "an MLP needs at least input and output layers");
        assert!(layer_sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in layer_sizes.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let scale = (2.0 / n_in as f32).sqrt();
            weights.push(
                (0..n_out)
                    .map(|_| (0..n_in).map(|_| rng.gen_range(-scale..scale)).collect())
                    .collect(),
            );
            biases.push(vec![0.0; n_out]);
        }
        Self { weights, biases }
    }

    /// The raw per-layer weight matrices and bias vectors (the persistence
    /// codec's view of the network).
    pub fn parameters(&self) -> (&[Vec<Vec<f32>>], &[Vec<f32>]) {
        (&self.weights, &self.biases)
    }

    /// Reassembles a network from raw parameters, validating that every
    /// layer's weight matrix is rectangular, matches its bias vector, and
    /// chains onto the previous layer's width.
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape inconsistency found.
    pub fn from_parameters(
        weights: Vec<Vec<Vec<f32>>>,
        biases: Vec<Vec<f32>>,
    ) -> Result<Self, &'static str> {
        if weights.is_empty() || weights.len() != biases.len() {
            return Err("layer count mismatch");
        }
        let mut prev_width: Option<usize> = None;
        for (layer, bias) in weights.iter().zip(&biases) {
            if layer.len() != bias.len() {
                return Err("bias width differs from layer output width");
            }
            let cols = layer.first().map_or(0, Vec::len);
            if cols == 0 || layer.iter().any(|row| row.len() != cols) {
                return Err("weight matrix is not rectangular");
            }
            if let Some(prev) = prev_width {
                if cols != prev {
                    return Err("layer input width does not chain");
                }
            }
            prev_width = Some(layer.len());
        }
        Ok(Self { weights, biases })
    }

    /// Number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.iter().map(|layer| layer.iter().map(Vec::len).sum::<usize>()).sum::<usize>()
            + self.biases.iter().map(Vec::len).sum::<usize>()
    }

    /// Storage size in bytes (32-bit parameters), "around only a few KB".
    pub fn size_bytes(&self) -> usize {
        self.parameter_count() * 4
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics when `input` does not match the input layer width.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        self.forward_with_activations(input).pop().expect("at least one layer")
    }

    /// Forward pass retaining every layer's activations (used by training).
    fn forward_with_activations(&self, input: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(input.len(), self.weights[0][0].len(), "input width mismatch");
        let last = self.weights.len() - 1;
        let mut activations = vec![input.to_vec()];
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let prev = activations.last().expect("non-empty activations");
            let mut out = Vec::with_capacity(b.len());
            for (row, bias) in w.iter().zip(b) {
                let mut z = *bias;
                for (wi, xi) in row.iter().zip(prev) {
                    z += wi * xi;
                }
                out.push(if l == last {
                    1.0 / (1.0 + (-z).exp()) // sigmoid output
                } else {
                    z.max(0.0) // ReLU hidden
                });
            }
            activations.push(out);
        }
        activations
    }

    /// One SGD step on a single `(input, target)` pair with learning rate
    /// `lr`, returning the squared error before the update.
    fn sgd_step(&mut self, input: &[f32], target: &[f32], lr: f32) -> f32 {
        let activations = self.forward_with_activations(input);
        let output = activations.last().expect("output layer");
        let last = self.weights.len() - 1;
        // Output delta for sigmoid + squared error.
        let mut delta: Vec<f32> =
            output.iter().zip(target).map(|(o, t)| (o - t) * o * (1.0 - o)).collect();
        let loss: f32 = output.iter().zip(target).map(|(o, t)| (o - t) * (o - t)).sum();
        for l in (0..=last).rev() {
            let prev_activation = activations[l].clone();
            // Delta to propagate to the previous layer (before this layer's update).
            let mut prev_delta = vec![0.0f32; prev_activation.len()];
            for (j, d) in delta.iter().enumerate() {
                for (i, pd) in prev_delta.iter_mut().enumerate() {
                    *pd += self.weights[l][j][i] * d;
                }
            }
            // ReLU derivative for hidden layers.
            if l > 0 {
                for (pd, a) in prev_delta.iter_mut().zip(&activations[l]) {
                    if *a <= 0.0 {
                        *pd = 0.0;
                    }
                }
            }
            for (j, d) in delta.iter().enumerate() {
                for (i, a) in prev_activation.iter().enumerate() {
                    self.weights[l][j][i] -= lr * d * a;
                }
                self.biases[l][j] -= lr * d;
            }
            delta = prev_delta;
        }
        loss
    }

    /// Trains the network on the given samples for `epochs` passes, returning
    /// the mean squared error of the final epoch.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` and `targets` differ in length or are empty.
    pub fn train(
        &mut self,
        inputs: &[Vec<f32>],
        targets: &[Vec<f32>],
        epochs: usize,
        lr: f32,
    ) -> f32 {
        assert!(!inputs.is_empty(), "training set must be non-empty");
        assert_eq!(inputs.len(), targets.len(), "inputs/targets length mismatch");
        let mut last_loss = 0.0;
        for _ in 0..epochs {
            last_loss = 0.0;
            for (x, t) in inputs.iter().zip(targets) {
                last_loss += self.sgd_step(x, t, lr);
            }
            last_loss /= inputs.len() as f32;
        }
        last_loss
    }

    /// Builds and trains the deferred-shading MLP: it maps
    /// `[normal.xyz, albedo.rgb]` to the shaded colour produced by the
    /// reference shading model in `nerflex_scene::raymarch::shade`.
    pub fn shading_model(seed: u64) -> Self {
        let mut mlp = Self::new(&[6, 16, 16, 3], seed);
        let normals = nerflex_math::sampling::fibonacci_sphere(64);
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for n in &normals {
            for ai in 0..4 {
                for gi in 0..3 {
                    let albedo = Color::new(
                        0.15 + 0.28 * ai as f32,
                        0.2 + 0.25 * gi as f32,
                        0.1 + 0.2 * ((ai + gi) % 4) as f32,
                    );
                    let shaded = nerflex_scene::raymarch::shade(albedo, *n);
                    inputs.push(vec![n.x, n.y, n.z, albedo.r, albedo.g, albedo.b]);
                    targets.push(vec![shaded.r, shaded.g, shaded.b]);
                }
            }
        }
        // Two-phase schedule: a coarse pass to find the basin, then a
        // finer-rate pass to settle — keeps the worst-case shading error
        // under ~10 % across initialisation seeds.
        mlp.train(&inputs, &targets, 60, 0.05);
        mlp.train(&inputs, &targets, 120, 0.02);
        mlp
    }

    /// Evaluates the shading MLP for a normal and albedo.
    pub fn shade(&self, normal: Vec3, albedo: Color) -> Color {
        let out = self.forward(&[normal.x, normal.y, normal.z, albedo.r, albedo.g, albedo.b]);
        Color::new(out[0], out[1], out[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_and_size() {
        let mlp = TinyMlp::new(&[6, 16, 16, 3], 1);
        // 6*16+16 + 16*16+16 + 16*3+3 = 112 + 272 + 51 = 435 parameters.
        assert_eq!(mlp.parameter_count(), 435);
        assert_eq!(mlp.size_bytes(), 435 * 4);
        assert!(mlp.size_bytes() < 8 * 1024, "MLP must stay 'a few KB'");
    }

    #[test]
    fn forward_output_is_in_unit_range() {
        let mlp = TinyMlp::new(&[4, 8, 2], 7);
        let out = mlp.forward(&[0.3, -0.2, 0.9, 1.5]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn construction_is_deterministic() {
        let a = TinyMlp::new(&[3, 5, 1], 42);
        let b = TinyMlp::new(&[3, 5, 1], 42);
        assert_eq!(a.forward(&[0.1, 0.2, 0.3]), b.forward(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn training_reduces_loss_on_simple_function() {
        // Learn y = mean(x) on 2 inputs.
        let inputs: Vec<Vec<f32>> =
            (0..64).map(|i| vec![(i % 8) as f32 / 8.0, (i / 8) as f32 / 8.0]).collect();
        let targets: Vec<Vec<f32>> = inputs.iter().map(|x| vec![(x[0] + x[1]) / 2.0]).collect();
        let mut mlp = TinyMlp::new(&[2, 8, 1], 3);
        let initial: f32 = inputs
            .iter()
            .zip(&targets)
            .map(|(x, t)| {
                let o = mlp.forward(x)[0];
                (o - t[0]) * (o - t[0])
            })
            .sum::<f32>()
            / inputs.len() as f32;
        let final_loss = mlp.train(&inputs, &targets, 200, 0.1);
        assert!(final_loss < initial * 0.5, "loss {initial} -> {final_loss}");
        assert!(final_loss < 0.01, "final loss too high: {final_loss}");
    }

    #[test]
    fn shading_model_approximates_reference_shading() {
        let mlp = TinyMlp::shading_model(11);
        let mut max_err = 0.0f32;
        for n in nerflex_math::sampling::fibonacci_sphere(32) {
            let albedo = Color::new(0.6, 0.4, 0.3);
            let reference = nerflex_scene::raymarch::shade(albedo, n);
            let predicted = mlp.shade(n, albedo);
            max_err = max_err.max(predicted.max_channel_diff(reference));
        }
        // A few KB of parameters reproduce the shading to within ~10 %.
        assert!(max_err < 0.12, "max shading error {max_err}");
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let mlp = TinyMlp::new(&[3, 4, 1], 0);
        let _ = mlp.forward(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_layer_panics() {
        let _ = TinyMlp::new(&[3], 0);
    }
}
