//! The shared worker-pool primitive used by the parallel stages (scene
//! baking here, profiling and final baking in the pipeline engine).
//!
//! The implementation moved down the crate graph to [`nerflex_math::pool`]
//! so the scene-level tiled ray marcher can fan its pixel tiles over the
//! same pool without a `scene → bake` dependency cycle; this module
//! re-exports it under the original `nerflex_bake::pool` path.

pub use nerflex_math::pool::{default_workers, env_workers, parallel_map, PoolStats, WorkerPool};
