//! Deterministic fault injection for [`StoreBackend`] implementations.
//!
//! [`FaultyBackend`] wraps any backend and injects failures according to a
//! seeded, fully deterministic [`FaultPlan`]: the same plan applied to the
//! same sequence of store operations always injects the same faults. That
//! makes chaos tests reproducible — a failing seed can be replayed exactly —
//! and lets CI assert properties of a *specific* fault schedule (retry
//! counts, degradation, fingerprint equality with the fault-free run).
//!
//! The plan speaks the same failure vocabulary as the resilience layer in
//! [`SharedBackend`](crate::backend::SharedBackend):
//!
//! - **Transient** faults ([`FaultMode::Transient`]) fail one call with a
//!   retryable [`io::ErrorKind`]; the next call may succeed. These exercise
//!   the [`RetryPolicy`](crate::backend::RetryPolicy) path.
//! - **Persistent** faults ([`FaultMode::Persistent`]) fail every call of an
//!   operation from a given index onward — a dead remote or a full disk.
//!   These exercise circuit-breaker degradation.
//! - **Crash** faults ([`FaultMode::CrashAfterTmpWrite`]) simulate a process
//!   dying between the temporary-file write and the atomic rename: a torn
//!   `.tmp-` orphan is left behind for `sweep_tmp` to reclaim, and the write
//!   reports failure. The orphan carries the standard temporary marker, so
//!   it is invisible to `list` and removed by the next `sweep_tmp`.
//! - **Panic** faults ([`FaultMode::Panic`]) unwind with a typed
//!   [`StoreFaultPanic`] payload instead of returning an error, modelling
//!   the worst case a backend can do to its caller. The service layer
//!   downcasts this payload to convert the panic into a per-request failure.
//!
//! Determinism matters beyond replay: the store contract says faults change
//! *who pays* (retries, recomputation), never *what is computed*. Any plan
//! that permits completion must leave output bits identical to a fault-free
//! run — `tests/chaos.rs` holds the system to that.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::backend::{EntryMeta, ResilienceStats, StoreBackend};

/// Number of distinct faultable operations (size of the per-op tables).
const OP_COUNT: usize = 5;

/// A store operation that faults can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `StoreBackend::list`.
    List,
    /// `StoreBackend::read`.
    Read,
    /// `StoreBackend::write_atomic`.
    WriteAtomic,
    /// `StoreBackend::remove`.
    Remove,
    /// `StoreBackend::sweep_tmp`.
    SweepTmp,
}

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::List => 0,
            FaultOp::Read => 1,
            FaultOp::WriteAtomic => 2,
            FaultOp::Remove => 3,
            FaultOp::SweepTmp => 4,
        }
    }

    /// Lowercase operation name as it appears in error messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::List => "list",
            FaultOp::Read => "read",
            FaultOp::WriteAtomic => "write_atomic",
            FaultOp::Remove => "remove",
            FaultOp::SweepTmp => "sweep_tmp",
        }
    }
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected fault does to the intercepted call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail this one call with the given kind; later calls are unaffected.
    Transient(io::ErrorKind),
    /// Fail this call and every later call of the same operation.
    Persistent(io::ErrorKind),
    /// Simulate a crash between the temporary write and the rename: leave a
    /// torn `.tmp-` orphan behind and report the write as failed. Only
    /// meaningful on `write_atomic`; other operations treat it as a
    /// transient `Interrupted` error.
    CrashAfterTmpWrite,
    /// Unwind with a typed [`StoreFaultPanic`] payload instead of returning.
    Panic,
}

/// Typed panic payload raised by [`FaultMode::Panic`].
///
/// Callers that `catch_unwind` around store-touching work can downcast the
/// payload to this type to distinguish an injected store fault from a
/// genuine logic bug and degrade to a per-request error instead of dying.
#[derive(Debug, Clone)]
pub struct StoreFaultPanic {
    /// The operation that was intercepted.
    pub op: FaultOp,
    /// The entry name the operation addressed (empty for `list`/`sweep_tmp`).
    pub name: String,
}

impl fmt::Display for StoreFaultPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "injected store fault: {} panicked", self.op)
        } else {
            write!(f, "injected store fault: {} of {:?} panicked", self.op, self.name)
        }
    }
}

/// A deterministic fault schedule over `N` numbered operations, generic in
/// the fault mode `M` it injects — the machinery shared by every fault
/// domain, not just stores. [`FaultPlan`] instantiates it over the five
/// store operations with [`FaultMode`]; `nerflex_core`'s `StageFaultPlan`
/// instantiates it over the four pipeline stages.
///
/// Three layers combine, checked in order for every intercepted call:
///
/// 1. **One-shot schedule** — [`fail_nth`](Self::fail_nth) fires on exactly
///    the `n`-th call (0-based) of an operation.
/// 2. **Persistent window** — [`persistent_from`](Self::persistent_from)
///    fires on every call of an operation with index ≥ `from`.
/// 3. **Seeded noise** — [`with_noise`](Self::with_noise) fires on roughly
///    `percent`% of calls, chosen by a hash of `(seed, op, index)`; the
///    injected mode is set once with [`with_noise_mode`](Self::with_noise_mode).
///    The same seed always picks the same call indices.
///
/// All layers are functions of the per-op call *index* only, so a schedule's
/// behaviour is independent of wall-clock time, thread interleaving of
/// *other* operations, and machine state.
#[derive(Debug, Clone)]
pub struct FaultSchedule<M: Copy, const N: usize> {
    seed: u64,
    noise_rate: [u8; N],
    noise_mode: Option<M>,
    persistent_from: [Option<(usize, M)>; N],
    scheduled: Vec<(usize, usize, M)>,
}

impl<M: Copy, const N: usize> FaultSchedule<M, N> {
    /// A schedule that never injects anything.
    pub fn new() -> Self {
        Self {
            seed: 0,
            noise_rate: [0; N],
            noise_mode: None,
            persistent_from: [None; N],
            scheduled: Vec::new(),
        }
    }

    /// Set the seed for the noise layer.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject noise-layer faults on roughly `percent`% of calls of
    /// operation `op` (an index < `N`).
    pub fn with_noise(mut self, op: usize, percent: u8) -> Self {
        self.noise_rate[op] = percent.min(100);
        self
    }

    /// The mode the noise layer injects when it fires (one mode for all
    /// operations; the rates are per-operation).
    pub fn with_noise_mode(mut self, mode: M) -> Self {
        self.noise_mode = Some(mode);
        self
    }

    /// Fire `mode` on every call of operation `op` with index ≥ `from`.
    pub fn persistent_from(mut self, op: usize, from: usize, mode: M) -> Self {
        self.persistent_from[op] = Some((from, mode));
        self
    }

    /// Fire `mode` on exactly the `n`-th call (0-based) of operation `op`.
    pub fn fail_nth(mut self, op: usize, n: usize, mode: M) -> Self {
        self.scheduled.push((op, n, mode));
        self
    }

    /// The fault (if any) this schedule injects for call `index` of `op` —
    /// one-shot schedule first, then the persistent window, then seeded
    /// noise.
    pub fn decide(&self, op: usize, index: usize) -> Option<M> {
        for (sop, sn, mode) in &self.scheduled {
            if *sop == op && *sn == index {
                return Some(*mode);
            }
        }
        if let Some((from, mode)) = self.persistent_from[op] {
            if index >= from {
                return Some(mode);
            }
        }
        let rate = self.noise_rate[op];
        if rate > 0 && mix(self.seed, op as u64, index as u64) % 100 < u64::from(rate) {
            return self.noise_mode;
        }
        None
    }
}

impl<M: Copy, const N: usize> Default for FaultSchedule<M, N> {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic schedule of store faults, keyed on per-operation call
/// indices — [`FaultSchedule`] instantiated over the five [`FaultOp`]s,
/// plus an optional per-call latency. See [`FaultSchedule`] for the
/// layering (one-shot → persistent window → seeded transient noise).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    latency: Option<Duration>,
    schedule: FaultSchedule<FaultMode, OP_COUNT>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        // The transient-noise layer defaults to `TimedOut` — flaky-network
        // noise — until `with_transient_kind` overrides it.
        Self {
            latency: None,
            schedule: FaultSchedule::new()
                .with_noise_mode(FaultMode::Transient(io::ErrorKind::TimedOut)),
        }
    }
}

impl FaultPlan {
    /// A plan that never injects anything (the wrapped backend is passthrough).
    pub fn none() -> Self {
        Self::default()
    }

    /// A seeded plan injecting transient `TimedOut` faults on roughly 40% of
    /// `list`/`read`/`write_atomic` calls — flaky-network noise. Any two
    /// runs with the same seed and call sequence inject identically.
    pub fn seeded(seed: u64) -> Self {
        Self::default()
            .with_seed(seed)
            .with_transient(FaultOp::List, 40)
            .with_transient(FaultOp::Read, 40)
            .with_transient(FaultOp::WriteAtomic, 40)
    }

    /// A plan where every operation fails persistently with
    /// `ConnectionRefused` from the first call — a dead remote.
    pub fn dead() -> Self {
        let mut plan = Self::default();
        for op in 0..OP_COUNT {
            plan.schedule = plan.schedule.persistent_from(
                op,
                0,
                FaultMode::Persistent(io::ErrorKind::ConnectionRefused),
            );
        }
        plan
    }

    /// Set the seed for the transient-noise layer.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.schedule = self.schedule.with_seed(seed);
        self
    }

    /// Inject transient faults on roughly `percent`% of `op` calls.
    ///
    /// The fault kind defaults to `TimedOut`; override with
    /// [`with_transient_kind`](Self::with_transient_kind).
    pub fn with_transient(mut self, op: FaultOp, percent: u8) -> Self {
        self.schedule = self.schedule.with_noise(op.index(), percent);
        self
    }

    /// Override the `io::ErrorKind` used by the seeded transient layer.
    pub fn with_transient_kind(mut self, kind: io::ErrorKind) -> Self {
        self.schedule = self.schedule.with_noise_mode(FaultMode::Transient(kind));
        self
    }

    /// Fail every call of `op` with index ≥ `from` (0-based) with `kind`.
    pub fn persistent_from(mut self, op: FaultOp, from: usize, kind: io::ErrorKind) -> Self {
        self.schedule =
            self.schedule.persistent_from(op.index(), from, FaultMode::Persistent(kind));
        self
    }

    /// Fire `mode` on exactly the `n`-th call (0-based) of `op`.
    pub fn fail_nth(mut self, op: FaultOp, n: usize, mode: FaultMode) -> Self {
        self.schedule = self.schedule.fail_nth(op.index(), n, mode);
        self
    }

    /// Sleep `latency` before every intercepted call (simulated slow remote).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// The fault (if any) this plan injects for call `index` of `op`.
    fn decide(&self, op: FaultOp, index: usize) -> Option<FaultMode> {
        self.schedule.decide(op.index(), index)
    }
}

/// SplitMix64-style bit mixer: the deterministic coin for transient noise.
fn mix(seed: u64, op: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(op.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Injection counters for one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpFaultStats {
    /// Calls intercepted (faulted or not).
    pub calls: usize,
    /// Transient errors injected.
    pub transient: usize,
    /// Persistent errors injected.
    pub persistent: usize,
    /// Simulated crashes injected.
    pub crashes: usize,
    /// Panics injected.
    pub panics: usize,
}

impl OpFaultStats {
    /// Total faults injected on this operation.
    pub fn injected(&self) -> usize {
        self.transient + self.persistent + self.crashes + self.panics
    }
}

/// Per-operation injection counters for a [`FaultyBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Counters for `list`.
    pub list: OpFaultStats,
    /// Counters for `read`.
    pub read: OpFaultStats,
    /// Counters for `write_atomic`.
    pub write_atomic: OpFaultStats,
    /// Counters for `remove`.
    pub remove: OpFaultStats,
    /// Counters for `sweep_tmp`.
    pub sweep_tmp: OpFaultStats,
}

impl FaultStats {
    fn op_mut(&mut self, op: FaultOp) -> &mut OpFaultStats {
        match op {
            FaultOp::List => &mut self.list,
            FaultOp::Read => &mut self.read,
            FaultOp::WriteAtomic => &mut self.write_atomic,
            FaultOp::Remove => &mut self.remove,
            FaultOp::SweepTmp => &mut self.sweep_tmp,
        }
    }

    /// Counters for one operation.
    pub fn op(&self, op: FaultOp) -> OpFaultStats {
        match op {
            FaultOp::List => self.list,
            FaultOp::Read => self.read,
            FaultOp::WriteAtomic => self.write_atomic,
            FaultOp::Remove => self.remove,
            FaultOp::SweepTmp => self.sweep_tmp,
        }
    }

    /// Total calls intercepted across all operations.
    pub fn total_calls(&self) -> usize {
        [self.list, self.read, self.write_atomic, self.remove, self.sweep_tmp]
            .iter()
            .map(|op| op.calls)
            .sum()
    }

    /// Total faults injected across all operations.
    pub fn total_injected(&self) -> usize {
        [self.list, self.read, self.write_atomic, self.remove, self.sweep_tmp]
            .iter()
            .map(|op| op.injected())
            .sum()
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults over {} calls (read {}/{}, write {}/{}, list {}/{})",
            self.total_injected(),
            self.total_calls(),
            self.read.injected(),
            self.read.calls,
            self.write_atomic.injected(),
            self.write_atomic.calls,
            self.list.injected(),
            self.list.calls,
        )
    }
}

/// A [`StoreBackend`] decorator that injects faults from a [`FaultPlan`].
///
/// Call indices are counted per operation across the backend's lifetime, so
/// a plan addresses "the 3rd read" regardless of interleaved writes. The
/// wrapper is thread-safe; when multiple threads race on the same operation
/// the *set* of faulted indices is still deterministic, though which thread
/// draws a faulted index is not — plans used under concurrency should assert
/// aggregate properties (counts, fingerprints), not per-thread ones.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: Arc<dyn StoreBackend>,
    plan: FaultPlan,
    counts: [AtomicUsize; OP_COUNT],
    crash_seq: AtomicUsize,
    stats: Mutex<FaultStats>,
}

impl FaultyBackend {
    /// Wrap `inner`, injecting faults according to `plan`.
    pub fn new(inner: Arc<dyn StoreBackend>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            counts: Default::default(),
            crash_seq: AtomicUsize::new(0),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Snapshot of the injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        *self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn StoreBackend> {
        &self.inner
    }

    /// Record the call, apply latency, and return the fault to inject (if
    /// any). `CrashAfterTmpWrite` is only returned for `write_atomic`; on
    /// other operations it downgrades to a transient `Interrupted`.
    fn gate(&self, op: FaultOp, name: &str) -> Option<FaultMode> {
        let index = self.counts[op.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(latency) = self.plan.latency {
            std::thread::sleep(latency);
        }
        let mode = self.plan.decide(op, index);
        let mode = match mode {
            Some(FaultMode::CrashAfterTmpWrite) if op != FaultOp::WriteAtomic => {
                Some(FaultMode::Transient(io::ErrorKind::Interrupted))
            }
            other => other,
        };
        {
            let mut stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
            let counters = stats.op_mut(op);
            counters.calls += 1;
            match mode {
                Some(FaultMode::Transient(_)) => counters.transient += 1,
                Some(FaultMode::Persistent(_)) => counters.persistent += 1,
                Some(FaultMode::CrashAfterTmpWrite) => counters.crashes += 1,
                Some(FaultMode::Panic) => counters.panics += 1,
                None => {}
            }
        }
        if let Some(FaultMode::Panic) = mode {
            std::panic::panic_any(StoreFaultPanic { op, name: name.to_string() });
        }
        mode
    }

    /// Render `mode` as the error the intercepted call returns.
    fn fail<T>(&self, op: FaultOp, name: &str, mode: FaultMode) -> io::Result<T> {
        let (kind, flavor) = match mode {
            FaultMode::Transient(kind) => (kind, "transient"),
            FaultMode::Persistent(kind) => (kind, "persistent"),
            // Handled by the callers; kept total for safety.
            FaultMode::CrashAfterTmpWrite => (io::ErrorKind::Interrupted, "crash"),
            FaultMode::Panic => (io::ErrorKind::Other, "panic"),
        };
        Err(io::Error::new(kind, format!("injected {flavor} fault on {op} of {name:?}")))
    }
}

impl StoreBackend for FaultyBackend {
    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        match self.gate(FaultOp::List, "") {
            None => self.inner.list(),
            Some(mode) => self.fail(FaultOp::List, "", mode),
        }
    }

    fn list_prunable(&self) -> io::Result<Vec<EntryMeta>> {
        // Pruning is local maintenance; faults target the data-path contract,
        // so the prunable listing passes through un-gated.
        self.inner.list_prunable()
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        match self.gate(FaultOp::Read, name) {
            None => self.inner.read(name),
            Some(mode) => self.fail(FaultOp::Read, name, mode),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        match self.gate(FaultOp::WriteAtomic, name) {
            None => self.inner.write_atomic(name, bytes),
            Some(FaultMode::CrashAfterTmpWrite) => {
                // The crash happened after the temporary was (partially)
                // written but before the rename: leave a torn orphan that
                // carries the `.tmp-` sweep marker, then report failure.
                let seq = self.crash_seq.fetch_add(1, Ordering::Relaxed);
                let orphan = format!("{name}.tmp-crash{seq}");
                let torn = &bytes[..bytes.len() / 2];
                let _ = self.inner.write_atomic(&orphan, torn);
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected crash between tmp write and rename of {name:?}"),
                ))
            }
            Some(mode) => self.fail(FaultOp::WriteAtomic, name, mode),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match self.gate(FaultOp::Remove, name) {
            None => self.inner.remove(name),
            Some(mode) => self.fail(FaultOp::Remove, name, mode),
        }
    }

    fn sweep_tmp(&self) -> io::Result<()> {
        match self.gate(FaultOp::SweepTmp, "") {
            None => self.inner.sweep_tmp(),
            Some(mode) => self.fail(FaultOp::SweepTmp, "", mode),
        }
    }

    fn describe(&self) -> String {
        format!("faulty({})", self.inner.describe())
    }

    fn resilience(&self) -> ResilienceStats {
        self.inner.resilience()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn faulty(plan: FaultPlan) -> FaultyBackend {
        FaultyBackend::new(Arc::new(MemBackend::new()), plan)
    }

    #[test]
    fn none_plan_is_passthrough() {
        let backend = faulty(FaultPlan::none());
        backend.write_atomic("a.bin", b"payload").expect("write");
        assert_eq!(backend.read("a.bin").expect("read"), b"payload");
        assert_eq!(backend.list().expect("list").len(), 1);
        assert_eq!(backend.fault_stats().total_injected(), 0);
        assert_eq!(backend.fault_stats().total_calls(), 3);
    }

    #[test]
    fn fail_nth_hits_exactly_the_scheduled_call() {
        let plan = FaultPlan::none().fail_nth(
            FaultOp::Read,
            1,
            FaultMode::Transient(io::ErrorKind::TimedOut),
        );
        let backend = faulty(plan);
        backend.write_atomic("a.bin", b"x").expect("write");
        assert!(backend.read("a.bin").is_ok(), "read 0 passes");
        let err = backend.read("a.bin").expect_err("read 1 faulted");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(backend.read("a.bin").is_ok(), "read 2 passes again");
        assert_eq!(backend.fault_stats().read.transient, 1);
    }

    #[test]
    fn persistent_window_fails_everything_from_its_start() {
        let plan =
            FaultPlan::none().persistent_from(FaultOp::Read, 2, io::ErrorKind::ConnectionRefused);
        let backend = faulty(plan);
        backend.write_atomic("a.bin", b"x").expect("write");
        assert!(backend.read("a.bin").is_ok());
        assert!(backend.read("a.bin").is_ok());
        for _ in 0..3 {
            let err = backend.read("a.bin").expect_err("persistent window");
            assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        }
        assert_eq!(backend.fault_stats().read.persistent, 3);
    }

    #[test]
    fn seeded_noise_is_deterministic_and_roughly_at_rate() {
        let run = |seed: u64| -> Vec<bool> {
            let backend =
                faulty(FaultPlan::none().with_seed(seed).with_transient(FaultOp::Read, 40));
            (0..100)
                .map(|_| {
                    backend.read("missing.bin").is_err_and(|e| e.kind() == io::ErrorKind::TimedOut)
                })
                .collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same schedule");
        let faulted = a.iter().filter(|hit| **hit).count();
        assert!((20..=60).contains(&faulted), "~40% of 100 calls should fault, got {faulted}");
        let c = run(8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn dead_plan_fails_every_operation() {
        let backend = faulty(FaultPlan::dead());
        assert!(backend.list().is_err());
        assert!(backend.read("a.bin").is_err());
        assert!(backend.write_atomic("a.bin", b"x").is_err());
        assert!(backend.remove("a.bin").is_err());
        assert!(backend.sweep_tmp().is_err());
        assert_eq!(backend.fault_stats().total_injected(), 5);
    }

    #[test]
    fn crash_mode_leaves_a_torn_tmp_orphan_and_fails_the_write() {
        let plan =
            FaultPlan::none().fail_nth(FaultOp::WriteAtomic, 0, FaultMode::CrashAfterTmpWrite);
        let backend = faulty(plan);
        let err = backend.write_atomic("entry.bin", b"0123456789").expect_err("crashed");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        // The entry itself never landed; only a torn orphan carrying the
        // `.tmp-` sweep marker exists on the inner backend.
        assert_eq!(
            backend.inner().read("entry.bin").expect_err("torn").kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(backend.inner().read("entry.bin.tmp-crash0").expect("orphan"), b"01234");
        assert_eq!(backend.fault_stats().write_atomic.crashes, 1);
        // Retrying the write succeeds (the crash was one-shot).
        backend.write_atomic("entry.bin", b"0123456789").expect("retry lands");
    }

    #[test]
    fn panic_mode_unwinds_with_a_typed_payload() {
        let plan = FaultPlan::none().fail_nth(FaultOp::Read, 0, FaultMode::Panic);
        let backend = faulty(plan);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = backend.read("entry.bin");
        }))
        .expect_err("panic fault unwinds");
        let fault = payload.downcast::<StoreFaultPanic>().expect("typed payload");
        assert_eq!(fault.op, FaultOp::Read);
        assert_eq!(fault.name, "entry.bin");
        assert_eq!(backend.fault_stats().read.panics, 1);
    }

    #[test]
    fn generic_schedule_layers_fire_in_order_for_any_mode_type() {
        // A three-operation domain with a custom mode type: the schedule
        // machinery is not store-specific.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        enum Mode {
            Boom,
            Slow,
        }
        let schedule: FaultSchedule<Mode, 3> = FaultSchedule::new()
            .with_seed(7)
            .with_noise(2, 40)
            .with_noise_mode(Mode::Slow)
            .persistent_from(1, 5, Mode::Slow)
            .fail_nth(1, 2, Mode::Boom);
        // One-shot beats the layers below it; the persistent window opens at
        // its index and never closes.
        assert_eq!(schedule.decide(1, 2), Some(Mode::Boom));
        assert_eq!(schedule.decide(1, 4), None);
        assert_eq!(schedule.decide(1, 5), Some(Mode::Slow));
        assert_eq!(schedule.decide(1, 500), Some(Mode::Slow));
        // Noise is seeded and per-op: op 0 has no rate, op 2 fires at ~40%.
        assert!((0..100).all(|i| schedule.decide(0, i).is_none()));
        let fired = (0..100).filter(|&i| schedule.decide(2, i) == Some(Mode::Slow)).count();
        assert!((20..=60).contains(&fired), "~40% of 100 calls, got {fired}");
        let replay = (0..100).filter(|&i| schedule.decide(2, i) == Some(Mode::Slow)).count();
        assert_eq!(fired, replay, "same seed, same schedule");
    }

    #[test]
    fn latency_is_applied_without_changing_results() {
        let plan = FaultPlan::none().with_latency(Duration::from_millis(1));
        let backend = faulty(plan);
        backend.write_atomic("a.bin", b"x").expect("write");
        assert_eq!(backend.read("a.bin").expect("read"), b"x");
    }
}
