//! The baking configuration pair θ = (g, p) and the representation family.

use serde::{Deserialize, Serialize};

/// The baked-representation family a configuration selects (ISSUE 10).
///
/// The paper's Stage-3 selection picks, per object and per device budget,
/// the cheapest baked representation that clears the quality bar. The
/// classic MobileNeRF-style family ([`BakeFamily::Mesh`]) pairs a quad mesh
/// with a texture atlas and a tiny MLP; the gaussian-splat family
/// ([`BakeFamily::Splat`]) replaces all three with a cloud of oriented
/// anisotropic gaussians extracted from the SDF surface — far cheaper at
/// tight budgets and better on soft geometry, at the cost of crispness.
///
/// The variant order is load-bearing: it is the **fixed cross-family
/// tie-break order** used by the selector when two configurations from
/// different families score equal quality at equal size (`Mesh` wins; see
/// `docs/determinism.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BakeFamily {
    /// Quad mesh + texture atlas + deferred-shading MLP (paper §III-B).
    Mesh,
    /// Oriented anisotropic gaussian splats; `count` is the family's
    /// quality axis (requested splat budget — extraction may produce fewer
    /// when the surface has fewer seed cells).
    Splat {
        /// Requested number of splats.
        count: u32,
    },
}

impl BakeFamily {
    /// Stable one-byte tag used by the on-disk codec and the tie-break key.
    pub fn tag(self) -> u8 {
        match self {
            BakeFamily::Mesh => 0,
            BakeFamily::Splat { .. } => 1,
        }
    }

    /// Short human-readable family name (used by fig9's breakdown table).
    pub fn name(self) -> &'static str {
        match self {
            BakeFamily::Mesh => "mesh",
            BakeFamily::Splat { .. } => "splat",
        }
    }
}

/// The controlling knobs of the baked representation (paper §III-B), plus
/// the representation family (ISSUE 10): the voxel-grid granularity per
/// axis `g`, the one-dimensional texture patch size `p` allocated to each
/// quad face, and — for the splat family — the splat count replacing `p`
/// as the quality axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BakeConfig {
    /// Voxel grid cells per axis (mesh granularity level; for splats the
    /// seed-point resolution).
    pub grid: u32,
    /// Texture patch side length in texels (pinned to [`Self::MIN_PATCH`]
    /// for splat configurations, which carry no atlas).
    pub patch: u32,
    /// The representation family this configuration bakes.
    pub family: BakeFamily,
}

impl BakeConfig {
    /// Smallest mesh granularity considered by the paper's configuration space.
    pub const MIN_GRID: u32 = 16;
    /// Largest mesh granularity (the MobileNeRF default).
    pub const MAX_GRID: u32 = 128;
    /// Smallest texture patch side.
    pub const MIN_PATCH: u32 = 3;
    /// Largest texture patch side evaluated in the paper (Fig. 3 sweeps to ~45).
    pub const MAX_PATCH: u32 = 45;
    /// Smallest splat budget worth extracting.
    pub const MIN_SPLATS: u32 = 64;
    /// Largest splat budget enumerated by the configuration space.
    pub const MAX_SPLATS: u32 = 65_536;

    /// The configuration recommended by the MobileNeRF paper and used for the
    /// Single-NeRF and Block-NeRF baselines: `(g, p) = (128, 17)`.
    pub const MOBILENERF_DEFAULT: BakeConfig =
        BakeConfig { grid: 128, patch: 17, family: BakeFamily::Mesh };

    /// Creates a mesh-family configuration.
    ///
    /// # Panics
    ///
    /// Panics when either knob is zero.
    pub fn new(grid: u32, patch: u32) -> Self {
        assert!(grid > 0 && patch > 0, "configuration knobs must be positive");
        Self { grid, patch, family: BakeFamily::Mesh }
    }

    /// Creates a splat-family configuration: seed grid `g` and requested
    /// splat `count` (the family's quality axis). The unused patch knob is
    /// pinned to [`Self::MIN_PATCH`].
    ///
    /// # Panics
    ///
    /// Panics when either knob is zero.
    pub fn splat(grid: u32, count: u32) -> Self {
        assert!(grid > 0 && count > 0, "configuration knobs must be positive");
        Self { grid, patch: Self::MIN_PATCH, family: BakeFamily::Splat { count } }
    }

    /// Clamps every knob into the supported range
    /// (`[MIN_GRID, MAX_GRID] × [MIN_PATCH, MAX_PATCH]`, splat counts into
    /// `[MIN_SPLATS, MAX_SPLATS]`).
    pub fn clamped(self) -> Self {
        Self {
            grid: self.grid.clamp(Self::MIN_GRID, Self::MAX_GRID),
            patch: self.patch.clamp(Self::MIN_PATCH, Self::MAX_PATCH),
            family: match self.family {
                BakeFamily::Mesh => BakeFamily::Mesh,
                BakeFamily::Splat { count } => {
                    BakeFamily::Splat { count: count.clamp(Self::MIN_SPLATS, Self::MAX_SPLATS) }
                }
            },
        }
    }

    /// `true` when every knob lies within the supported range.
    pub fn is_in_range(&self) -> bool {
        (Self::MIN_GRID..=Self::MAX_GRID).contains(&self.grid)
            && (Self::MIN_PATCH..=Self::MAX_PATCH).contains(&self.patch)
            && match self.family {
                BakeFamily::Mesh => true,
                BakeFamily::Splat { count } => {
                    (Self::MIN_SPLATS..=Self::MAX_SPLATS).contains(&count)
                }
            }
    }

    /// The requested splat count (`None` for mesh-family configurations).
    pub fn splat_count(&self) -> Option<u32> {
        match self.family {
            BakeFamily::Mesh => None,
            BakeFamily::Splat { count } => Some(count),
        }
    }

    /// The family-specific second knob: patch side for meshes, splat count
    /// for splats. Together with `grid` and the family tag this identifies
    /// the configuration (used by the on-disk entry naming).
    pub fn axis2(&self) -> u32 {
        match self.family {
            BakeFamily::Mesh => self.patch,
            BakeFamily::Splat { count } => count,
        }
    }

    /// The deterministic cross-family tie-break key: family tag first
    /// (`Mesh` < `Splat` — the fixed family order of `docs/determinism.md`),
    /// then the knobs. When the selector scores two candidates equal in
    /// quality at equal size it keeps the one with the *smaller* key,
    /// independent of enumeration order.
    pub fn tie_break_key(&self) -> (u8, u32, u32) {
        (self.family.tag(), self.grid, self.axis2())
    }
}

impl Default for BakeConfig {
    fn default() -> Self {
        Self::MOBILENERF_DEFAULT
    }
}

impl std::fmt::Display for BakeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.family {
            BakeFamily::Mesh => write!(f, "(g={}, p={})", self.grid, self.patch),
            BakeFamily::Splat { count } => write!(f, "(g={}, s={})", self.grid, count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_mobilenerf_recommendation() {
        let c = BakeConfig::default();
        assert_eq!(c.grid, 128);
        assert_eq!(c.patch, 17);
        assert_eq!(c.family, BakeFamily::Mesh);
        assert!(c.is_in_range());
    }

    #[test]
    fn clamping_enforces_bounds() {
        let c = BakeConfig::new(1000, 1).clamped();
        assert_eq!(c.grid, BakeConfig::MAX_GRID);
        assert_eq!(c.patch, BakeConfig::MIN_PATCH);
        assert!(c.is_in_range());
        assert!(!BakeConfig::new(4, 100).is_in_range());
    }

    #[test]
    fn splat_clamping_bounds_the_count() {
        let c = BakeConfig::splat(20, 1).clamped();
        assert_eq!(c.splat_count(), Some(BakeConfig::MIN_SPLATS));
        assert!(c.is_in_range());
        let c = BakeConfig::splat(20, u32::MAX).clamped();
        assert_eq!(c.splat_count(), Some(BakeConfig::MAX_SPLATS));
        assert!(!BakeConfig::splat(20, 1).is_in_range());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(BakeConfig::new(64, 9).to_string(), "(g=64, p=9)");
        assert_eq!(BakeConfig::splat(24, 2048).to_string(), "(g=24, s=2048)");
    }

    #[test]
    fn tie_break_orders_mesh_before_splat() {
        // The fixed family order of docs/determinism.md: at equal knobs a
        // mesh configuration always has the smaller key.
        let mesh = BakeConfig::new(24, 5);
        let splat = BakeConfig::splat(24, 2048);
        assert!(mesh.tie_break_key() < splat.tie_break_key());
        // Within a family the key orders by grid, then the second axis.
        assert!(BakeConfig::new(16, 9).tie_break_key() < BakeConfig::new(24, 3).tie_break_key());
        assert!(
            BakeConfig::splat(24, 512).tie_break_key() < BakeConfig::splat(24, 513).tie_break_key()
        );
    }

    #[test]
    fn splat_accessors_expose_the_count() {
        let c = BakeConfig::splat(20, 4096);
        assert_eq!(c.splat_count(), Some(4096));
        assert_eq!(c.axis2(), 4096);
        assert_eq!(c.family.tag(), 1);
        assert_eq!(c.family.name(), "splat");
        let m = BakeConfig::new(20, 7);
        assert_eq!(m.splat_count(), None);
        assert_eq!(m.axis2(), 7);
        assert_eq!(m.family.tag(), 0);
        assert_eq!(m.family.name(), "mesh");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_knob_panics() {
        let _ = BakeConfig::new(0, 17);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_splat_count_panics() {
        let _ = BakeConfig::splat(20, 0);
    }
}
