//! The baking configuration pair θ = (g, p).

use serde::{Deserialize, Serialize};

/// The two controlling knobs of the baked representation (paper §III-B):
/// the voxel-grid granularity per axis `g` and the one-dimensional texture
/// patch size `p` allocated to each quad face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BakeConfig {
    /// Voxel grid cells per axis (mesh granularity level).
    pub grid: u32,
    /// Texture patch side length in texels.
    pub patch: u32,
}

impl BakeConfig {
    /// Smallest mesh granularity considered by the paper's configuration space.
    pub const MIN_GRID: u32 = 16;
    /// Largest mesh granularity (the MobileNeRF default).
    pub const MAX_GRID: u32 = 128;
    /// Smallest texture patch side.
    pub const MIN_PATCH: u32 = 3;
    /// Largest texture patch side evaluated in the paper (Fig. 3 sweeps to ~45).
    pub const MAX_PATCH: u32 = 45;

    /// The configuration recommended by the MobileNeRF paper and used for the
    /// Single-NeRF and Block-NeRF baselines: `(g, p) = (128, 17)`.
    pub const MOBILENERF_DEFAULT: BakeConfig = BakeConfig { grid: 128, patch: 17 };

    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics when either knob is zero.
    pub fn new(grid: u32, patch: u32) -> Self {
        assert!(grid > 0 && patch > 0, "configuration knobs must be positive");
        Self { grid, patch }
    }

    /// Clamps both knobs into the supported range
    /// (`[MIN_GRID, MAX_GRID] × [MIN_PATCH, MAX_PATCH]`).
    pub fn clamped(self) -> Self {
        Self {
            grid: self.grid.clamp(Self::MIN_GRID, Self::MAX_GRID),
            patch: self.patch.clamp(Self::MIN_PATCH, Self::MAX_PATCH),
        }
    }

    /// `true` when both knobs lie within the supported range.
    pub fn is_in_range(&self) -> bool {
        (Self::MIN_GRID..=Self::MAX_GRID).contains(&self.grid)
            && (Self::MIN_PATCH..=Self::MAX_PATCH).contains(&self.patch)
    }
}

impl Default for BakeConfig {
    fn default() -> Self {
        Self::MOBILENERF_DEFAULT
    }
}

impl std::fmt::Display for BakeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(g={}, p={})", self.grid, self.patch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_mobilenerf_recommendation() {
        let c = BakeConfig::default();
        assert_eq!(c.grid, 128);
        assert_eq!(c.patch, 17);
        assert!(c.is_in_range());
    }

    #[test]
    fn clamping_enforces_bounds() {
        let c = BakeConfig::new(1000, 1).clamped();
        assert_eq!(c.grid, BakeConfig::MAX_GRID);
        assert_eq!(c.patch, BakeConfig::MIN_PATCH);
        assert!(c.is_in_range());
        assert!(!BakeConfig::new(4, 100).is_in_range());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(BakeConfig::new(64, 9).to_string(), "(g=64, p=9)");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_knob_panics() {
        let _ = BakeConfig::new(0, 17);
    }
}
