//! Occupancy voxel grids sampled from a signed distance field.
//!
//! "During training, NeRF divides the entire rendering space into g³ voxels,
//! and meshes are subsequently formed based on neighboring voxels"
//! (paper §III-B). The grid is built over the object's bounding box, so the
//! effective cell size — and therefore the geometric fidelity — scales with
//! the granularity knob `g`.

use nerflex_math::{Aabb, Vec3};
use nerflex_scene::sdf::Sdf;

/// A dense boolean occupancy grid of `g³` cells over an object's bounds.
#[derive(Debug, Clone)]
pub struct VoxelGrid {
    resolution: u32,
    origin: Vec3,
    cell_size: Vec3,
    occupancy: Vec<bool>,
}

impl VoxelGrid {
    /// Samples the SDF at every cell centre of a `resolution³` grid over the
    /// SDF's (slightly inflated) bounding box.
    ///
    /// # Panics
    ///
    /// Panics when `resolution` is zero.
    pub fn from_sdf(sdf: &Sdf, resolution: u32) -> Self {
        assert!(resolution > 0, "voxel resolution must be positive");
        let bounds = sdf.bounding_box().inflate(1e-3);
        Self::from_sdf_with_bounds(sdf, resolution, bounds)
    }

    /// Same as [`VoxelGrid::from_sdf`] with explicit bounds (used when several
    /// configurations of the same object must share identical cell layouts).
    pub fn from_sdf_with_bounds(sdf: &Sdf, resolution: u32, bounds: Aabb) -> Self {
        assert!(resolution > 0, "voxel resolution must be positive");
        let r = resolution as usize;
        let extent = bounds.extent();
        let cell_size = extent / resolution as f32;
        let mut occupancy = vec![false; r * r * r];
        for z in 0..r {
            for y in 0..r {
                for x in 0..r {
                    let center = bounds.min
                        + Vec3::new(
                            (x as f32 + 0.5) * cell_size.x,
                            (y as f32 + 0.5) * cell_size.y,
                            (z as f32 + 0.5) * cell_size.z,
                        );
                    // A cell is occupied when its centre is within half a cell
                    // diagonal of the surface interior; this keeps thin features
                    // (masts, studs) present even at coarse granularities.
                    let d = sdf.distance(center);
                    occupancy[(z * r + y) * r + x] = d <= cell_size.max_component() * 0.5;
                }
            }
        }
        Self { resolution, origin: bounds.min, cell_size, occupancy }
    }

    /// Grid resolution per axis.
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// World-space position of the grid origin (minimum corner).
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// World-space size of one cell.
    pub fn cell_size(&self) -> Vec3 {
        self.cell_size
    }

    /// Whether the cell `(x, y, z)` is occupied; out-of-range cells are empty.
    pub fn occupied(&self, x: i64, y: i64, z: i64) -> bool {
        let r = self.resolution as i64;
        if x < 0 || y < 0 || z < 0 || x >= r || y >= r || z >= r {
            return false;
        }
        self.occupancy[((z * r + y) * r + x) as usize]
    }

    /// Number of occupied cells.
    pub fn occupied_count(&self) -> usize {
        self.occupancy.iter().filter(|&&b| b).count()
    }

    /// Fraction of occupied cells.
    pub fn occupancy_ratio(&self) -> f64 {
        self.occupied_count() as f64 / self.occupancy.len() as f64
    }

    /// World-space position of the lattice corner `(x, y, z)` (corner `(0,0,0)`
    /// is the grid origin).
    pub fn corner_position(&self, x: u32, y: u32, z: u32) -> Vec3 {
        self.origin
            + Vec3::new(
                x as f32 * self.cell_size.x,
                y as f32 * self.cell_size.y,
                z as f32 * self.cell_size.z,
            )
    }

    /// Number of boundary faces (occupied cell next to an empty cell); this is
    /// exactly the number of quads the mesh extractor will emit.
    pub fn boundary_face_count(&self) -> usize {
        let r = self.resolution as i64;
        let mut count = 0;
        for z in 0..r {
            for y in 0..r {
                for x in 0..r {
                    if !self.occupied(x, y, z) {
                        continue;
                    }
                    for (dx, dy, dz) in [
                        (1i64, 0i64, 0i64),
                        (-1, 0, 0),
                        (0, 1, 0),
                        (0, -1, 0),
                        (0, 0, 1),
                        (0, 0, -1),
                    ] {
                        if !self.occupied(x + dx, y + dy, z + dz) {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;

    #[test]
    fn sphere_occupancy_scales_with_volume() {
        let sphere = Sdf::Sphere { radius: 1.0 };
        let grid = VoxelGrid::from_sdf(&sphere, 24);
        // Sphere volume / bounding-box volume ≈ π/6 ≈ 0.52; the half-cell
        // tolerance inflates it slightly.
        let ratio = grid.occupancy_ratio();
        assert!(ratio > 0.4 && ratio < 0.75, "ratio = {ratio}");
    }

    #[test]
    fn out_of_range_cells_are_empty() {
        let grid = VoxelGrid::from_sdf(&Sdf::Sphere { radius: 0.5 }, 8);
        assert!(!grid.occupied(-1, 0, 0));
        assert!(!grid.occupied(8, 0, 0));
        assert!(grid.occupied(4, 4, 4));
    }

    #[test]
    fn finer_grids_have_more_boundary_faces() {
        let model = CanonicalObject::Chair.build();
        let coarse = VoxelGrid::from_sdf(&model.sdf, 12);
        let fine = VoxelGrid::from_sdf(&model.sdf, 36);
        assert!(fine.boundary_face_count() > coarse.boundary_face_count());
    }

    #[test]
    fn complexity_ordering_matches_canonical_ranks_at_fixed_grid() {
        // The measured geometric complexity (boundary faces at a reference
        // granularity) must respect hotdog < chair < lego, the extremes and
        // middle of the paper's ordering.
        let faces =
            |o: CanonicalObject| VoxelGrid::from_sdf(&o.build().sdf, 28).boundary_face_count();
        let hotdog = faces(CanonicalObject::Hotdog);
        let chair = faces(CanonicalObject::Chair);
        let lego = faces(CanonicalObject::Lego);
        assert!(hotdog < lego, "hotdog {hotdog} !< lego {lego}");
        assert!(chair < lego, "chair {chair} !< lego {lego}");
    }

    #[test]
    fn corner_positions_span_the_bounds() {
        let sphere = Sdf::Sphere { radius: 1.0 };
        let grid = VoxelGrid::from_sdf(&sphere, 10);
        let low = grid.corner_position(0, 0, 0);
        let high = grid.corner_position(10, 10, 10);
        let bb = sphere.bounding_box().inflate(1e-3);
        assert!((low - bb.min).length() < 1e-5);
        assert!((high - bb.max).length() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_panics() {
        let _ = VoxelGrid::from_sdf(&Sdf::Sphere { radius: 1.0 }, 0);
    }
}
