//! The generic keyed persistence primitive shared by every NeRFlex store.
//!
//! [`crate::BakeCache`] and `nerflex_profile::GroundTruthCache` used to
//! mirror each other's persistence machinery element for element: a lazy
//! filename-keyed index, an orphaned-temporary sweep, a snapshot-outside-
//! lock flush, magic/version/FNV entry framing and [`StoreLimits`] pruning.
//! [`KeyedStore`] is that machinery extracted **once**: a thread-safe,
//! content-addressed map from codec keys to `Arc`-shared values, optionally
//! persisted through a pluggable [`StoreBackend`]. The two caches are now
//! thin typed wrappers — an [`EntryCodec`] (file naming + byte framing) and
//! key fingerprinting each — so every future persistence fix lands once.
//!
//! # Division of responsibility
//!
//! * [`EntryCodec`] — *what* an entry is: its key ⇄ file-name mapping and
//!   its self-validating byte framing. Owns the on-disk format.
//! * [`StoreBackend`] — *where* entries live: list/read/write-atomic over a
//!   directory, a memory map, or a local-over-remote layering.
//! * [`KeyedStore`] — *policy*: lazy indexing, hit/miss accounting, dirty
//!   tracking, corruption tolerance (a damaged entry costs one rebuild,
//!   never an error), retention pruning, read-only mode.
//!
//! # Determinism
//!
//! Values are deterministic functions of their keys, so every cache level
//! (in-memory, local disk, shared remote) returns bit-identical data; the
//! backend choice never changes output bits. `docs/stores.md` documents the
//! store API and the sharing semantics; `docs/determinism.md` states the
//! repo-wide contract.

use crate::backend::{
    DirBackend, EntryMeta, PrefixedBackend, RetryPolicy, SharedBackend, StoreBackend,
};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning.
///
/// Every mutex in this module guards state that is valid between operations
/// by construction: slots are inserted and removed in single statements,
/// builds and decodes run *outside* the entry lock, and the pending-cell
/// flag is a bare bool. A peer that panicked while holding one of these
/// locks therefore cannot have left the data torn — propagating the poison
/// would turn one panicked builder into a failure of every later lookup,
/// so we take the data and keep serving.
fn lock_valid<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Retention limits + pruning
// ---------------------------------------------------------------------------

/// Retention limits of a persistent entry store. The default is unbounded.
/// Applied when a store is opened ([`StoreOptions::limits`]), so a CI or
/// developer store stops growing monotonically; layered backends confine
/// the sweep to their local layer (the shared remote is never pruned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreLimits {
    /// Total entry-file budget in bytes; the oldest entries (by modification
    /// time, then file name for determinism) are removed until the store
    /// fits. `None` = unbounded.
    pub max_bytes: Option<u64>,
    /// Entries whose modification time is older than this are removed
    /// regardless of the size budget. `None` = no age sweep.
    pub max_age: Option<Duration>,
}

impl StoreLimits {
    /// `true` when no limit is configured (pruning is a no-op).
    pub fn is_unbounded(&self) -> bool {
        self.max_bytes.is_none() && self.max_age.is_none()
    }

    /// Returns the limits with the given size budget in bytes.
    pub fn with_max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Returns the limits with the given maximum entry age.
    pub fn with_max_age(mut self, age: Duration) -> Self {
        self.max_age = Some(age);
        self
    }
}

/// What a [`prune_backend`] sweep did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Entry files removed.
    pub removed_files: usize,
    /// Bytes those files occupied.
    pub removed_bytes: u64,
    /// Entry bytes remaining after the sweep.
    pub retained_bytes: u64,
}

/// Applies a size-budget + age sweep to a backend's prunable entries:
/// entries older than `limits.max_age` are removed, then — oldest first
/// (modification time, name as the deterministic tie-break) — more are
/// removed until the survivors fit in `limits.max_bytes`. Entries are a
/// cache, so a pruned entry only costs a rebuild; per-entry failures (a
/// concurrent writer, a vanished file) are skipped, never an error.
///
/// Foreign files and in-flight temporaries never appear in a backend's
/// listing and are therefore untouched.
///
/// # Errors
///
/// Returns the underlying error when the backend cannot be listed.
pub fn prune_backend(backend: &dyn StoreBackend, limits: &StoreLimits) -> io::Result<PruneReport> {
    let mut report = PruneReport::default();
    if limits.is_unbounded() {
        return Ok(report);
    }
    let mut entries = backend.list_prunable()?;
    let now = std::time::SystemTime::now();

    let remove = |meta: &EntryMeta, report: &mut PruneReport| {
        if backend.remove(&meta.name).is_ok() {
            report.removed_files += 1;
            report.removed_bytes += meta.size;
            true
        } else {
            false
        }
    };

    // Age sweep first.
    if let Some(max_age) = limits.max_age {
        entries.retain(|meta| {
            let expired = now.duration_since(meta.modified).is_ok_and(|age| age > max_age);
            !(expired && remove(meta, &mut report))
        });
    }

    // Then the size budget, dropping the oldest survivors first.
    if let Some(max_bytes) = limits.max_bytes {
        let mut total: u64 = entries.iter().map(|meta| meta.size).sum();
        entries.sort_by(|a, b| a.modified.cmp(&b.modified).then_with(|| a.name.cmp(&b.name)));
        for meta in &entries {
            if total <= max_bytes {
                break;
            }
            if remove(meta, &mut report) {
                total -= meta.size;
            }
        }
        report.retained_bytes = total;
    } else {
        report.retained_bytes = entries.iter().map(|meta| meta.size).sum();
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// EntryCodec
// ---------------------------------------------------------------------------

/// The typed half of a store: how keys map to entry file names and how
/// values frame to self-validating bytes. Implementations own their on-disk
/// format (magic, version, key echo, checksum) — [`KeyedStore`] never
/// interprets entry bytes itself.
pub trait EntryCodec {
    /// Cache key. File names must round-trip through
    /// [`EntryCodec::file_name`] / [`EntryCodec::parse_file_name`].
    type Key: Copy + Eq + std::hash::Hash + Send;
    /// Decoded entry value, shared behind `Arc` by every hit.
    type Value: Send + Sync;
    /// Extra context [`EntryCodec::decode`] needs at lookup time (e.g. the
    /// model a ground truth is reconstructed against); `()` when entries
    /// are self-contained. `Copy` so a failed decode can fall through to a
    /// rebuild that also uses it.
    type Context<'a>: Copy;

    /// Entry-file extension (no leading dot).
    const EXTENSION: &'static str;

    /// The canonical file name of a key.
    fn file_name(key: &Self::Key) -> String;

    /// Parses a file name back into its key (`None` for foreign names —
    /// the basis of the lazy index).
    fn parse_file_name(name: &str) -> Option<Self::Key>;

    /// Serializes one entry, embedding the key and whatever framing the
    /// format requires for [`EntryCodec::decode`] to be total.
    fn encode(key: &Self::Key, value: &Self::Value) -> Vec<u8>;

    /// Deserializes and fully validates one entry: any truncation, bad
    /// magic, foreign version, checksum failure or key mismatch yields
    /// `None` (the store rebuilds the value), never a panic.
    fn decode(key: &Self::Key, bytes: &[u8], ctx: Self::Context<'_>) -> Option<Arc<Self::Value>>;
}

// ---------------------------------------------------------------------------
// StoreOptions
// ---------------------------------------------------------------------------

/// Where a store's persistent layer lives.
#[derive(Debug, Clone, Default)]
pub enum StoreLocation {
    /// No persistence: entries live for the process only.
    #[default]
    InMemory,
    /// One on-disk directory (the classic layout).
    Dir(PathBuf),
    /// A local directory layered read-through/write-through over a shared
    /// remote — the cross-machine store (see
    /// [`crate::backend::SharedBackend`]).
    Shared {
        /// This machine's local layer.
        local: PathBuf,
        /// The remote shared by the fleet.
        remote: Remote,
    },
    /// Any backend implementation used directly, without a local layer —
    /// test doubles, fault-injection wrappers
    /// ([`crate::fault::FaultyBackend`]), future object-store adapters.
    Custom(Arc<dyn StoreBackend>),
}

/// The remote half of a [`StoreLocation::Shared`] layering.
#[derive(Debug, Clone)]
pub enum Remote {
    /// A second directory (an NFS mount, a synced folder, a CI cache dir).
    Dir(PathBuf),
    /// Any backend implementation (an object store adapter, the in-memory
    /// test double).
    Backend(Arc<dyn StoreBackend>),
}

/// How to open a [`KeyedStore`] (and, through the pipeline, the bake and
/// ground-truth caches): location/backend, retention limits, read-only
/// mode. One builder replaces the former `open`/`open_with_limits`
/// constructor pairs.
///
/// ```
/// use nerflex_bake::{StoreLimits, StoreOptions};
///
/// let opts = StoreOptions::dir("/tmp/nerflex-store")
///     .with_limits(StoreLimits::default().with_max_bytes(1 << 30))
///     .read_only(false);
/// assert!(opts.is_persistent());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    /// Where the persistent layer lives (`InMemory` = none).
    pub location: StoreLocation,
    /// Retention limits applied when the store is opened (local layer only).
    pub limits: StoreLimits,
    /// Read-only stores never write: no pruning or temporary sweep on open,
    /// and `flush` is a no-op. Lookups (including read-through population of
    /// a shared local layer) work normally; new builds stay in memory.
    pub read_only: bool,
    /// In-flight dedup: when set, concurrent misses on the same key wait on
    /// **one** build (a "pending entry") instead of each building their own
    /// copy. Off by default — the historical contract deliberately allows
    /// duplicate in-flight builds (builds are deterministic, so duplicates
    /// only cost time), and some callers rely on every miss really
    /// building. The deployment service turns this on so a burst of
    /// duplicate requests pays for each bake exactly once.
    pub coalesce: bool,
    /// Bounded retry + circuit-breaker policy applied to the remote side of
    /// a [`StoreLocation::Shared`] store (see
    /// [`crate::backend::RetryPolicy`]). Purely local stores ignore it.
    pub retry: RetryPolicy,
}

impl StoreOptions {
    /// An in-memory store (no persistence).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A store persisted under one directory.
    pub fn dir(path: impl Into<PathBuf>) -> Self {
        Self { location: StoreLocation::Dir(path.into()), ..Self::default() }
    }

    /// A local directory layered over a shared remote directory.
    pub fn shared(local: impl Into<PathBuf>, remote: impl Into<PathBuf>) -> Self {
        Self {
            location: StoreLocation::Shared {
                local: local.into(),
                remote: Remote::Dir(remote.into()),
            },
            ..Self::default()
        }
    }

    /// A local directory layered over any remote backend implementation.
    /// The remote should expose a **flat** namespace ([`crate::MemBackend`],
    /// an object-store adapter): nested stores reach it through a name
    /// prefix ([`StoreOptions::subdir`] → `PrefixedBackend`), which a
    /// [`DirBackend`] remote rejects loudly — point directory remotes at
    /// [`StoreOptions::shared`] instead, which nests at the path level.
    pub fn shared_with(local: impl Into<PathBuf>, remote: Arc<dyn StoreBackend>) -> Self {
        Self {
            location: StoreLocation::Shared {
                local: local.into(),
                remote: Remote::Backend(remote),
            },
            ..Self::default()
        }
    }

    /// A store over any backend implementation, used directly — the seam
    /// for fault-injection wrappers and object-store adapters.
    pub fn backend(backend: Arc<dyn StoreBackend>) -> Self {
        Self { location: StoreLocation::Custom(backend), ..Self::default() }
    }

    /// Returns the options with the given retention limits.
    pub fn with_limits(mut self, limits: StoreLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Returns the options with the given remote retry policy (see
    /// [`StoreOptions::retry`]). Nested stores ([`StoreOptions::subdir`])
    /// inherit it.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns the options with read-only mode set as given.
    pub fn read_only(mut self, read_only: bool) -> Self {
        self.read_only = read_only;
        self
    }

    /// Returns the options with in-flight dedup set as given (see
    /// [`StoreOptions::coalesce`]). Nested stores ([`StoreOptions::subdir`])
    /// inherit the flag.
    pub fn with_coalescing(mut self, coalesce: bool) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// `true` when the options name a persistent layer.
    pub fn is_persistent(&self) -> bool {
        !matches!(self.location, StoreLocation::InMemory)
    }

    /// The primary local directory, when there is one (`Dir` or the local
    /// layer of `Shared`).
    pub fn primary_dir(&self) -> Option<&Path> {
        match &self.location {
            StoreLocation::InMemory => None,
            StoreLocation::Dir(path) => Some(path),
            StoreLocation::Shared { local, .. } => Some(local),
            StoreLocation::Custom(_) => None,
        }
    }

    /// Options for a store nested under `name` within this store root: the
    /// ground-truth store lives under `<root>/ground-truth` of the bake
    /// store's root, on every layer. Flat-namespace remotes nest via a name
    /// prefix ([`PrefixedBackend`]).
    pub fn subdir(&self, name: &str) -> StoreOptions {
        let location = match &self.location {
            StoreLocation::InMemory => StoreLocation::InMemory,
            StoreLocation::Dir(path) => StoreLocation::Dir(path.join(name)),
            StoreLocation::Shared { local, remote } => StoreLocation::Shared {
                local: local.join(name),
                remote: match remote {
                    Remote::Dir(path) => Remote::Dir(path.join(name)),
                    Remote::Backend(backend) => {
                        Remote::Backend(Arc::new(PrefixedBackend::new(Arc::clone(backend), name)))
                    }
                },
            },
            StoreLocation::Custom(backend) => {
                StoreLocation::Custom(Arc::new(PrefixedBackend::new(Arc::clone(backend), name)))
            }
        };
        StoreOptions {
            location,
            limits: self.limits,
            read_only: self.read_only,
            coalesce: self.coalesce,
            retry: self.retry,
        }
    }

    /// One-line human-readable description (for logs and reports).
    pub fn describe(&self) -> String {
        let base = match &self.location {
            StoreLocation::InMemory => "in-memory".to_string(),
            StoreLocation::Dir(path) => format!("dir {}", path.display()),
            StoreLocation::Shared { local, remote } => format!(
                "shared local={} remote={}",
                local.display(),
                match remote {
                    Remote::Dir(path) => format!("dir {}", path.display()),
                    Remote::Backend(backend) => backend.describe(),
                }
            ),
            StoreLocation::Custom(backend) => format!("custom [{}]", backend.describe()),
        };
        if self.read_only {
            format!("{base} (read-only)")
        } else {
            base
        }
    }

    /// Builds the backend this location names (`None` for in-memory).
    fn build_backend(&self, extension: &str) -> io::Result<Option<Arc<dyn StoreBackend>>> {
        match &self.location {
            StoreLocation::InMemory => Ok(None),
            StoreLocation::Dir(path) => Ok(Some(Arc::new(DirBackend::create(path, extension)?))),
            StoreLocation::Shared { local, remote } => {
                let local = DirBackend::create(local, extension)?;
                let remote: Arc<dyn StoreBackend> = match remote {
                    Remote::Dir(path) => Arc::new(DirBackend::create(path, extension)?),
                    Remote::Backend(backend) => Arc::clone(backend),
                };
                Ok(Some(Arc::new(SharedBackend::new(local, remote).with_retry(self.retry))))
            }
            StoreLocation::Custom(backend) => Ok(Some(Arc::clone(backend))),
        }
    }
}

impl From<&Path> for StoreOptions {
    fn from(path: &Path) -> Self {
        Self::dir(path)
    }
}

impl From<&str> for StoreOptions {
    fn from(path: &str) -> Self {
        Self::dir(path)
    }
}

impl From<PathBuf> for StoreOptions {
    fn from(path: PathBuf) -> Self {
        Self::dir(path)
    }
}

impl From<&PathBuf> for StoreOptions {
    fn from(path: &PathBuf) -> Self {
        Self::dir(path)
    }
}

impl From<&StoreOptions> for StoreOptions {
    fn from(options: &StoreOptions) -> Self {
        options.clone()
    }
}

// ---------------------------------------------------------------------------
// KeyedStore
// ---------------------------------------------------------------------------

/// Hit/miss/occupancy counters of a [`KeyedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups answered by a value built in this process.
    pub hits: usize,
    /// Lookups answered by an entry decoded from the persistent layer
    /// (cross-process reuse).
    pub disk_hits: usize,
    /// Lookups that had to build.
    pub misses: usize,
    /// Lookups that waited on another lookup's in-flight build or decode of
    /// the same key instead of duplicating it (always 0 unless the store
    /// was opened with [`StoreOptions::coalesce`]). A coalesced lookup also
    /// counts as a hit once the awaited value lands.
    pub coalesced: usize,
    /// Distinct values currently held in memory or indexed on the backend.
    pub entries: usize,
    /// Entries indexed from the backend when the store was opened (decoded
    /// lazily on first lookup; 0 for in-memory stores).
    pub indexed: usize,
    /// Logical remote operations attempted by a layered backend (each may
    /// span several tries under the [`crate::backend::RetryPolicy`]).
    pub remote_ops: usize,
    /// Remote operations that failed after exhausting their retries.
    pub remote_errors: usize,
    /// Individual retries performed on transient remote errors.
    pub retries: usize,
    /// Operations served local-only because the remote was degraded
    /// ([`crate::backend::RemoteHealth::Degraded`]).
    pub degraded_ops: usize,
    /// Local-layer read errors other than `NotFound` (reported, then hidden
    /// behind the remote fallback).
    pub local_errors: usize,
}

/// One stored value plus its persistence bookkeeping.
#[derive(Debug)]
enum Slot<V> {
    /// Decoded and ready; `dirty` entries are written by the next flush.
    Memory {
        value: Arc<V>,
        /// The entry came off the backend (hits on it are cross-process
        /// reuse).
        from_disk: bool,
        dirty: bool,
    },
    /// Indexed from the backend by its (canonical) file name; read and
    /// decoded on first lookup.
    Indexed,
    /// A coalescing store's in-flight marker: one lookup claimed the build
    /// (or decode) and every concurrent lookup for the key waits on the
    /// cell. Never present unless [`StoreOptions::coalesce`] is set.
    Pending(Arc<PendingCell>),
}

/// The wait cell behind [`Slot::Pending`]: flipped exactly once, when the
/// claiming lookup completes (or unwinds — see [`PendingGuard`]).
#[derive(Debug, Default)]
struct PendingCell {
    done: Mutex<bool>,
    cond: Condvar,
}

impl PendingCell {
    /// Blocks until the claimant completes. The claimant never waits on the
    /// store in return (its build runs outside the entry lock and pool
    /// dispatchers drive their own batches), so this wait cannot deadlock.
    fn wait(&self) {
        let mut done = lock_valid(&self.done);
        while !*done {
            done = self.cond.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn complete(&self) {
        *lock_valid(&self.done) = true;
        self.cond.notify_all();
    }
}

/// Unwind protection for a claimed [`Slot::Pending`]: if the build panics,
/// the pending marker is rolled back (to `Indexed` or absent) and the cell
/// completes, so exactly one waiter retries and becomes the new claimant
/// instead of every waiter hanging forever.
struct PendingGuard<'a, C: EntryCodec> {
    store: &'a KeyedStore<C>,
    key: C::Key,
    cell: Arc<PendingCell>,
    restore_indexed: bool,
    armed: bool,
}

impl<C: EntryCodec> PendingGuard<'_, C> {
    /// Normal completion: the claimant has replaced the pending slot.
    fn finish(&mut self) {
        self.armed = false;
        self.cell.complete();
    }
}

impl<C: EntryCodec> Drop for PendingGuard<'_, C> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut entries = lock_valid(&self.store.entries);
        if matches!(entries.get(&self.key), Some(Slot::Pending(_))) {
            if self.restore_indexed {
                entries.insert(self.key, Slot::Indexed);
            } else {
                entries.remove(&self.key);
            }
        }
        drop(entries);
        self.cell.complete();
    }
}

/// A thread-safe, content-addressed store of `Arc`-shared values with an
/// optional persistent layer — the machinery common to [`crate::BakeCache`]
/// and the ground-truth cache (see the module docs for what lives here vs
/// in the codec/backend).
///
/// Opening a persistent store only **indexes** the backend listing by the
/// codec's file names; an entry is read and decoded at its first lookup,
/// outside the entry lock. Lookups are corruption-tolerant: a damaged,
/// truncated, foreign-version or key-mismatched entry is discovered at
/// first lookup and costs exactly one rebuild (the next flush repairs it),
/// never an error.
pub struct KeyedStore<C: EntryCodec> {
    entries: Mutex<HashMap<C::Key, Slot<C::Value>>>,
    hits: AtomicUsize,
    disk_hits: AtomicUsize,
    misses: AtomicUsize,
    coalesced: AtomicUsize,
    /// Total wall-clock time spent in miss builds (the profiling layer
    /// reports it; exactly zero on fully warm runs).
    build_time: Mutex<Duration>,
    backend: Option<Arc<dyn StoreBackend>>,
    options: StoreOptions,
    indexed: usize,
}

impl<C: EntryCodec> Default for KeyedStore<C> {
    fn default() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            build_time: Mutex::new(Duration::ZERO),
            backend: None,
            options: StoreOptions::default(),
            indexed: 0,
        }
    }
}

impl<C: EntryCodec> std::fmt::Debug for KeyedStore<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedStore")
            .field("stats", &self.stats())
            .field("options", &self.options)
            .finish()
    }
}

impl<C: EntryCodec> KeyedStore<C> {
    /// An empty in-memory store (no persistence; flush is a no-op).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Opens a store as the options direct: sweeps orphaned temporaries and
    /// applies the retention limits (both skipped in read-only mode), then
    /// indexes the backend listing by the codec's canonical file names.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the backend cannot be created or
    /// listed (per-entry prune/sweep failures are skipped, never an error).
    pub fn open(options: impl Into<StoreOptions>) -> io::Result<Self> {
        let options = options.into();
        let Some(backend) = options.build_backend(C::EXTENSION)? else {
            return Ok(Self { options, ..Self::default() });
        };
        if !options.read_only {
            backend.sweep_tmp()?;
            prune_backend(&*backend, &options.limits)?;
        }
        let mut entries = HashMap::new();
        for meta in backend.list()? {
            // Only canonical names are indexed: the name must round-trip
            // through the codec so the entry can be re-read by key alone.
            if let Some(key) = C::parse_file_name(&meta.name) {
                if C::file_name(&key) == meta.name {
                    entries.insert(key, Slot::Indexed);
                }
            }
        }
        let indexed = entries.len();
        Ok(Self {
            entries: Mutex::new(entries),
            backend: Some(backend),
            options,
            indexed,
            ..Self::default()
        })
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// The backend holding the persistent layer (`None` when in-memory).
    pub fn backend(&self) -> Option<&Arc<dyn StoreBackend>> {
        self.backend.as_ref()
    }

    /// Current counters, including the backend's resilience counters.
    pub fn stats(&self) -> StoreStats {
        let resilience =
            self.backend.as_ref().map(|backend| backend.resilience()).unwrap_or_default();
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: lock_valid(&self.entries).len(),
            indexed: self.indexed,
            remote_ops: resilience.remote_ops,
            remote_errors: resilience.remote_errors,
            retries: resilience.retries,
            degraded_ops: resilience.degraded_ops,
            local_errors: resilience.local_errors,
        }
    }

    /// Total wall-clock time spent building missed values. Exactly zero
    /// when every lookup was a hit.
    pub fn build_time(&self) -> Duration {
        *lock_valid(&self.build_time)
    }

    /// `true` when the key is already built or indexed on the backend. For
    /// a not-yet-decoded entry this is optimistic: a damaged entry is only
    /// discovered (and transparently rebuilt) at lookup.
    pub fn contains(&self, key: &C::Key) -> bool {
        lock_valid(&self.entries).contains_key(key)
    }

    /// Returns the value for `key`, building and storing it on first
    /// request. An entry indexed from the persistent layer is read and
    /// decoded here, on its first lookup — outside the entry lock, so
    /// other workers keep hitting the store meanwhile.
    ///
    /// Concurrent misses on the same key may both build (the lock is not
    /// held across the build, deliberately — builds are long); the result
    /// is identical either way because building is deterministic, and only
    /// one copy is kept. With [`StoreOptions::coalesce`] set, the first
    /// miss claims the build through a pending entry and concurrent misses
    /// wait on it instead — one build, every caller shares the result, and
    /// the waiters count in [`StoreStats::coalesced`]. Either way the
    /// returned bits are identical; coalescing only changes who pays.
    pub fn get_or_build(
        &self,
        key: C::Key,
        ctx: C::Context<'_>,
        build: impl FnOnce() -> C::Value,
    ) -> Arc<C::Value> {
        let mut counted_coalesced = false;
        let (indexed, pending) = loop {
            let mut entries = lock_valid(&self.entries);
            let indexed = match entries.get(&key) {
                Some(Slot::Memory { value, from_disk, .. }) => {
                    let counter = if *from_disk { &self.disk_hits } else { &self.hits };
                    counter.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(value);
                }
                Some(Slot::Pending(cell)) => {
                    let cell = Arc::clone(cell);
                    drop(entries);
                    // Count each lookup at most once even if a claimant
                    // panic sends it around the loop again.
                    if !counted_coalesced {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        counted_coalesced = true;
                    }
                    cell.wait();
                    continue;
                }
                Some(Slot::Indexed) => true,
                None => false,
            };
            if !self.options.coalesce {
                break (indexed, None);
            }
            // Claim the decode/build: concurrent lookups wait on the cell.
            let cell = Arc::new(PendingCell::default());
            entries.insert(key, Slot::Pending(Arc::clone(&cell)));
            break (indexed, Some(cell));
        };
        let mut guard = pending.map(|cell| PendingGuard {
            store: self,
            key,
            cell,
            restore_indexed: indexed,
            armed: true,
        });

        // Decode (or build) outside the lock so other workers keep making
        // progress during long reads/builds.
        if indexed {
            let decoded = self
                .backend
                .as_ref()
                .and_then(|backend| backend.read(&C::file_name(&key)).ok())
                .and_then(|bytes| C::decode(&key, &bytes, ctx));
            if let Some(value) = decoded {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let shared = {
                    let mut entries = lock_valid(&self.entries);
                    match entries.get(&key) {
                        // A concurrent lookup decoded (or rebuilt) it first —
                        // keep that copy, the content is identical either way.
                        Some(Slot::Memory { value, .. }) => Arc::clone(value),
                        _ => {
                            entries.insert(
                                key,
                                Slot::Memory {
                                    value: Arc::clone(&value),
                                    from_disk: true,
                                    dirty: false,
                                },
                            );
                            value
                        }
                    }
                };
                if let Some(guard) = guard.as_mut() {
                    guard.finish();
                }
                return shared;
            }
            // Damaged or missing entry: fall through to a rebuild (the next
            // flush overwrites it).
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let value = Arc::new(build());
        *lock_valid(&self.build_time) += started.elapsed();
        let shared = {
            let mut entries = lock_valid(&self.entries);
            match entries.get(&key) {
                // A concurrent lookup finished first — keep its copy
                // (identical content) so every caller shares one allocation
                // and a clean disk-loaded entry is not re-marked dirty.
                Some(Slot::Memory { value, .. }) => Arc::clone(value),
                _ => {
                    entries.insert(
                        key,
                        Slot::Memory { value: Arc::clone(&value), from_disk: false, dirty: true },
                    );
                    value
                }
            }
        };
        if let Some(guard) = guard.as_mut() {
            guard.finish();
        }
        shared
    }

    /// Writes every value built since the last flush to the backend,
    /// returning how many entries were written (0 for in-memory or
    /// read-only stores). The dirty entries are snapshotted first and the
    /// writes happen **outside the entry lock**, so concurrent lookups and
    /// builds proceed during large flushes; each entry is written
    /// atomically ([`StoreBackend::write_atomic`]).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered. Every dirty entry is still
    /// attempted ([`KeyedStore::flush_report`] is the underlying pass):
    /// entries that flushed stay flushed and are not re-written next time,
    /// and the failed ones stay dirty for the next flush.
    pub fn flush(&self) -> io::Result<usize> {
        self.flush_report().into_result()
    }

    /// Like [`KeyedStore::flush`], but attempts **every** dirty entry and
    /// collects the per-entry failures instead of stopping at the first:
    /// one unwritable entry (a full disk, a vanished directory) cannot
    /// block its siblings from persisting. Successfully written entries are
    /// marked clean; failed ones stay dirty and are retried next flush.
    pub fn flush_report(&self) -> FlushReport {
        let mut report = FlushReport::default();
        let Some(backend) = &self.backend else { return report };
        if self.options.read_only {
            return report;
        }
        // Snapshot the dirty entries (an Arc clone each) under the lock…
        let dirty: Vec<(C::Key, Arc<C::Value>)> = {
            let entries = lock_valid(&self.entries);
            entries
                .iter()
                .filter_map(|(&key, slot)| match slot {
                    Slot::Memory { value, dirty: true, .. } => Some((key, Arc::clone(value))),
                    _ => None,
                })
                .collect()
        };
        // …then write without it. Values are immutable once built, so the
        // snapshot cannot go stale.
        let mut written = Vec::with_capacity(dirty.len());
        for (key, value) in dirty {
            let bytes = C::encode(&key, &value);
            let name = C::file_name(&key);
            match backend.write_atomic(&name, &bytes) {
                Ok(()) => written.push(key),
                Err(err) => report.failures.push((name, err)),
            }
        }
        let mut entries = lock_valid(&self.entries);
        for key in &written {
            if let Some(Slot::Memory { dirty, .. }) = entries.get_mut(key) {
                *dirty = false;
            }
        }
        report.written = written.len();
        report
    }
}

/// What a [`KeyedStore::flush_report`] pass did: how many entries landed
/// and which failed (entry file name + error). Failed entries stay dirty
/// and are retried by the next flush.
#[derive(Debug, Default)]
pub struct FlushReport {
    /// Entries written (and marked clean).
    pub written: usize,
    /// Entries whose write failed, with the failing entry's file name.
    pub failures: Vec<(String, io::Error)>,
}

impl FlushReport {
    /// `true` when every dirty entry was written.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Collapses the report into the classic `flush` result: the written
    /// count, or the first per-entry error.
    ///
    /// # Errors
    ///
    /// The first recorded per-entry failure, when there is one.
    pub fn into_result(self) -> io::Result<usize> {
        match self.failures.into_iter().next() {
            Some((_, err)) => Err(err),
            None => Ok(self.written),
        }
    }
}

impl std::fmt::Display for FlushReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} entries written", self.written)?;
        if !self.failures.is_empty() {
            write!(f, ", {} failed", self.failures.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use std::panic::AssertUnwindSafe;

    /// FNV-1a over a byte slice.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// A minimal framed codec for store tests: magic, key echo, payload,
    /// trailing checksum.
    struct TestCodec;

    impl EntryCodec for TestCodec {
        type Key = u64;
        type Value = Vec<u8>;
        type Context<'a> = ();
        const EXTENSION: &'static str = "nftest";

        fn file_name(key: &u64) -> String {
            format!("{key:016x}.nftest")
        }

        fn parse_file_name(name: &str) -> Option<u64> {
            let stem = name.strip_suffix(".nftest")?;
            u64::from_str_radix(stem, 16).ok()
        }

        fn encode(key: &u64, value: &Vec<u8>) -> Vec<u8> {
            let mut out = Vec::with_capacity(value.len() + 20);
            out.extend_from_slice(b"NFTS");
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(value);
            let sum = fnv1a(&out);
            out.extend_from_slice(&sum.to_le_bytes());
            out
        }

        fn decode(key: &u64, bytes: &[u8], (): ()) -> Option<Arc<Vec<u8>>> {
            if bytes.len() < 20 || &bytes[..4] != b"NFTS" {
                return None;
            }
            let (body, tail) = bytes.split_at(bytes.len() - 8);
            if fnv1a(body) != u64::from_le_bytes(tail.try_into().ok()?) {
                return None;
            }
            if u64::from_le_bytes(body[4..12].try_into().ok()?) != *key {
                return None;
            }
            Some(Arc::new(body[12..].to_vec()))
        }
    }

    type TestStore = KeyedStore<TestCodec>;

    /// A unique, self-cleaning temporary directory.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            Self(std::env::temp_dir().join(format!(
                "nerflex-store-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            )))
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn payload(tag: u8) -> Vec<u8> {
        vec![tag; 64]
    }

    #[test]
    fn in_memory_store_counts_hits_and_misses() {
        let store = TestStore::in_memory();
        let a = store.get_or_build(1, (), || payload(1));
        let b = store.get_or_build(1, (), || payload(1));
        let _ = store.get_or_build(2, (), || payload(2));
        assert!(Arc::ptr_eq(&a, &b), "hits share one allocation");
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries, stats.indexed), (1, 2, 2, 0));
        assert!(store.build_time() >= Duration::ZERO);
        assert_eq!(store.flush().expect("noop"), 0);
        assert!(store.contains(&1) && !store.contains(&3));
    }

    #[test]
    fn coalescing_store_builds_each_key_once_under_contention() {
        let store = Arc::new(
            TestStore::open(StoreOptions::in_memory().with_coalescing(true)).expect("open"),
        );
        let builds = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (store, builds, barrier) =
                    (Arc::clone(&store), Arc::clone(&builds), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    store.get_or_build(9, (), || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        // Hold the build long enough that the other lookups
                        // really land while it is pending.
                        std::thread::sleep(Duration::from_millis(30));
                        payload(9)
                    })
                })
            })
            .collect();
        let values: Vec<_> = handles.into_iter().map(|h| h.join().expect("join")).collect();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "one in-flight build for 8 lookups");
        for v in &values {
            assert!(Arc::ptr_eq(v, &values[0]), "every caller shares the one copy");
        }
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7, "every waiter lands as a hit once the build completes");
        assert!(
            (1..=7).contains(&stats.coalesced),
            "contended lookups must report coalescing, got {}",
            stats.coalesced
        );
    }

    #[test]
    fn coalescing_claimant_panic_hands_the_build_to_a_waiter() {
        let store = Arc::new(
            TestStore::open(StoreOptions::in_memory().with_coalescing(true)).expect("open"),
        );
        let attempts = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (store, attempts, barrier) =
                    (Arc::clone(&store), Arc::clone(&attempts), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    std::panic::catch_unwind(AssertUnwindSafe(|| {
                        store.get_or_build(4, (), || {
                            // The first claimant dies; a waiter must take
                            // over instead of hanging on the pending cell.
                            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                                std::thread::sleep(Duration::from_millis(20));
                                panic!("claimant exploded");
                            }
                            payload(4)
                        })
                    }))
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("join")).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, 3, "exactly the panicking lookup fails");
        assert!(attempts.load(Ordering::Relaxed) >= 2, "a waiter re-claimed the build");
        let recovered = store.get_or_build(4, (), || panic!("value must be resident"));
        assert_eq!(*recovered, payload(4));
    }

    #[test]
    fn non_coalescing_store_reports_zero_coalesced() {
        let store = TestStore::in_memory();
        let _ = store.get_or_build(1, (), || payload(1));
        let _ = store.get_or_build(1, (), || payload(1));
        assert_eq!(store.stats().coalesced, 0);
        assert!(!store.options().coalesce);
        assert!(StoreOptions::dir("/x").with_coalescing(true).subdir("gt").coalesce);
    }

    #[test]
    fn flush_and_reopen_turn_misses_into_disk_hits() {
        let tmp = TempDir::new("roundtrip");
        let store = TestStore::open(&tmp.0).expect("open");
        let first = store.get_or_build(7, (), || payload(7));
        assert_eq!(store.flush().expect("flush"), 1);
        assert_eq!(store.flush().expect("clean flush"), 0, "clean entries are not re-written");

        let reopened = TestStore::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().indexed, 1);
        let second = reopened.get_or_build(7, (), || panic!("must not rebuild"));
        assert_eq!(*first, *second);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (0, 1, 0));
        assert_eq!(reopened.build_time(), Duration::ZERO);
    }

    #[test]
    fn damaged_entries_rebuild_and_repair() {
        let tmp = TempDir::new("damage");
        let store = TestStore::open(&tmp.0).expect("open");
        let _ = store.get_or_build(3, (), || payload(3));
        store.flush().expect("flush");
        let path = tmp.0.join(TestCodec::file_name(&3));
        std::fs::write(&path, b"damaged").expect("overwrite");

        let reopened = TestStore::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().indexed, 1, "damage is invisible to the lazy index");
        let rebuilt = reopened.get_or_build(3, (), || payload(3));
        assert_eq!(*rebuilt, payload(3));
        assert_eq!(reopened.stats().misses, 1, "damaged entry costs one rebuild");
        assert_eq!(reopened.flush().expect("repair"), 1);
        let repaired = TestStore::open(&tmp.0).expect("open repaired");
        let _ = repaired.get_or_build(3, (), || panic!("repaired entry must decode"));
        assert_eq!(repaired.stats().disk_hits, 1);
    }

    #[test]
    fn non_canonical_names_are_not_indexed() {
        let tmp = TempDir::new("canonical");
        std::fs::create_dir_all(&tmp.0).expect("mkdir");
        // Parses as key 0xaa, but the canonical name is zero-padded: the
        // store must not index a name it cannot re-derive from the key.
        std::fs::write(tmp.0.join("aa.nftest"), b"whatever").expect("write");
        std::fs::write(tmp.0.join("garbage.nftest"), b"whatever").expect("write");
        let store = TestStore::open(&tmp.0).expect("open");
        assert_eq!(store.stats().indexed, 0);
    }

    #[test]
    fn read_only_stores_never_write_prune_or_sweep() {
        let tmp = TempDir::new("read-only");
        let writer = TestStore::open(&tmp.0).expect("open");
        let _ = writer.get_or_build(1, (), || payload(1));
        writer.flush().expect("flush");
        let orphan = tmp.0.join("0000000000000001.nftest.tmp-9-9");
        std::fs::write(&orphan, b"orphan").expect("orphan");

        // Read-only + limits that would prune everything: nothing may change
        // on disk, lookups still work, new builds stay in memory.
        let options = StoreOptions::dir(&tmp.0)
            .with_limits(StoreLimits::default().with_max_age(Duration::ZERO))
            .read_only(true);
        let reader = TestStore::open(options).expect("open read-only");
        assert_eq!(reader.stats().indexed, 1, "read-only open must not prune");
        assert!(orphan.exists(), "read-only open must not sweep temporaries");
        let _ = reader.get_or_build(1, (), || panic!("persisted entry must serve"));
        let _ = reader.get_or_build(2, (), || payload(2));
        assert_eq!(reader.flush().expect("flush"), 0, "read-only flush writes nothing");
        assert!(
            !tmp.0.join(TestCodec::file_name(&2)).exists(),
            "read-only stores must not persist new entries"
        );
    }

    #[test]
    fn shared_backend_gives_a_cold_local_layer_zero_misses() {
        // The cross-machine scenario: machine A populates the shared
        // remote; machine B, with a cold local dir, must re-build nothing
        // and read identical bytes.
        let tmp_a = TempDir::new("machine-a");
        let tmp_b = TempDir::new("machine-b");
        let remote: Arc<MemBackend> = Arc::new(MemBackend::new());

        let a =
            TestStore::open(StoreOptions::shared_with(&tmp_a.0, remote.clone())).expect("open A");
        let built = a.get_or_build(42, (), || payload(9));
        a.flush().expect("flush A");
        assert_eq!(remote.len(), 1, "write-through populates the remote");

        let b =
            TestStore::open(StoreOptions::shared_with(&tmp_b.0, remote.clone())).expect("open B");
        assert_eq!(b.stats().indexed, 1, "cold local layer indexes the warm remote");
        let loaded = b.get_or_build(42, (), || panic!("warm remote must serve"));
        assert_eq!(*built, *loaded, "remote round-trip is byte-identical");
        let stats = b.stats();
        assert_eq!((stats.disk_hits, stats.misses), (1, 0));
        // The read populated B's local layer: a third open of the same
        // local dir with a *dead* remote still serves the entry.
        let c = TestStore::open(&tmp_b.0).expect("open local only");
        let again = c.get_or_build(42, (), || panic!("local layer must be populated"));
        assert_eq!(*built, *again);
    }

    #[test]
    fn shared_dir_remote_behaves_like_a_second_machine() {
        let local_a = TempDir::new("dir-local-a");
        let local_b = TempDir::new("dir-local-b");
        let remote = TempDir::new("dir-remote");

        let a = TestStore::open(StoreOptions::shared(&local_a.0, &remote.0)).expect("open A");
        let _ = a.get_or_build(5, (), || payload(5));
        a.flush().expect("flush");
        assert!(remote.0.join(TestCodec::file_name(&5)).exists(), "remote dir populated");

        let b = TestStore::open(StoreOptions::shared(&local_b.0, &remote.0)).expect("open B");
        let _ = b.get_or_build(5, (), || panic!("warm remote must serve"));
        assert_eq!(b.stats().misses, 0);
    }

    #[test]
    fn subdir_nests_every_location_kind() {
        let opts = StoreOptions::dir("/x/root").subdir("ground-truth");
        assert_eq!(opts.primary_dir(), Some(Path::new("/x/root/ground-truth")));
        let opts = StoreOptions::shared("/x/local", "/x/remote").subdir("ground-truth");
        assert_eq!(opts.primary_dir(), Some(Path::new("/x/local/ground-truth")));
        match &opts.location {
            StoreLocation::Shared { remote: Remote::Dir(path), .. } => {
                assert_eq!(path, Path::new("/x/remote/ground-truth"));
            }
            other => panic!("unexpected location {other:?}"),
        }
        assert!(!StoreOptions::in_memory().subdir("x").is_persistent());

        // Backend remotes nest via a name prefix: two sibling stores over
        // one flat remote namespace stay disjoint.
        let shared: Arc<MemBackend> = Arc::new(MemBackend::new());
        let tmp_a = TempDir::new("subdir-a");
        let root = StoreOptions::shared_with(&tmp_a.0, shared.clone());
        let store = TestStore::open(root.subdir("ground-truth")).expect("open");
        let _ = store.get_or_build(1, (), || payload(1));
        store.flush().expect("flush");
        let names: Vec<String> = shared.list().expect("list").into_iter().map(|e| e.name).collect();
        assert_eq!(names, [format!("ground-truth/{}", TestCodec::file_name(&1))]);
    }

    // -- prune_backend edge cases through the new API ----------------------

    #[test]
    fn unbounded_limits_prune_nothing() {
        let tmp = TempDir::new("prune-noop");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        backend.write_atomic("0000000000000001.nftest", &[0u8; 100]).expect("write");
        let report = prune_backend(&backend, &StoreLimits::default()).expect("prune");
        assert_eq!(report, PruneReport::default());
        assert!(tmp.0.join("0000000000000001.nftest").exists());
        assert!(StoreLimits::default().is_unbounded());
    }

    #[test]
    fn age_sweep_removes_expired_entries_but_never_tmp_or_foreign_files() {
        let tmp = TempDir::new("prune-age");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        backend.write_atomic("0000000000000001.nftest", &[0u8; 64]).expect("write");
        std::fs::write(tmp.0.join("keep.txt"), b"foreign file").expect("foreign");
        std::fs::write(tmp.0.join("0000000000000002.nftest.tmp-1-2"), b"in flight").expect("tmp");
        let limits = StoreLimits::default().with_max_age(Duration::ZERO);
        let report = prune_backend(&backend, &limits).expect("prune");
        assert_eq!((report.removed_files, report.removed_bytes), (1, 64));
        assert!(!tmp.0.join("0000000000000001.nftest").exists());
        assert!(tmp.0.join("keep.txt").exists(), "foreign files untouched");
        assert!(tmp.0.join("0000000000000002.nftest.tmp-1-2").exists(), "tmp untouched");
    }

    #[test]
    fn age_sweep_and_size_budget_interact_in_order() {
        // The age sweep runs first; the size budget then applies to the
        // survivors only — so an expired old entry never "uses up" the
        // budget eviction that should fall on the oldest survivor.
        let tmp = TempDir::new("prune-interact");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        for key in 1u64..=3 {
            backend.write_atomic(&TestCodec::file_name(&key), &[0u8; 100]).expect("write");
            std::thread::sleep(Duration::from_millis(15));
        }
        // Backdate entry 1 far enough that only it exceeds max_age.
        let old = std::time::SystemTime::now() - Duration::from_secs(3600);
        let f = std::fs::File::options()
            .write(true)
            .open(tmp.0.join(TestCodec::file_name(&1)))
            .expect("open");
        f.set_modified(old).expect("backdate");

        let limits =
            StoreLimits::default().with_max_age(Duration::from_secs(60)).with_max_bytes(150);
        let report = prune_backend(&backend, &limits).expect("prune");
        // Age removed #1 (100 B); the budget then evicted #2, the oldest
        // survivor, to bring 200 B under 150 B.
        assert_eq!(report.removed_files, 2);
        assert_eq!(report.removed_bytes, 200);
        assert_eq!(report.retained_bytes, 100);
        assert!(!tmp.0.join(TestCodec::file_name(&1)).exists());
        assert!(!tmp.0.join(TestCodec::file_name(&2)).exists());
        assert!(tmp.0.join(TestCodec::file_name(&3)).exists());
    }

    #[test]
    fn size_budget_evicts_oldest_first() {
        let tmp = TempDir::new("prune-budget");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        for key in 1u64..=3 {
            backend.write_atomic(&TestCodec::file_name(&key), &[0u8; 100]).expect("write");
            std::thread::sleep(Duration::from_millis(15));
        }
        let limits = StoreLimits::default().with_max_bytes(250);
        let report = prune_backend(&backend, &limits).expect("prune");
        assert_eq!(report.removed_files, 1, "one eviction brings 300 bytes under 250");
        assert_eq!(report.retained_bytes, 200);
        assert!(!tmp.0.join(TestCodec::file_name(&1)).exists(), "oldest goes first");
        assert!(tmp.0.join(TestCodec::file_name(&2)).exists());
        assert!(tmp.0.join(TestCodec::file_name(&3)).exists());
    }

    #[test]
    fn missing_directory_prunes_nothing() {
        let tmp = TempDir::new("prune-missing");
        let backend = DirBackend::create(&tmp.0, "nftest").expect("create");
        std::fs::remove_dir_all(&tmp.0).expect("remove");
        let limits = StoreLimits::default().with_max_bytes(1);
        let report = prune_backend(&backend, &limits).expect("missing dir is not an error");
        assert_eq!(report, PruneReport::default());
    }

    #[test]
    fn pruning_under_an_open_handle_degrades_to_rebuilds() {
        // Another process pruning the directory a live store has indexed
        // must cost that store exactly a rebuild per evicted entry — never
        // an error — and its next flush repairs the file.
        let tmp = TempDir::new("prune-live");
        let live = TestStore::open(&tmp.0).expect("open live handle");
        let built = live.get_or_build(11, (), || payload(11));
        live.flush().expect("flush");
        // Entry decoded lazily: drop the in-memory copy by reopening.
        let live = TestStore::open(&tmp.0).expect("reopen live handle");
        assert_eq!(live.stats().indexed, 1);

        // A second handle opens with limits that evict everything.
        let pruner = TestStore::open(
            StoreOptions::dir(&tmp.0)
                .with_limits(StoreLimits::default().with_max_age(Duration::ZERO)),
        )
        .expect("open pruning handle");
        assert_eq!(pruner.stats().indexed, 0, "expired entry must not index");
        assert!(!tmp.0.join(TestCodec::file_name(&11)).exists());

        // The live handle's stale index entry falls through to a rebuild.
        let rebuilt = live.get_or_build(11, (), || payload(11));
        assert_eq!(*built, *rebuilt);
        let stats = live.stats();
        assert_eq!((stats.disk_hits, stats.misses), (0, 1), "stale index costs one rebuild");
        assert_eq!(live.flush().expect("repair"), 1, "next flush repairs the pruned file");
        assert!(tmp.0.join(TestCodec::file_name(&11)).exists());
    }

    #[test]
    fn a_poisoned_lock_recovers_instead_of_cascading() {
        // A thread dying while holding the entries lock poisons it; the
        // guarded map is still valid (slots are inserted atomically), so
        // later lookups must recover and keep serving.
        let store = Arc::new(TestStore::in_memory());
        let _ = store.get_or_build(1, (), || payload(1));
        let poisoner = Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.entries.lock().expect("not yet poisoned");
            panic!("die holding the entries lock");
        })
        .join();
        assert!(store.entries.is_poisoned(), "precondition: the lock is poisoned");
        let served = store.get_or_build(1, (), || panic!("value must be resident"));
        assert_eq!(*served, payload(1));
        let _ = store.get_or_build(2, (), || payload(2));
        assert_eq!(store.stats().entries, 2);
        assert_eq!(store.flush().expect("flush still works"), 0);
    }

    #[test]
    fn flush_report_attempts_every_entry_and_collects_failures() {
        use crate::fault::{FaultOp, FaultPlan, FaultyBackend};
        // Writes fail persistently from the second one on (a disk that
        // filled up mid-flush): the report must keep going and collect
        // every failure, not abort at the first.
        let backend: Arc<dyn StoreBackend> = Arc::new(FaultyBackend::new(
            Arc::new(MemBackend::new()),
            FaultPlan::none().persistent_from(
                FaultOp::WriteAtomic,
                1,
                io::ErrorKind::PermissionDenied,
            ),
        ));
        let store = TestStore::open(StoreOptions::backend(backend)).expect("open");
        for key in 1u64..=3 {
            let _ = store.get_or_build(key, (), || payload(key as u8));
        }
        let report = store.flush_report();
        assert_eq!(report.written, 1, "the one allowed write landed");
        assert_eq!(report.failures.len(), 2, "every failure collected, not just the first");
        assert!(report.failures.iter().all(|(_, e)| e.kind() == io::ErrorKind::PermissionDenied));
        assert!(!report.is_clean());
        assert!(report.to_string().contains("2 failed"));

        // The written entry went clean; the failed ones stay dirty and are
        // retried (and fail again under this plan).
        let again = store.flush_report();
        assert_eq!((again.written, again.failures.len()), (0, 2));
        assert!(store.flush().is_err(), "flush() surfaces the first per-entry failure");
    }

    #[test]
    fn custom_backend_location_round_trips_and_nests() {
        let mem: Arc<MemBackend> = Arc::new(MemBackend::new());
        let opts = StoreOptions::backend(mem.clone());
        assert!(opts.is_persistent());
        assert_eq!(opts.primary_dir(), None);
        assert!(opts.describe().contains("custom"));

        let store = TestStore::open(&opts).expect("open");
        let built = store.get_or_build(6, (), || payload(6));
        store.flush().expect("flush");
        let reopened = TestStore::open(&opts).expect("reopen over the same backend");
        assert_eq!(reopened.stats().indexed, 1);
        let loaded = reopened.get_or_build(6, (), || panic!("must decode"));
        assert_eq!(*built, *loaded);

        // Nesting goes through a name prefix, like backend remotes.
        let nested = TestStore::open(opts.subdir("ground-truth")).expect("open nested");
        let _ = nested.get_or_build(1, (), || payload(1));
        nested.flush().expect("flush nested");
        assert!(mem
            .list()
            .expect("list")
            .iter()
            .any(|e| e.name == format!("ground-truth/{}", TestCodec::file_name(&1))));
    }

    #[test]
    fn retry_policy_rides_through_subdir_into_the_shared_backend() {
        use crate::backend::RemoteHealth;
        use crate::fault::{FaultMode, FaultOp, FaultPlan, FaultyBackend};
        let tmp = TempDir::new("retry-subdir");
        // The remote times out once on the first read; the store's retry
        // policy (propagated through subdir) must absorb it.
        let mem = Arc::new(MemBackend::new());
        let faulty = Arc::new(FaultyBackend::new(
            mem,
            FaultPlan::none().fail_nth(
                FaultOp::Read,
                0,
                FaultMode::Transient(io::ErrorKind::TimedOut),
            ),
        ));
        let root = StoreOptions::shared_with(&tmp.0, faulty)
            .with_retry(RetryPolicy::new(3, Duration::ZERO));
        let nested = root.subdir("ground-truth");
        assert_eq!(nested.retry, root.retry, "subdir inherits the retry policy");

        let store = TestStore::open(nested).expect("open");
        let _ = store.get_or_build(2, (), || payload(2));
        store.flush().expect("flush");
        // Force a remote read by reopening with a fresh (cold) local dir.
        let tmp_b = TempDir::new("retry-subdir-b");
        drop(store);
        let faulty_b = {
            let mem_b = Arc::new(MemBackend::new());
            // Re-seed a remote carrying the entry, faulting its first read.
            let seeder = TestStore::open(StoreOptions::backend(mem_b.clone())).expect("seed");
            let _ = seeder.get_or_build(2, (), || payload(2));
            seeder.flush().expect("seed flush");
            Arc::new(FaultyBackend::new(
                mem_b,
                FaultPlan::none().fail_nth(
                    FaultOp::Read,
                    0,
                    FaultMode::Transient(io::ErrorKind::TimedOut),
                ),
            ))
        };
        let cold = TestStore::open(
            StoreOptions::shared_with(&tmp_b.0, faulty_b)
                .with_retry(RetryPolicy::new(3, Duration::ZERO)),
        )
        .expect("open cold");
        let served = cold.get_or_build(2, (), || panic!("retried remote read must serve"));
        assert_eq!(*served, payload(2));
        let stats = cold.stats();
        assert_eq!(stats.retries, 1, "the transient timeout cost exactly one retry");
        assert_eq!(stats.remote_errors, 0);
        let backend = cold.backend().expect("backend");
        assert_eq!(backend.resilience().health(), RemoteHealth::Healthy);
    }

    #[test]
    fn degraded_reprobe_cadence_is_per_handle_not_shared_across_clones() {
        use crate::backend::{RemoteHealth, REPROBE_INTERVAL};
        use std::sync::atomic::AtomicBool;

        /// A remote that can be switched dead/alive: dead refuses every
        /// operation, alive delegates to an in-memory backend.
        #[derive(Debug)]
        struct FlipBackend {
            inner: MemBackend,
            alive: AtomicBool,
        }

        impl FlipBackend {
            fn gate(&self) -> io::Result<()> {
                if self.alive.load(Ordering::Relaxed) {
                    Ok(())
                } else {
                    Err(io::Error::new(io::ErrorKind::ConnectionRefused, "remote down"))
                }
            }
        }

        impl StoreBackend for FlipBackend {
            fn list(&self) -> io::Result<Vec<EntryMeta>> {
                self.gate()?;
                self.inner.list()
            }
            fn read(&self, name: &str) -> io::Result<Vec<u8>> {
                self.gate()?;
                self.inner.read(name)
            }
            fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
                self.gate()?;
                self.inner.write_atomic(name, bytes)
            }
            fn remove(&self, name: &str) -> io::Result<()> {
                self.gate()?;
                self.inner.remove(name)
            }
            fn sweep_tmp(&self) -> io::Result<()> {
                self.gate()?;
                self.inner.sweep_tmp()
            }
            fn describe(&self) -> String {
                "flip".to_string()
            }
        }

        let tmp = TempDir::new("per-handle-probe");
        let flip =
            Arc::new(FlipBackend { inner: MemBackend::new(), alive: AtomicBool::new(false) });
        flip.inner.write_atomic("warm.nftest", b"behind the outage").expect("seed");
        let original =
            SharedBackend::new(DirBackend::create(&tmp.0, "nftest").expect("local"), flip.clone())
                .with_retry(RetryPolicy::new(1, Duration::ZERO));

        // Trip the breaker on the original handle, then bring the remote
        // back: recovery now only needs a probe to fire.
        assert!(original.read("warm.nftest").is_err());
        assert_eq!(original.remote_health(), RemoteHealth::Degraded);
        flip.alive.store(true, Ordering::Relaxed);

        // A busy clone burns one op short of its own probe window. The
        // breaker is shared, so both handles see Degraded throughout.
        let busy = original.clone();
        for _ in 0..REPROBE_INTERVAL - 1 {
            assert!(busy.read("warm.nftest").is_err());
        }
        assert_eq!(busy.remote_health(), RemoteHealth::Degraded);

        // With the historic *shared* tick, the clone's traffic advanced the
        // original's cadence: its very next op would draw the probe slot.
        // Per-handle, the original probes on its own 16th op — no earlier.
        for i in 0..REPROBE_INTERVAL - 1 {
            assert!(original.read("warm.nftest").is_err(), "op {i} must not probe early");
            assert_eq!(original.remote_health(), RemoteHealth::Degraded);
        }
        assert_eq!(
            original.read("warm.nftest").expect("16th op probes and recovers"),
            b"behind the outage"
        );
        assert_eq!(original.remote_health(), RemoteHealth::Healthy);
    }

    #[test]
    fn store_options_describe_and_froms() {
        assert_eq!(StoreOptions::in_memory().describe(), "in-memory");
        assert!(StoreOptions::dir("/a/b").describe().contains("/a/b"));
        assert!(StoreOptions::shared("/l", "/r").describe().contains("remote=dir /r"));
        assert!(StoreOptions::dir("/a").read_only(true).describe().contains("read-only"));
        let from_path: StoreOptions = Path::new("/x").into();
        assert_eq!(from_path.primary_dir(), Some(Path::new("/x")));
        let from_buf: StoreOptions = PathBuf::from("/y").into();
        assert_eq!(from_buf.primary_dir(), Some(Path::new("/y")));
    }
}
