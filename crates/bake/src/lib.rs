//! # nerflex-bake
//!
//! MobileNeRF-style baking simulator: converts a procedural object into the
//! multi-modal representation that mesh-assisted NeRF systems ship to the
//! device — a quad mesh extracted from a voxel grid of granularity `g`, a
//! texture atlas allocating `p × p` texels per quad, and a tiny deferred
//! shading MLP.
//!
//! The paper bakes a trained NeRF; we bake the analytic scene (DESIGN.md
//! documents the substitution). What matters for NeRFlex is preserved
//! exactly: the baked-data size and the rendered quality are controlled by
//! the same two knobs `(g, p)` with the same growth laws — size grows with
//! the number of surface quads (∝ voxel granularity) times the texels per
//! quad (`p²`), and quality saturates as both increase.
//!
//! ```
//! use nerflex_bake::{bake_object, BakeConfig};
//! use nerflex_scene::object::CanonicalObject;
//!
//! let model = CanonicalObject::Hotdog.build();
//! let asset = bake_object(&model, BakeConfig::new(24, 5));
//! assert!(asset.mesh.quad_count() > 0);
//! assert!(asset.size_bytes() > 0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asset;
pub mod atlas;
pub mod backend;
pub mod cache;
pub mod config;
pub mod disk;
pub mod fault;
pub mod mesh;
pub mod mlp;
pub mod pool;
pub mod splat;
pub mod store;
pub mod voxel;

pub use asset::{bake_object, bake_placed, bake_scene, BakedAsset, Placement};
pub use atlas::TextureAtlas;
pub use backend::{
    DirBackend, EntryMeta, MemBackend, RemoteHealth, ResilienceStats, RetryPolicy, SharedBackend,
    StoreBackend,
};
pub use cache::{model_fingerprint, BakeCache, CacheStats};
pub use config::{BakeConfig, BakeFamily};
pub use disk::CACHE_FORMAT_VERSION;
pub use fault::{
    FaultMode, FaultOp, FaultPlan, FaultSchedule, FaultStats, FaultyBackend, StoreFaultPanic,
};
pub use mesh::QuadMesh;
pub use mlp::TinyMlp;
pub use splat::{Splat, SplatCloud, SPLAT_BYTES};
pub use store::{
    EntryCodec, FlushReport, KeyedStore, PruneReport, StoreLimits, StoreLocation, StoreOptions,
    StoreStats,
};
pub use voxel::VoxelGrid;
