//! Device specifications and memory/loading behaviour.

use serde::{Deserialize, Serialize};

/// The per-frame rendering workload implied by a set of baked assets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Workload {
    /// Total multi-modal NeRF representation data size in megabytes.
    pub data_size_mb: f64,
    /// Total number of quad faces across all baked assets.
    pub total_quads: usize,
}

/// Why a workload failed to load on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadError {
    /// The rendering engine refused to load the data (hard memory ceiling).
    OutOfMemory {
        /// Workload size that was attempted, in MB.
        requested_mb: f64,
        /// The device's hard ceiling in MB.
        limit_mb: f64,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::OutOfMemory { requested_mb, limit_mb } => write!(
                f,
                "rendering engine failed to load {requested_mb:.0} MB of NeRF data (device ceiling {limit_mb:.0} MB)"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// An analytic model of one mobile device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name ("iPhone 13", "Pixel 4").
    pub name: String,
    /// Physical memory in GB (informational; the rendering ceiling below is
    /// what actually gates loading, as observed in the paper).
    pub memory_gb: f64,
    /// Hard ceiling: the rendering engine fails to load data above this size.
    pub hard_memory_limit_mb: f64,
    /// The budget NeRFlex should target on this device (the paper sets
    /// 240 MB for the iPhone and 150 MB for the Pixel).
    pub recommended_budget_mb: f64,
    /// Frame rate when the workload fits comfortably.
    pub base_fps: f64,
    /// FPS lost per MB of data beyond the soft threshold.
    pub fps_drop_per_mb_over_soft: f64,
    /// Soft threshold (MB) beyond which the frame rate starts degrading.
    pub soft_memory_limit_mb: f64,
    /// FPS lost per 100k quads of rasterisation workload.
    pub fps_drop_per_100k_quads: f64,
    /// Lower bound on the frame rate while something still renders.
    pub min_fps: f64,
}

impl DeviceSpec {
    /// The iPhone 13 model used in the paper (A15, 4 GB RAM, Safari/WebGL).
    ///
    /// Calibration: loading fails above 240 MB; NeRFlex-sized workloads
    /// (≈240 MB) sustain ≈35 FPS.
    pub fn iphone_13() -> Self {
        Self {
            name: "iPhone 13".to_string(),
            memory_gb: 4.0,
            hard_memory_limit_mb: 240.0,
            recommended_budget_mb: 240.0,
            base_fps: 38.0,
            fps_drop_per_mb_over_soft: 0.3,
            soft_memory_limit_mb: 240.0,
            fps_drop_per_100k_quads: 1.2,
            min_fps: 2.0,
        }
    }

    /// The Pixel 4 model used in the paper (6 GB RAM, Chrome/WebGL).
    ///
    /// Calibration: data can load up to ≈400 MB but the average FPS drops by
    /// roughly 15 beyond 150 MB; NeRFlex-sized workloads (≈150 MB) sustain
    /// ≈25 FPS, about twice the Single-NeRF baseline.
    pub fn pixel_4() -> Self {
        Self {
            name: "Pixel 4".to_string(),
            memory_gb: 6.0,
            hard_memory_limit_mb: 400.0,
            recommended_budget_mb: 150.0,
            base_fps: 27.0,
            fps_drop_per_mb_over_soft: 0.12,
            soft_memory_limit_mb: 150.0,
            fps_drop_per_100k_quads: 2.0,
            min_fps: 2.0,
        }
    }

    /// Both evaluation devices, in the order the paper reports them.
    pub fn evaluation_devices() -> Vec<DeviceSpec> {
        vec![Self::iphone_13(), Self::pixel_4()]
    }

    /// Calibration margin between a derived recommended budget and the
    /// derived hard memory ceiling, as a fraction of the ceiling. The
    /// selector works on *predicted* asset sizes (fitted size models), so a
    /// budget equal to the hard ceiling would let any under-prediction push
    /// the *actual* baked workload over the ceiling and fail the load — the
    /// brittleness the Stage-4 clamp fix exposed (clamping after selection
    /// is not an option: it breaks budget correspondence). The margin
    /// absorbs prediction error **in the budget derivation**, before
    /// selection, so the selector's decisions still correspond exactly to
    /// what gets baked. Quick-scale size models are fitted from a handful
    /// of probes; their relative error is comfortably inside 10%.
    pub const DERIVED_BUDGET_MARGIN: f64 = 0.10;

    /// Reduced-scale evaluation devices whose memory ceilings are re-derived
    /// from the *measured* Single-NeRF and Block-NeRF baseline sizes (MB),
    /// preserving the paper's loading story at small asset sizes: Single
    /// exceeds the iPhone-like ceiling but loads (with a ~15 FPS penalty) on
    /// the Pixel-like device, Block exceeds both, and NeRFlex fits both
    /// budgets. Used by the quick-mode experiments, the examples and the
    /// integration tests — one derivation, so recalibrations apply
    /// everywhere.
    ///
    /// The recommended budgets sit [`Self::DERIVED_BUDGET_MARGIN`] below the
    /// hard ceilings, so a selection that fills its budget with slightly
    /// under-predicted sizes still loads.
    pub fn derived_evaluation_pair(single_mb: f64, block_mb: f64) -> (DeviceSpec, DeviceSpec) {
        let mut iphone = Self::iphone_13();
        iphone.hard_memory_limit_mb = single_mb * 0.9;
        iphone.recommended_budget_mb =
            iphone.hard_memory_limit_mb * (1.0 - Self::DERIVED_BUDGET_MARGIN);
        iphone.soft_memory_limit_mb = iphone.recommended_budget_mb;
        iphone.fps_drop_per_100k_quads = 0.0;
        let mut pixel = Self::pixel_4();
        pixel.hard_memory_limit_mb = (single_mb * 1.5).min(block_mb * 0.9).max(single_mb * 1.05);
        // The Pixel-like budget is derived from the Single size (not its own
        // ceiling) to keep the FPS calibration below; it already sits far
        // below the hard ceiling, but the margin is enforced all the same so
        // a recalibration cannot silently reintroduce the brittleness.
        pixel.recommended_budget_mb =
            (single_mb * 0.6).min(pixel.hard_memory_limit_mb * (1.0 - Self::DERIVED_BUDGET_MARGIN));
        pixel.soft_memory_limit_mb = pixel.recommended_budget_mb;
        // Calibrate the drop so the Single representation loses roughly 15
        // FPS on the weaker device.
        pixel.fps_drop_per_mb_over_soft = 15.0 / (single_mb - pixel.soft_memory_limit_mb).max(0.5);
        pixel.fps_drop_per_100k_quads = 0.0;
        (iphone, pixel)
    }

    /// Attempts to load a workload: fails when it exceeds the hard ceiling
    /// (the paper's "local WebGL rendering engine fails to load the data").
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::OutOfMemory`] when the workload exceeds the hard
    /// memory ceiling.
    pub fn try_load(&self, workload: &Workload) -> Result<(), LoadError> {
        if workload.data_size_mb > self.hard_memory_limit_mb {
            Err(LoadError::OutOfMemory {
                requested_mb: workload.data_size_mb,
                limit_mb: self.hard_memory_limit_mb,
            })
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} GB RAM, budget {:.0} MB)",
            self.name, self.memory_gb, self.recommended_budget_mb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_operating_points() {
        let iphone = DeviceSpec::iphone_13();
        assert_eq!(iphone.hard_memory_limit_mb, 240.0);
        assert_eq!(iphone.recommended_budget_mb, 240.0);
        let pixel = DeviceSpec::pixel_4();
        assert_eq!(pixel.recommended_budget_mb, 150.0);
        assert!(pixel.memory_gb > iphone.memory_gb);
        assert!(pixel.base_fps < iphone.base_fps, "Pixel is the lower-compute device");
    }

    #[test]
    fn loading_respects_the_hard_ceiling() {
        let iphone = DeviceSpec::iphone_13();
        assert!(iphone.try_load(&Workload { data_size_mb: 239.0, total_quads: 0 }).is_ok());
        let err = iphone.try_load(&Workload { data_size_mb: 513.0, total_quads: 0 }).unwrap_err();
        assert!(err.to_string().contains("failed to load"));
        // Pixel tolerates larger loads (more RAM) even though it renders slowly.
        let pixel = DeviceSpec::pixel_4();
        assert!(pixel.try_load(&Workload { data_size_mb: 300.0, total_quads: 0 }).is_ok());
        assert!(pixel.try_load(&Workload { data_size_mb: 800.0, total_quads: 0 }).is_err());
    }

    #[test]
    fn evaluation_devices_contains_both() {
        let devices = DeviceSpec::evaluation_devices();
        assert_eq!(devices.len(), 2);
        assert_eq!(devices[0].name, "iPhone 13");
        assert_eq!(devices[1].name, "Pixel 4");
    }

    #[test]
    fn derived_budgets_keep_the_calibration_margin_below_the_ceiling() {
        // Regression for the quick-scale brittleness: a derived budget equal
        // to the hard ceiling lets any size-prediction error overflow the
        // load. Every derived budget must sit at least DERIVED_BUDGET_MARGIN
        // below its ceiling, across a range of baseline sizes.
        for (single, block) in [(10.0, 40.0), (3.5, 9.0), (120.0, 500.0), (0.8, 2.0)] {
            let (iphone, pixel) = DeviceSpec::derived_evaluation_pair(single, block);
            for device in [&iphone, &pixel] {
                let headroom = DeviceSpec::DERIVED_BUDGET_MARGIN * device.hard_memory_limit_mb;
                assert!(
                    device.recommended_budget_mb <= device.hard_memory_limit_mb - headroom + 1e-9,
                    "{} budget {:.2} within {headroom:.2} MB of ceiling {:.2} (single={single})",
                    device.name,
                    device.recommended_budget_mb,
                    device.hard_memory_limit_mb,
                );
                // A selection that fills the budget with sizes under-predicted
                // by up to the margin still loads.
                let overrun =
                    device.recommended_budget_mb * (1.0 + DeviceSpec::DERIVED_BUDGET_MARGIN);
                assert!(
                    device.try_load(&Workload { data_size_mb: overrun, total_quads: 0 }).is_ok(),
                    "{}: {overrun:.2} MB (budget + margin) must still load",
                    device.name
                );
            }
        }
    }
}
