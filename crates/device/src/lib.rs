//! # nerflex-device
//!
//! Analytic mobile-device models: memory ceilings, loading behaviour and
//! frame-rate simulation for the two commercial devices the paper evaluates
//! on (iPhone 13 and Pixel 4).
//!
//! The paper measures these properties empirically on real hardware; this
//! crate encodes the measured operating points as a calibrated model (see
//! DESIGN.md, substitution table): the iPhone's WebGL engine fails to load
//! multi-modal data above ~240 MB, the Pixel loses roughly 15 FPS once data
//! exceeds ~150 MB, NeRFlex sustains ≈35 FPS on the iPhone and ≈25 FPS on
//! the Pixel, and Block-NeRF's 400–800 MB bundles fail to render on either
//! device.
//!
//! ```
//! use nerflex_device::{DeviceSpec, Workload};
//!
//! let iphone = DeviceSpec::iphone_13();
//! let ok = Workload { data_size_mb: 200.0, total_quads: 150_000 };
//! assert!(iphone.try_load(&ok).is_ok());
//! let too_big = Workload { data_size_mb: 300.0, total_quads: 150_000 };
//! assert!(iphone.try_load(&too_big).is_err());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fps;
pub mod session;
pub mod spec;

pub use fps::FpsModel;
pub use session::{simulate_session, SessionReport};
pub use spec::{DeviceSpec, LoadError, Workload};
