//! End-to-end rendering-session simulation (load → render N frames).

use crate::fps::FpsModel;
use crate::spec::{DeviceSpec, LoadError, Workload};
use serde::{Deserialize, Serialize};

/// The outcome of simulating a viewing session on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Device name.
    pub device: String,
    /// Whether the multi-modal data loaded at all.
    pub loaded: bool,
    /// Reason for a load failure, when any.
    pub load_error: Option<String>,
    /// Average FPS over the whole session (0 when loading failed).
    pub average_fps: f64,
    /// Average FPS after the warm-up/loading phase.
    pub steady_fps: f64,
    /// Per-frame FPS trace (empty when loading failed).
    pub trace: Vec<f64>,
    /// Fraction of frames below 15 FPS — a stutter measure ("noticeable
    /// stuttering" in the paper's words).
    pub stutter_ratio: f64,
}

impl SessionReport {
    /// `true` when the session rendered and kept a smooth frame rate
    /// (average at or above 24 FPS and less than 10 % stuttered frames).
    pub fn is_smooth(&self) -> bool {
        self.loaded && self.average_fps >= 24.0 && self.stutter_ratio < 0.10
    }
}

/// Simulates rendering `frames` frames of the workload on the device.
///
/// When loading fails (hard memory ceiling) the report carries an FPS of 0
/// and an empty trace — matching the paper's "resulting in an FPS of 0".
pub fn simulate_session(
    spec: &DeviceSpec,
    workload: &Workload,
    frames: usize,
    seed: u64,
) -> SessionReport {
    match spec.try_load(workload) {
        Err(err @ LoadError::OutOfMemory { .. }) => SessionReport {
            device: spec.name.clone(),
            loaded: false,
            load_error: Some(err.to_string()),
            average_fps: 0.0,
            steady_fps: 0.0,
            trace: Vec::new(),
            stutter_ratio: 1.0,
        },
        Ok(()) => {
            let model = FpsModel::new(spec.clone());
            let trace = model.frame_trace(workload, frames, seed);
            let average_fps = FpsModel::average_of_trace(&trace);
            let warmup = model.warmup_frames(workload).min(frames);
            let steady_fps = if warmup < frames {
                FpsModel::average_of_trace(&trace[warmup..])
            } else {
                average_fps
            };
            let stutter_ratio = if trace.is_empty() {
                0.0
            } else {
                trace.iter().filter(|&&f| f < 15.0).count() as f64 / trace.len() as f64
            };
            SessionReport {
                device: spec.name.clone(),
                loaded: true,
                load_error: None,
                average_fps,
                steady_fps,
                trace,
                stutter_ratio,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nerflex_sized_workload_is_smooth_on_both_devices() {
        let iphone = simulate_session(
            &DeviceSpec::iphone_13(),
            &Workload { data_size_mb: 238.0, total_quads: 220_000 },
            2000,
            1,
        );
        assert!(iphone.loaded);
        assert!(iphone.is_smooth(), "iPhone report: avg {}", iphone.average_fps);
        let pixel = simulate_session(
            &DeviceSpec::pixel_4(),
            &Workload { data_size_mb: 148.0, total_quads: 160_000 },
            2000,
            1,
        );
        assert!(pixel.loaded);
        assert!(pixel.steady_fps > 22.0, "Pixel steady FPS {}", pixel.steady_fps);
    }

    #[test]
    fn block_nerf_sized_workload_fails_on_both_devices() {
        // Block-NeRF scenes exceed 400 MB and "cannot complete rendering on
        // either device".
        let workload = Workload { data_size_mb: 513.0, total_quads: 900_000 };
        for spec in DeviceSpec::evaluation_devices() {
            let report = simulate_session(&spec, &workload, 500, 2);
            assert!(!report.loaded, "{} should fail to load", spec.name);
            assert_eq!(report.average_fps, 0.0);
            assert!(report.trace.is_empty());
            assert!(!report.is_smooth());
            assert!(report.load_error.as_deref().unwrap_or("").contains("failed to load"));
        }
    }

    #[test]
    fn single_nerf_fails_on_iphone_but_runs_on_pixel() {
        // Single-NeRF data (>250 MB) exceeds the iPhone ceiling but loads on
        // the Pixel at a degraded frame rate (Fig. 6).
        let workload = Workload { data_size_mb: 262.0, total_quads: 300_000 };
        let iphone = simulate_session(&DeviceSpec::iphone_13(), &workload, 500, 3);
        assert!(!iphone.loaded);
        let pixel = simulate_session(&DeviceSpec::pixel_4(), &workload, 500, 3);
        assert!(pixel.loaded);
        assert!(pixel.steady_fps < 16.0, "degraded Pixel FPS, got {}", pixel.steady_fps);
    }

    #[test]
    fn steady_fps_exceeds_average_when_warmup_is_slow() {
        let report = simulate_session(
            &DeviceSpec::iphone_13(),
            &Workload { data_size_mb: 200.0, total_quads: 100_000 },
            1000,
            9,
        );
        assert!(report.steady_fps >= report.average_fps);
        assert!(report.stutter_ratio < 0.3);
    }
}
