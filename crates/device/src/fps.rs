//! Frame-rate modelling.
//!
//! The paper reports FPS traces over 2000 frames (Fig. 6): initial
//! fluctuations caused by loading the multi-modal NeRF files, then a steady
//! rate whose level depends on the device and on the workload size. The
//! model below reproduces those dynamics: a warm-up phase whose length grows
//! with the data size, multiplicative dips while files stream in, and a
//! steady state with small jitter around the calibrated average.

use crate::spec::{DeviceSpec, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic FPS model for a device.
#[derive(Debug, Clone)]
pub struct FpsModel {
    spec: DeviceSpec,
}

impl FpsModel {
    /// Creates the model for a device.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec }
    }

    /// The underlying device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Steady-state average FPS for a workload that successfully loaded.
    pub fn steady_state_fps(&self, workload: &Workload) -> f64 {
        let spec = &self.spec;
        let size_penalty = (workload.data_size_mb - spec.soft_memory_limit_mb).max(0.0)
            * spec.fps_drop_per_mb_over_soft;
        let quad_penalty = workload.total_quads as f64 / 100_000.0 * spec.fps_drop_per_100k_quads;
        (spec.base_fps - size_penalty - quad_penalty).max(spec.min_fps)
    }

    /// Number of warm-up frames (loading phase) for a workload: larger files
    /// take longer to stream in and parse.
    pub fn warmup_frames(&self, workload: &Workload) -> usize {
        (40.0 + workload.data_size_mb * 0.6) as usize
    }

    /// Simulates a per-frame FPS trace of `frames` frames.
    ///
    /// The trace is deterministic for a given `seed`.
    pub fn frame_trace(&self, workload: &Workload, frames: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let steady = self.steady_state_fps(workload);
        let warmup = self.warmup_frames(workload);
        (0..frames)
            .map(|i| {
                if i < warmup {
                    // Loading phase: FPS oscillates between stalls and bursts.
                    let progress = i as f64 / warmup.max(1) as f64;
                    let stall = rng.gen_range(0.0..1.0) < 0.3;
                    let level = if stall {
                        steady * rng.gen_range(0.05..0.4)
                    } else {
                        steady * (0.4 + 0.6 * progress) * rng.gen_range(0.8..1.15)
                    };
                    level.clamp(0.0, self.spec.base_fps * 1.2)
                } else {
                    // Steady phase: small jitter around the calibrated average.
                    (steady * rng.gen_range(0.93..1.07))
                        .clamp(self.spec.min_fps * 0.5, self.spec.base_fps * 1.2)
                }
            })
            .collect()
    }

    /// Mean of a frame trace (convenience).
    pub fn average_of_trace(trace: &[f64]) -> f64 {
        if trace.is_empty() {
            return 0.0;
        }
        trace.iter().sum::<f64>() / trace.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nerflex_iphone_workload() -> Workload {
        Workload { data_size_mb: 238.0, total_quads: 220_000 }
    }

    fn nerflex_pixel_workload() -> Workload {
        Workload { data_size_mb: 148.0, total_quads: 160_000 }
    }

    #[test]
    fn calibration_matches_paper_averages() {
        // NeRFlex: ≈35 FPS on iPhone, ≈25 FPS on Pixel.
        let iphone = FpsModel::new(DeviceSpec::iphone_13());
        let fps_i = iphone.steady_state_fps(&nerflex_iphone_workload());
        assert!((fps_i - 35.0).abs() < 4.0, "iPhone steady FPS {fps_i}");
        let pixel = FpsModel::new(DeviceSpec::pixel_4());
        let fps_p = pixel.steady_state_fps(&nerflex_pixel_workload());
        assert!((fps_p - 25.0).abs() < 3.0, "Pixel steady FPS {fps_p}");
    }

    #[test]
    fn single_nerf_on_pixel_is_roughly_half_of_nerflex() {
        // The paper: "our system improves the FPS by 2 times compared to the
        // single NeRF" on the Pixel (Single-NeRF data is ≈250 MB+).
        let pixel = FpsModel::new(DeviceSpec::pixel_4());
        let nerflex = pixel.steady_state_fps(&nerflex_pixel_workload());
        let single =
            pixel.steady_state_fps(&Workload { data_size_mb: 260.0, total_quads: 260_000 });
        let ratio = nerflex / single;
        assert!(ratio > 1.6 && ratio < 3.0, "NeRFlex/Single FPS ratio {ratio}");
    }

    #[test]
    fn exceeding_soft_limit_costs_about_fifteen_fps_on_pixel() {
        let pixel = FpsModel::new(DeviceSpec::pixel_4());
        let within =
            pixel.steady_state_fps(&Workload { data_size_mb: 150.0, total_quads: 100_000 });
        let beyond =
            pixel.steady_state_fps(&Workload { data_size_mb: 265.0, total_quads: 100_000 });
        let drop = within - beyond;
        assert!((drop - 15.0).abs() < 3.0, "FPS drop past the soft limit: {drop}");
    }

    #[test]
    fn trace_has_warmup_then_steady_phase() {
        let model = FpsModel::new(DeviceSpec::iphone_13());
        let workload = nerflex_iphone_workload();
        let trace = model.frame_trace(&workload, 2000, 7);
        assert_eq!(trace.len(), 2000);
        let warmup = model.warmup_frames(&workload);
        let steady = model.steady_state_fps(&workload);
        // Warm-up phase is more volatile than the steady phase.
        let variance = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(variance(&trace[..warmup]) > variance(&trace[warmup..]));
        // Steady-phase mean is close to the calibrated steady-state value.
        let steady_mean = FpsModel::average_of_trace(&trace[warmup..]);
        assert!((steady_mean - steady).abs() < 2.0, "steady mean {steady_mean} vs {steady}");
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let model = FpsModel::new(DeviceSpec::pixel_4());
        let w = nerflex_pixel_workload();
        assert_eq!(model.frame_trace(&w, 200, 3), model.frame_trace(&w, 200, 3));
        assert_ne!(model.frame_trace(&w, 200, 3), model.frame_trace(&w, 200, 4));
    }

    #[test]
    fn fps_never_drops_below_minimum_while_rendering() {
        let model = FpsModel::new(DeviceSpec::pixel_4());
        let heavy = Workload { data_size_mb: 395.0, total_quads: 900_000 };
        assert!(model.steady_state_fps(&heavy) >= model.spec().min_fps);
    }
}
