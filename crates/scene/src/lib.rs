//! # nerflex-scene
//!
//! Procedural scene substrate for the NeRFlex reproduction.
//!
//! The paper evaluates on synthetic 360° objects (lego, ship, chair, ficus,
//! hotdog from the original NeRF dataset) and LLFF real-world scenes. Neither
//! dataset is available offline, so this crate provides *procedural
//! signed-distance-field analogues* with the same relative geometric
//! complexity ordering and controllable appearance detail, plus exact
//! ground-truth renderings obtained by sphere-traced ray marching
//! (see DESIGN.md, substitution table).
//!
//! Main entry points:
//!
//! * [`object::CanonicalObject`] — the five canonical objects and their
//!   procedural generators.
//! * [`scene::Scene`] — a set of placed objects with instance IDs.
//! * [`camera_path::orbit_path`] — the rotating camera trajectories used by
//!   the evaluation ("objects rotate at a fixed speed, 7.5 s per 360°").
//! * [`dataset::Dataset`] — train/test view sets with ground-truth images and
//!   per-pixel instance maps.
//!
//! ```
//! use nerflex_scene::object::CanonicalObject;
//! use nerflex_scene::scene::Scene;
//!
//! let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Lego], 42);
//! assert_eq!(scene.objects().len(), 2);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod appearance;
pub mod camera_path;
pub mod dataset;
pub mod object;
pub mod raymarch;
pub mod scene;
pub mod sdf;

pub use camera_path::CameraPose;
pub use dataset::{Dataset, View};
pub use object::CanonicalObject;
pub use scene::{PlacedObject, Scene};
pub use sdf::Sdf;
