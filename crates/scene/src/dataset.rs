//! Training / test datasets: posed ground-truth views with instance maps.
//!
//! A [`Dataset`] is the stand-in for the paper's "training images" (the
//! synthetic 360° image sets and LLFF captures): a set of posed views, each
//! with an exact ground-truth rendering and a per-pixel instance map that the
//! segmentation module uses as its (perfect) object detector.

use crate::camera_path::{training_orbits, CameraPose};
use crate::raymarch::render_view;
use crate::scene::Scene;
use nerflex_image::{Image, Mask};

/// One posed view: camera, ground-truth image and per-pixel instance map.
#[derive(Debug, Clone)]
pub struct View {
    /// Camera pose of this view.
    pub pose: CameraPose,
    /// Ground-truth rendering.
    pub image: Image,
    /// Which object (if any) covers each pixel, row-major.
    pub instances: Vec<Option<usize>>,
}

impl View {
    /// Renders a view of `scene` from `pose` at the given resolution.
    pub fn render(scene: &Scene, pose: CameraPose, width: usize, height: usize) -> Self {
        let (image, instances) = render_view(scene, &pose, width, height);
        Self { pose, image, instances }
    }

    /// The binary mask of pixels covered by object `id`.
    pub fn object_mask(&self, id: usize) -> Mask {
        let w = self.image.width();
        let h = self.image.height();
        Mask::from_fn(w, h, |x, y| self.instances[y * w + x] == Some(id))
    }

    /// Number of pixels covered by object `id`.
    pub fn object_pixel_count(&self, id: usize) -> usize {
        self.instances.iter().filter(|&&i| i == Some(id)).count()
    }

    /// IDs of all objects visible in this view.
    pub fn visible_objects(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.instances.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// A set of training and test views of a single scene.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Views used for "training" (profiling and segmentation).
    pub train: Vec<View>,
    /// Held-out views used for quality evaluation.
    pub test: Vec<View>,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
}

impl Dataset {
    /// Generates a dataset of `train_views` training and `test_views` test
    /// views at `width × height`, on orbits derived from the scene bounds.
    ///
    /// # Panics
    ///
    /// Panics if the scene is empty or a view count is zero.
    pub fn generate(
        scene: &Scene,
        train_views: usize,
        test_views: usize,
        width: usize,
        height: usize,
    ) -> Self {
        assert!(!scene.is_empty(), "cannot build a dataset of an empty scene");
        assert!(train_views > 0 && test_views > 0, "view counts must be non-zero");
        let bounds = scene.bounding_box();
        let train_poses = training_orbits(&bounds, train_views);
        // Test poses use a distinct elevation and a slightly larger radius so
        // they are never identical to a training view.
        let radius = (bounds.diagonal() * 0.93).max(1.05);
        let test_poses: Vec<CameraPose> =
            crate::camera_path::orbit_path(bounds.center(), radius, 0.55, test_views);
        let train =
            train_poses.into_iter().map(|p| View::render(scene, p, width, height)).collect();
        let test = test_poses.into_iter().map(|p| View::render(scene, p, width, height)).collect();
        Self { train, test, width, height }
    }

    /// Total number of views.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// `true` when the dataset holds no views.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::CanonicalObject;

    #[test]
    fn dataset_generation_produces_requested_views() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 9);
        let ds = Dataset::generate(&scene, 4, 2, 40, 40);
        assert_eq!(ds.train.len(), 4);
        assert_eq!(ds.test.len(), 2);
        assert_eq!(ds.len(), 6);
        assert!(!ds.is_empty());
        for v in ds.train.iter().chain(&ds.test) {
            assert_eq!(v.image.width(), 40);
            assert_eq!(v.image.height(), 40);
            assert_eq!(v.instances.len(), 40 * 40);
        }
    }

    #[test]
    fn every_object_is_visible_somewhere_in_training_set() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Lego], 2);
        let ds = Dataset::generate(&scene, 6, 1, 56, 56);
        let mut seen = std::collections::HashSet::new();
        for v in &ds.train {
            seen.extend(v.visible_objects());
        }
        assert!(seen.contains(&0) && seen.contains(&1), "visible: {seen:?}");
    }

    #[test]
    fn object_mask_matches_pixel_count() {
        let scene = Scene::with_objects(&[CanonicalObject::Chair], 1);
        let ds = Dataset::generate(&scene, 1, 1, 48, 48);
        let view = &ds.train[0];
        let mask = view.object_mask(0);
        assert_eq!(mask.count(), view.object_pixel_count(0));
        assert!(mask.count() > 0);
    }

    #[test]
    fn test_poses_differ_from_train_poses() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog], 7);
        let ds = Dataset::generate(&scene, 3, 3, 32, 32);
        for test_view in &ds.test {
            for train_view in &ds.train {
                assert!(test_view.pose.eye.distance(train_view.pose.eye) > 1e-3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty scene")]
    fn empty_scene_panics() {
        let _ = Dataset::generate(&Scene::new(), 2, 1, 16, 16);
    }
}
