//! Scene composition: placed objects with instance identifiers.

use crate::appearance::Appearance;
use crate::object::{random_object, CanonicalObject, ObjectModel};
use crate::sdf::Sdf;
use nerflex_math::simd::{LANES, LANES8};
use nerflex_math::{Aabb, F32x4, F32x8, Mask4, Mask8, Vec3, Vec3x4, Vec3x8};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One object placed in a scene: a model plus a rigid placement and an
/// instance identifier used for per-pixel instance maps.
#[derive(Debug, Clone)]
pub struct PlacedObject {
    /// Instance identifier (index into [`Scene::objects`]).
    pub id: usize,
    /// Object geometry and appearance in its local frame.
    pub model: ObjectModel,
    /// Translation applied to the local frame.
    pub translation: Vec3,
    /// Uniform scale applied to the local frame.
    pub scale: f32,
    /// Rotation around the Y axis (radians), applied before translation.
    pub rotation_y: f32,
}

impl PlacedObject {
    /// The object's SDF expressed in world coordinates.
    pub fn world_sdf(&self) -> Sdf {
        self.model
            .sdf
            .clone()
            .rotated_y(self.rotation_y)
            .scaled(self.scale)
            .translated(self.translation)
    }

    /// Signed distance from a world-space point to this object's surface.
    pub fn distance(&self, p_world: Vec3) -> f32 {
        // Inline inverse transform instead of rebuilding the SDF tree per query.
        let local = self.to_local(p_world);
        self.model.sdf.distance(local) * self.scale
    }

    /// Transforms a world-space point into the object's local frame.
    pub fn to_local(&self, p_world: Vec3) -> Vec3 {
        let p = (p_world - self.translation) / self.scale;
        let (s, c) = self.rotation_y.sin_cos();
        Vec3::new(c * p.x - s * p.z, p.y, s * p.x + c * p.z)
    }

    /// Four-lane [`PlacedObject::distance`]: each lane is bit-identical to
    /// the scalar call on that lane's point (see [`Sdf::distance_x4`]).
    pub fn distance_x4(&self, p_world: Vec3x4) -> F32x4 {
        let p = (p_world - self.translation) / self.scale;
        let (s, c) = self.rotation_y.sin_cos();
        let local = Vec3x4::new(p.x * c - p.z * s, p.y, p.x * s + p.z * c);
        self.model.sdf.distance_x4(local) * self.scale
    }

    /// World-space axis-aligned bounding box (conservative).
    pub fn world_bounding_box(&self) -> Aabb {
        self.world_sdf().bounding_box()
    }

    /// Surface albedo for a world-space point and normal.
    pub fn albedo(&self, p_world: Vec3, n_world: Vec3) -> nerflex_image::Color {
        let local = self.to_local(p_world);
        // Normals are rotation-invariant under uniform scale; rotate into local frame.
        let (s, c) = self.rotation_y.sin_cos();
        let n_local =
            Vec3::new(c * n_world.x - s * n_world.z, n_world.y, s * n_world.x + c * n_world.z);
        self.model.appearance.albedo(local, n_local)
    }

    /// The object's appearance.
    pub fn appearance(&self) -> &Appearance {
        &self.model.appearance
    }
}

/// A scene: a list of placed objects over a neutral ground plane.
#[derive(Debug, Clone, Default)]
pub struct Scene {
    objects: Vec<PlacedObject>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a scene from the given canonical objects, laid out on a circle
    /// so they do not overlap. `seed` controls the (deterministic) jitter of
    /// placements and orientations.
    pub fn with_objects(objects: &[CanonicalObject], seed: u64) -> Self {
        let models: Vec<ObjectModel> = objects.iter().map(|o| o.build()).collect();
        Self::from_models(models, seed)
    }

    /// Builds a scene of `count` randomised filler objects (the paper's
    /// "randomly selected" Scene 3 flavour when canonical objects are not
    /// explicitly requested).
    pub fn random(count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let models: Vec<ObjectModel> = (0..count).map(|i| random_object(&mut rng, i)).collect();
        Self::from_models(models, seed ^ 0x9e37_79b9)
    }

    /// Builds a scene from explicit models, arranging them on a circle.
    pub fn from_models(models: Vec<ObjectModel>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = models.len();
        let radius = if n <= 1 { 0.0 } else { 0.9 + 0.28 * n as f32 };
        let objects = models
            .into_iter()
            .enumerate()
            .map(|(i, model)| {
                let angle = i as f32 / n.max(1) as f32 * std::f32::consts::TAU;
                let jitter = rng.gen_range(-0.1..0.1f32);
                PlacedObject {
                    id: i,
                    model,
                    translation: Vec3::new(
                        (radius + jitter) * angle.cos(),
                        0.0,
                        (radius + jitter) * angle.sin(),
                    ),
                    scale: 1.0,
                    rotation_y: rng.gen_range(0.0..std::f32::consts::TAU),
                }
            })
            .collect();
        Self { objects }
    }

    /// Adds a placed object and returns its instance id.
    pub fn push(
        &mut self,
        model: ObjectModel,
        translation: Vec3,
        scale: f32,
        rotation_y: f32,
    ) -> usize {
        let id = self.objects.len();
        self.objects.push(PlacedObject { id, model, translation, scale, rotation_y });
        id
    }

    /// The placed objects.
    pub fn objects(&self) -> &[PlacedObject] {
        &self.objects
    }

    /// The placed object with the given instance id.
    pub fn object(&self, id: usize) -> Option<&PlacedObject> {
        self.objects.get(id)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the scene has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Bounding box of all objects.
    pub fn bounding_box(&self) -> Aabb {
        self.objects
            .iter()
            .map(PlacedObject::world_bounding_box)
            .fold(Aabb::empty(), |acc, b| acc.union(&b))
    }

    /// Distance from `p` to the nearest object surface, and that object's id.
    ///
    /// Returns `(f32::INFINITY, None)` for an empty scene.
    pub fn distance(&self, p: Vec3) -> (f32, Option<usize>) {
        let mut best = f32::INFINITY;
        let mut best_id = None;
        for obj in &self.objects {
            let d = obj.distance(p);
            if d < best {
                best = d;
                best_id = Some(obj.id);
            }
        }
        (best, best_id)
    }

    /// Distance from `p` to the nearest surface, skipping objects whose
    /// bounding box is already farther than `cutoff` (a cheap lower bound
    /// used by the ray marcher to avoid evaluating every SDF tree).
    pub fn distance_bounded(&self, p: Vec3, boxes: &[Aabb], cutoff: f32) -> (f32, Option<usize>) {
        debug_assert_eq!(boxes.len(), self.objects.len());
        let mut best = cutoff;
        let mut best_id = None;
        for (obj, bb) in self.objects.iter().zip(boxes) {
            // Lower bound on the object's distance: distance to its AABB.
            let clamped = p.max(bb.min).min(bb.max);
            let lower = (p - clamped).length();
            if lower > best {
                continue;
            }
            let d = obj.distance(p);
            if d < best {
                best = d;
                best_id = Some(obj.id);
            }
        }
        (best, best_id)
    }

    /// Four-lane [`Scene::distance_bounded`] with an infinite cutoff: the
    /// nearest-surface distance and object id for a packet of four points.
    ///
    /// Lanes where `active` is clear are never evaluated or updated (they
    /// return `f32::INFINITY` / `None`). The AABB lower-bound rejection runs
    /// on lanes: an object is skipped entirely when every active lane's
    /// bound already exceeds its running best, and the per-lane update uses
    /// exactly the scalar comparisons — so each active lane's result is
    /// bit-identical to `self.distance_bounded(p.lane(i), boxes,
    /// f32::INFINITY)`.
    pub fn distance_bounded_x4(
        &self,
        p: Vec3x4,
        boxes: &[Aabb],
        active: Mask4,
    ) -> (F32x4, [Option<usize>; LANES]) {
        debug_assert_eq!(boxes.len(), self.objects.len());
        let mut best = F32x4::splat(f32::INFINITY);
        let mut best_id = [None; LANES];
        for (obj, bb) in self.objects.iter().zip(boxes) {
            // Lower bound on the object's distance: distance to its AABB.
            let clamped = p.max_vec(bb.min).min_vec(bb.max);
            let lower = (p - clamped).length();
            let consider = lower.le(best).and(active);
            if !consider.any() {
                continue;
            }
            let d = obj.distance_x4(p);
            let update = d.lt(best).and(consider);
            best = d.select(best, update);
            for (lane, id) in best_id.iter_mut().enumerate() {
                if update.lane(lane) {
                    *id = Some(obj.id);
                }
            }
        }
        (best, best_id)
    }

    /// Eight-lane [`Scene::distance_bounded_x4`]: the wide wavefront runs
    /// the four-lane SDF substrate on the packet's two halves. Lane
    /// independence makes the split irrelevant to the result — each active
    /// lane is bit-identical to `self.distance_bounded(p.lane(i), boxes,
    /// f32::INFINITY)` exactly as in the four-wide path.
    pub fn distance_bounded_x8(
        &self,
        p: Vec3x8,
        boxes: &[Aabb],
        active: Mask8,
    ) -> (F32x8, [Option<usize>; LANES8]) {
        let (p_lo, p_hi) = p.halves();
        let (m_lo, m_hi) = active.halves();
        let (d_lo, ids_lo) = self.distance_bounded_x4(p_lo, boxes, m_lo);
        let (d_hi, ids_hi) = self.distance_bounded_x4(p_hi, boxes, m_hi);
        let ids = std::array::from_fn(|i| if i < LANES { ids_lo[i] } else { ids_hi[i - LANES] });
        (F32x8::from_halves(d_lo, d_hi), ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_layout_separates_objects() {
        let scene = Scene::with_objects(&CanonicalObject::ALL, 1);
        assert_eq!(scene.len(), 5);
        // Pairwise translation distances exceed a minimum separation.
        for i in 0..5 {
            for j in (i + 1)..5 {
                let d = scene.objects()[i].translation.distance(scene.objects()[j].translation);
                assert!(d > 1.0, "objects {i} and {j} too close: {d}");
            }
        }
    }

    #[test]
    fn distance_identifies_nearest_object() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 3);
        let near_first = scene.objects()[0].translation + Vec3::new(0.0, 0.2, 0.0);
        let (_, id) = scene.distance(near_first);
        assert_eq!(id, Some(0));
        let near_second = scene.objects()[1].translation + Vec3::new(0.0, 0.4, 0.0);
        let (_, id) = scene.distance(near_second);
        assert_eq!(id, Some(1));
    }

    #[test]
    fn bounded_distance_matches_exact_distance() {
        let scene = Scene::with_objects(&CanonicalObject::ALL, 5);
        let boxes: Vec<Aabb> =
            scene.objects().iter().map(|o| o.world_bounding_box().inflate(1e-3)).collect();
        for i in 0..50 {
            let p =
                Vec3::new((i % 7) as f32 - 3.0, (i % 3) as f32 * 0.5, ((i * 3) % 9) as f32 - 4.0);
            let (d_exact, _) = scene.distance(p);
            let (d_bounded, _) = scene.distance_bounded(p, &boxes, f32::INFINITY);
            assert!((d_exact - d_bounded).abs() < 1e-4, "mismatch at {p:?}");
        }
    }

    #[test]
    fn lane_bounded_distance_is_bit_identical_to_scalar() {
        let scene = Scene::with_objects(&CanonicalObject::ALL, 7);
        let boxes: Vec<Aabb> =
            scene.objects().iter().map(|o| o.world_bounding_box().inflate(1e-3)).collect();
        for i in 0..25 {
            let lanes = [
                Vec3::new(i as f32 * 0.31 - 3.0, (i % 4) as f32 * 0.4, (i % 5) as f32 - 2.0),
                Vec3::new(0.0, 0.5 + i as f32 * 0.1, -1.0),
                Vec3::new(-2.0 + i as f32 * 0.2, 0.0, 2.0 - i as f32 * 0.15),
                Vec3::new(1.0, 1.0, 1.0),
            ];
            let (d4, ids) =
                scene.distance_bounded_x4(Vec3x4::from_lanes(lanes), &boxes, Mask4::ALL);
            for lane in 0..LANES {
                let (d, id) = scene.distance_bounded(lanes[lane], &boxes, f32::INFINITY);
                assert_eq!(d4.lane(lane).to_bits(), d.to_bits(), "lane {lane} at {lanes:?}");
                assert_eq!(ids[lane], id);
            }
        }
        // Inactive lanes are never evaluated.
        let (d4, ids) = scene.distance_bounded_x4(
            Vec3x4::splat(Vec3::ZERO),
            &boxes,
            Mask4([true, false, true, false]),
        );
        assert!(d4.lane(1).is_infinite() && ids[1].is_none());
        assert!(d4.lane(0).is_finite() && d4.lane(2).is_finite());
    }

    #[test]
    fn empty_scene_reports_infinite_distance() {
        let scene = Scene::new();
        assert!(scene.is_empty());
        let (d, id) = scene.distance(Vec3::ZERO);
        assert_eq!(d, f32::INFINITY);
        assert_eq!(id, None);
        assert!(scene.bounding_box().is_empty());
    }

    #[test]
    fn random_scene_is_deterministic() {
        let a = Scene::random(4, 11);
        let b = Scene::random(4, 11);
        assert_eq!(a.len(), b.len());
        for (oa, ob) in a.objects().iter().zip(b.objects()) {
            assert_eq!(oa.translation, ob.translation);
            assert_eq!(oa.rotation_y, ob.rotation_y);
        }
    }

    #[test]
    fn world_sdf_agrees_with_fast_distance() {
        let scene = Scene::with_objects(&[CanonicalObject::Lego], 2);
        let obj = &scene.objects()[0];
        let world = obj.world_sdf();
        for i in 0..40 {
            let p = obj.translation
                + Vec3::new(
                    (i % 5) as f32 * 0.3 - 0.6,
                    (i % 4) as f32 * 0.25,
                    ((i * 2) % 5) as f32 * 0.3 - 0.6,
                );
            assert!((world.distance(p) - obj.distance(p)).abs() < 1e-4);
        }
    }
}
