//! The canonical object catalogue.
//!
//! The paper composes its simulated scenes from five synthetic 360° objects
//! of the original NeRF dataset — hotdog, ficus, chair, ship and lego — whose
//! 3-D geometric complexity is ordered hotdog < ficus < chair < ship < lego
//! (Fig. 8 sorts the x-axis that way). We provide procedural SDF analogues
//! with the same ordering, plus randomised "filler" objects used when a
//! scene needs more variety (Scene 3 of the evaluation picks objects at
//! random).

use crate::appearance::Appearance;
use crate::sdf::Sdf;
use nerflex_image::Color;
use nerflex_math::Vec3;
use rand::Rng;

/// The five canonical objects used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonicalObject {
    /// Lowest geometric complexity: sausage + bun, smooth appearance.
    Hotdog,
    /// A potted plant: trunk + blobby canopy with high-frequency foliage noise.
    Ficus,
    /// A chair: seat, backrest and four legs.
    Chair,
    /// A ship: hull, masts, sails and striped planking.
    Ship,
    /// Highest geometric complexity: studded brick assembly.
    Lego,
}

impl CanonicalObject {
    /// All five canonical objects in ascending order of geometric complexity.
    pub const ALL: [CanonicalObject; 5] = [
        CanonicalObject::Hotdog,
        CanonicalObject::Ficus,
        CanonicalObject::Chair,
        CanonicalObject::Ship,
        CanonicalObject::Lego,
    ];

    /// Human-readable lower-case name (matches the paper's Fig. 8 labels).
    pub fn name(&self) -> &'static str {
        match self {
            CanonicalObject::Hotdog => "hotdog",
            CanonicalObject::Ficus => "ficus",
            CanonicalObject::Chair => "chair",
            CanonicalObject::Ship => "ship",
            CanonicalObject::Lego => "lego",
        }
    }

    /// A nominal geometric-complexity rank (0 = simplest). The *measured*
    /// complexity — quad faces produced at a reference mesh granularity — is
    /// computed by the baking crate; tests assert the two agree in ordering.
    pub fn complexity_rank(&self) -> usize {
        match self {
            CanonicalObject::Hotdog => 0,
            CanonicalObject::Ficus => 1,
            CanonicalObject::Chair => 2,
            CanonicalObject::Ship => 3,
            CanonicalObject::Lego => 4,
        }
    }

    /// Builds the object's geometry and appearance.
    pub fn build(&self) -> ObjectModel {
        match self {
            CanonicalObject::Hotdog => hotdog(),
            CanonicalObject::Ficus => ficus(),
            CanonicalObject::Chair => chair(),
            CanonicalObject::Ship => ship(),
            CanonicalObject::Lego => lego(),
        }
    }

    /// Parses a canonical object from its name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|o| o.name() == name)
    }
}

impl std::fmt::Display for CanonicalObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Geometry + appearance of one object, in its local frame (roughly unit
/// scale, sitting on the origin).
#[derive(Debug, Clone)]
pub struct ObjectModel {
    /// Object name.
    pub name: String,
    /// Signed distance field of the geometry.
    pub sdf: Sdf,
    /// Procedural surface appearance.
    pub appearance: Appearance,
}

fn hotdog() -> ObjectModel {
    let sausage = Sdf::Capsule {
        a: Vec3::new(-0.45, 0.22, 0.0),
        b: Vec3::new(0.45, 0.22, 0.0),
        radius: 0.12,
    };
    let bun =
        Sdf::Ellipsoid { radii: Vec3::new(0.6, 0.18, 0.28) }.translated(Vec3::new(0.0, 0.08, 0.0));
    let plate =
        Sdf::Cylinder { half_height: 0.02, radius: 0.75 }.translated(Vec3::new(0.0, -0.06, 0.0));
    ObjectModel {
        name: "hotdog".to_string(),
        sdf: sausage.smooth_union(bun, 0.05).union(plate),
        appearance: Appearance::Noise {
            base: Color::new(0.75, 0.45, 0.2),
            accent: Color::new(0.9, 0.75, 0.5),
            frequency: 2.0,
            octaves: 2,
        },
    }
}

fn ficus() -> ObjectModel {
    let pot =
        Sdf::Cylinder { half_height: 0.15, radius: 0.22 }.translated(Vec3::new(0.0, 0.15, 0.0));
    let trunk =
        Sdf::Capsule { a: Vec3::new(0.0, 0.2, 0.0), b: Vec3::new(0.05, 0.75, 0.02), radius: 0.04 };
    // Canopy: three overlapping displaced spheres — foliage carries dense
    // high-frequency appearance detail even though the geometry is simple.
    let canopy = Sdf::Sphere { radius: 0.32 }
        .displaced(0.03, 18.0)
        .translated(Vec3::new(0.0, 0.95, 0.0))
        .union(
            Sdf::Sphere { radius: 0.24 }
                .displaced(0.03, 18.0)
                .translated(Vec3::new(0.22, 0.8, 0.08)),
        )
        .union(
            Sdf::Sphere { radius: 0.22 }
                .displaced(0.03, 18.0)
                .translated(Vec3::new(-0.2, 0.78, -0.1)),
        );
    ObjectModel {
        name: "ficus".to_string(),
        sdf: pot.union(trunk).union(canopy),
        appearance: Appearance::Noise {
            base: Color::new(0.1, 0.35, 0.12),
            accent: Color::new(0.5, 0.8, 0.3),
            frequency: 14.0,
            octaves: 4,
        },
    }
}

fn chair() -> ObjectModel {
    let seat = Sdf::RoundedBox { half_extent: Vec3::new(0.35, 0.035, 0.35), radius: 0.02 }
        .translated(Vec3::new(0.0, 0.45, 0.0));
    let back = Sdf::RoundedBox { half_extent: Vec3::new(0.35, 0.4, 0.03), radius: 0.02 }
        .translated(Vec3::new(0.0, 0.85, -0.32));
    let mut parts = vec![seat, back];
    for (sx, sz) in [(-1.0f32, -1.0f32), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0)] {
        parts.push(Sdf::Box { half_extent: Vec3::new(0.03, 0.225, 0.03) }.translated(Vec3::new(
            0.3 * sx,
            0.225,
            0.3 * sz,
        )));
    }
    // Backrest slats add mid-frequency geometric detail.
    for i in 0..4 {
        parts.push(Sdf::Box { half_extent: Vec3::new(0.33, 0.025, 0.015) }.translated(Vec3::new(
            0.0,
            0.6 + 0.15 * i as f32,
            -0.3,
        )));
    }
    ObjectModel {
        name: "chair".to_string(),
        sdf: Sdf::Union(parts),
        appearance: Appearance::Stripes {
            a: Color::new(0.45, 0.28, 0.14),
            b: Color::new(0.6, 0.4, 0.22),
            frequency: 7.0,
        },
    }
}

fn ship() -> ObjectModel {
    let hull = Sdf::Ellipsoid { radii: Vec3::new(0.75, 0.22, 0.26) }
        .subtract(
            Sdf::Ellipsoid { radii: Vec3::new(0.68, 0.18, 0.2) }
                .translated(Vec3::new(0.0, 0.1, 0.0)),
        )
        .translated(Vec3::new(0.0, 0.25, 0.0));
    let keel =
        Sdf::Box { half_extent: Vec3::new(0.7, 0.04, 0.03) }.translated(Vec3::new(0.0, 0.08, 0.0));
    let mut parts = vec![hull, keel];
    // Two masts with yards and sails.
    for (x, h) in [(-0.25f32, 0.75f32), (0.2, 0.9)] {
        parts.push(Sdf::Cylinder { half_height: h / 2.0, radius: 0.025 }.translated(Vec3::new(
            x,
            0.35 + h / 2.0,
            0.0,
        )));
        parts.push(Sdf::Box { half_extent: Vec3::new(0.02, 0.02, 0.3) }.translated(Vec3::new(
            x,
            0.35 + h * 0.8,
            0.0,
        )));
        parts.push(
            Sdf::Box { half_extent: Vec3::new(0.015, h * 0.3, 0.26) }
                .displaced(0.012, 25.0)
                .translated(Vec3::new(x, 0.35 + h * 0.5, 0.0)),
        );
    }
    // Railing posts: many small features raise the surface complexity.
    for i in 0..8 {
        let t = i as f32 / 7.0 * 1.2 - 0.6;
        parts.push(
            Sdf::Box { half_extent: Vec3::new(0.012, 0.05, 0.012) }
                .translated(Vec3::new(t, 0.5, 0.24)),
        );
        parts.push(
            Sdf::Box { half_extent: Vec3::new(0.012, 0.05, 0.012) }
                .translated(Vec3::new(t, 0.5, -0.24)),
        );
    }
    ObjectModel {
        name: "ship".to_string(),
        sdf: Sdf::Union(parts),
        appearance: Appearance::Stripes {
            a: Color::new(0.35, 0.22, 0.12),
            b: Color::new(0.72, 0.68, 0.6),
            frequency: 18.0,
        },
    }
}

fn lego() -> ObjectModel {
    // A stepped assembly of studded bricks — dense small features give the
    // highest quad count at any mesh granularity.
    let mut parts = Vec::new();
    let brick_specs: [(Vec3, Vec3); 4] = [
        (Vec3::new(0.45, 0.09, 0.3), Vec3::new(0.0, 0.09, 0.0)),
        (Vec3::new(0.3, 0.09, 0.3), Vec3::new(-0.15, 0.27, 0.0)),
        (Vec3::new(0.22, 0.09, 0.22), Vec3::new(0.2, 0.27, 0.05)),
        (Vec3::new(0.15, 0.09, 0.15), Vec3::new(-0.1, 0.45, 0.05)),
    ];
    for (half, at) in brick_specs {
        parts.push(Sdf::Box { half_extent: half }.translated(at));
        // Stud grid on top of each brick.
        let nx = ((half.x * 2.0) / 0.14).floor().max(1.0) as i32;
        let nz = ((half.z * 2.0) / 0.14).floor().max(1.0) as i32;
        for ix in 0..nx {
            for iz in 0..nz {
                let sx = at.x - half.x + 0.07 + ix as f32 * 0.14;
                let sz = at.z - half.z + 0.07 + iz as f32 * 0.14;
                parts.push(
                    Sdf::Cylinder { half_height: 0.025, radius: 0.04 }.translated(Vec3::new(
                        sx,
                        at.y + half.y + 0.025,
                        sz,
                    )),
                );
            }
        }
    }
    ObjectModel {
        name: "lego".to_string(),
        sdf: Sdf::Union(parts),
        appearance: Appearance::Studs {
            base: Color::new(0.78, 0.1, 0.08),
            highlight: Color::new(0.95, 0.85, 0.2),
            frequency: 7.0,
        },
    }
}

/// Generates a randomised filler object (used by the "random scene"
/// constructions) whose complexity interpolates between the canonical
/// extremes. The same `rng` state always produces the same object.
pub fn random_object(rng: &mut impl Rng, index: usize) -> ObjectModel {
    let complexity: f32 = rng.gen_range(0.0..1.0);
    let base: Sdf = match rng.gen_range(0..3) {
        0 => Sdf::Sphere { radius: 0.4 },
        1 => Sdf::RoundedBox { half_extent: Vec3::new(0.35, 0.3, 0.3), radius: 0.05 },
        _ => Sdf::Torus { major_radius: 0.3, minor_radius: 0.12 },
    };
    let mut sdf = base.translated(Vec3::new(0.0, 0.4, 0.0));
    // Higher complexity adds displacement and satellite features.
    if complexity > 0.3 {
        sdf = sdf.displaced(0.02 + 0.03 * complexity, 10.0 + 30.0 * complexity);
    }
    let satellites = (complexity * 6.0) as usize;
    for s in 0..satellites {
        let angle = s as f32 / satellites.max(1) as f32 * std::f32::consts::TAU;
        sdf = sdf.union(Sdf::Sphere { radius: 0.07 }.translated(Vec3::new(
            0.45 * angle.cos(),
            0.25 + 0.1 * (s % 3) as f32,
            0.45 * angle.sin(),
        )));
    }
    let appearance = Appearance::Noise {
        base: Color::new(rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)),
        accent: Color::new(
            rng.gen_range(0.1..0.9),
            rng.gen_range(0.1..0.9),
            rng.gen_range(0.1..0.9),
        ),
        frequency: 2.0 + complexity * 20.0,
        octaves: 2 + (complexity * 3.0) as u32,
    };
    ObjectModel { name: format!("random-{index}"), sdf, appearance }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_objects_build_and_have_geometry_near_origin() {
        for obj in CanonicalObject::ALL {
            let model = obj.build();
            assert_eq!(model.name, obj.name());
            let bb = model.sdf.bounding_box();
            assert!(!bb.is_empty(), "{obj}: empty bounding box");
            assert!(bb.diagonal() > 0.3 && bb.diagonal() < 5.0, "{obj}: odd size {bb:?}");
            // The surface exists: some probe point near the box centre is inside.
            let mut inside = 0;
            let c = bb.center();
            for i in 0..1000 {
                let p = c + Vec3::new(
                    ((i % 10) as f32 / 10.0 - 0.5) * bb.extent().x,
                    (((i / 10) % 10) as f32 / 10.0 - 0.5) * bb.extent().y,
                    (((i / 100) % 10) as f32 / 10.0 - 0.5) * bb.extent().z,
                );
                if model.sdf.contains(p) {
                    inside += 1;
                }
            }
            assert!(inside > 0, "{obj}: no interior points found");
        }
    }

    #[test]
    fn complexity_ranks_are_distinct_and_ordered() {
        let ranks: Vec<usize> = CanonicalObject::ALL.iter().map(|o| o.complexity_rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn name_roundtrip() {
        for obj in CanonicalObject::ALL {
            assert_eq!(CanonicalObject::from_name(obj.name()), Some(obj));
        }
        assert_eq!(CanonicalObject::from_name("teapot"), None);
    }

    #[test]
    fn lego_appearance_is_more_detailed_than_hotdog() {
        let lego = CanonicalObject::Lego.build();
        let hotdog = CanonicalObject::Hotdog.build();
        assert!(lego.appearance.nominal_detail() > hotdog.appearance.nominal_detail());
    }

    #[test]
    fn random_objects_are_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = random_object(&mut rng1, 0);
        let b = random_object(&mut rng2, 0);
        assert_eq!(a.name, b.name);
        // Same SDF tree ⇒ same distances at probe points.
        for i in 0..20 {
            let p = Vec3::new(i as f32 * 0.1 - 1.0, 0.3, 0.2);
            assert_eq!(a.sdf.distance(p), b.sdf.distance(p));
        }
    }
}
