//! Signed distance fields: primitives, CSG combinators and transforms.
//!
//! The scene substrate represents every object as an SDF tree. SDFs give us
//! (a) exact ground-truth renderings by sphere tracing, (b) an occupancy
//! oracle for the voxel-grid baking simulator, and (c) analytic normals —
//! everything the paper obtains from trained NeRF density fields.

use nerflex_math::{Aabb, F32x4, Vec3, Vec3x4};

/// A node in a signed-distance-field expression tree.
///
/// Distances are negative inside the surface, positive outside. All
/// primitives are centred at the origin; use [`Sdf::translated`],
/// [`Sdf::scaled`] and [`Sdf::rotated_y`] to place them.
#[derive(Debug, Clone)]
pub enum Sdf {
    /// Sphere of the given radius.
    Sphere {
        /// Radius.
        radius: f32,
    },
    /// Axis-aligned box with the given half-extents.
    Box {
        /// Half-extent along each axis.
        half_extent: Vec3,
    },
    /// Box with rounded edges.
    RoundedBox {
        /// Half-extent along each axis (before rounding).
        half_extent: Vec3,
        /// Rounding radius.
        radius: f32,
    },
    /// Capsule (line segment with radius) from `a` to `b`.
    Capsule {
        /// First endpoint.
        a: Vec3,
        /// Second endpoint.
        b: Vec3,
        /// Radius.
        radius: f32,
    },
    /// Y-axis-aligned cylinder.
    Cylinder {
        /// Half height along Y.
        half_height: f32,
        /// Radius in the XZ plane.
        radius: f32,
    },
    /// Torus in the XZ plane.
    Torus {
        /// Distance from the centre to the tube centre.
        major_radius: f32,
        /// Tube radius.
        minor_radius: f32,
    },
    /// Ellipsoid with the given semi-axes (approximate distance).
    Ellipsoid {
        /// Semi-axis lengths.
        radii: Vec3,
    },
    /// Union (minimum) of the children.
    Union(Vec<Sdf>),
    /// Smooth union with blending radius `k`.
    SmoothUnion {
        /// Left operand.
        a: Box<Sdf>,
        /// Right operand.
        b: Box<Sdf>,
        /// Blend radius.
        k: f32,
    },
    /// Subtraction `a − b` (keeps `a` outside `b`).
    Subtract {
        /// Base shape.
        a: Box<Sdf>,
        /// Shape removed from `a`.
        b: Box<Sdf>,
    },
    /// Intersection (maximum) of the two children.
    Intersect {
        /// Left operand.
        a: Box<Sdf>,
        /// Right operand.
        b: Box<Sdf>,
    },
    /// Child translated by `offset`.
    Translate {
        /// Translation.
        offset: Vec3,
        /// Child node.
        child: Box<Sdf>,
    },
    /// Child scaled uniformly by `factor`.
    Scale {
        /// Uniform scale factor (must be positive).
        factor: f32,
        /// Child node.
        child: Box<Sdf>,
    },
    /// Child rotated by `angle` radians around the Y axis.
    RotateY {
        /// Rotation angle in radians.
        angle: f32,
        /// Child node.
        child: Box<Sdf>,
    },
    /// Sinusoidal surface displacement adding geometric detail of the given
    /// amplitude and spatial frequency (used to tune object complexity).
    Displace {
        /// Displacement amplitude.
        amplitude: f32,
        /// Spatial frequency of the displacement.
        frequency: f32,
        /// Child node.
        child: Box<Sdf>,
    },
}

impl Sdf {
    /// Signed distance from `p` to the surface.
    pub fn distance(&self, p: Vec3) -> f32 {
        match self {
            Sdf::Sphere { radius } => p.length() - radius,
            Sdf::Box { half_extent } => {
                let q = p.abs() - *half_extent;
                q.max(Vec3::ZERO).length() + q.max_component().min(0.0)
            }
            Sdf::RoundedBox { half_extent, radius } => {
                let q = p.abs() - *half_extent;
                q.max(Vec3::ZERO).length() + q.max_component().min(0.0) - radius
            }
            Sdf::Capsule { a, b, radius } => {
                let pa = p - *a;
                let ba = *b - *a;
                let h = (pa.dot(ba) / ba.dot(ba)).clamp(0.0, 1.0);
                (pa - ba * h).length() - radius
            }
            Sdf::Cylinder { half_height, radius } => {
                let d_xz = (p.x * p.x + p.z * p.z).sqrt() - radius;
                let d_y = p.y.abs() - half_height;
                let outside = Vec3::new(d_xz.max(0.0), d_y.max(0.0), 0.0).length();
                let inside = d_xz.max(d_y).min(0.0);
                outside + inside
            }
            Sdf::Torus { major_radius, minor_radius } => {
                let q_x = (p.x * p.x + p.z * p.z).sqrt() - major_radius;
                (q_x * q_x + p.y * p.y).sqrt() - minor_radius
            }
            Sdf::Ellipsoid { radii } => {
                // Standard bound-preserving approximation.
                let k0 = Vec3::new(p.x / radii.x, p.y / radii.y, p.z / radii.z).length();
                let k1 = Vec3::new(
                    p.x / (radii.x * radii.x),
                    p.y / (radii.y * radii.y),
                    p.z / (radii.z * radii.z),
                )
                .length();
                if k1 < 1e-12 {
                    return -radii.min_component();
                }
                k0 * (k0 - 1.0) / k1
            }
            Sdf::Union(children) => {
                children.iter().map(|c| c.distance(p)).fold(f32::INFINITY, f32::min)
            }
            Sdf::SmoothUnion { a, b, k } => {
                let da = a.distance(p);
                let db = b.distance(p);
                let h = (0.5 + 0.5 * (db - da) / k).clamp(0.0, 1.0);
                db + (da - db) * h - k * h * (1.0 - h)
            }
            Sdf::Subtract { a, b } => a.distance(p).max(-b.distance(p)),
            Sdf::Intersect { a, b } => a.distance(p).max(b.distance(p)),
            Sdf::Translate { offset, child } => child.distance(p - *offset),
            Sdf::Scale { factor, child } => child.distance(p / *factor) * *factor,
            Sdf::RotateY { angle, child } => {
                let (s, c) = (-angle).sin_cos();
                let q = Vec3::new(c * p.x + s * p.z, p.y, -s * p.x + c * p.z);
                child.distance(q)
            }
            Sdf::Displace { amplitude, frequency, child } => {
                let d = child.distance(p);
                let disp =
                    (p.x * frequency).sin() * (p.y * frequency).sin() * (p.z * frequency).sin();
                d + disp * amplitude
            }
        }
    }

    /// Four-lane signed distance: evaluates the tree for a packet of four
    /// points at once.
    ///
    /// # Determinism contract
    ///
    /// Every arm mirrors [`Sdf::distance`] operation for operation in the
    /// same association order (per-lane ops are the exact scalar IEEE-754
    /// ops — see [`nerflex_math::simd`]), so each lane's result is
    /// **bit-identical** to `self.distance(p.lane(i))`. The packet ray
    /// marcher relies on this to render the same image bits for any lane
    /// count; `prop_distance_x4_matches_scalar` asserts it over random
    /// points and a tree containing every node type.
    pub fn distance_x4(&self, p: Vec3x4) -> F32x4 {
        match self {
            Sdf::Sphere { radius } => p.length() - *radius,
            Sdf::Box { half_extent } => {
                let q = p.abs() - *half_extent;
                q.max_vec(Vec3::ZERO).length() + q.max_component().min(F32x4::ZERO)
            }
            Sdf::RoundedBox { half_extent, radius } => {
                let q = p.abs() - *half_extent;
                q.max_vec(Vec3::ZERO).length() + q.max_component().min(F32x4::ZERO) - *radius
            }
            Sdf::Capsule { a, b, radius } => {
                let pa = p - *a;
                let ba = *b - *a;
                let h = (pa.dot(Vec3x4::splat(ba)) / ba.dot(ba)).clamp(0.0, 1.0);
                (pa - Vec3x4::splat(ba) * h).length() - *radius
            }
            Sdf::Cylinder { half_height, radius } => {
                let d_xz = (p.x * p.x + p.z * p.z).sqrt() - *radius;
                let d_y = p.y.abs() - *half_height;
                let outside =
                    Vec3x4::new(d_xz.max(F32x4::ZERO), d_y.max(F32x4::ZERO), F32x4::ZERO).length();
                let inside = d_xz.max(d_y).min(F32x4::ZERO);
                outside + inside
            }
            Sdf::Torus { major_radius, minor_radius } => {
                let q_x = (p.x * p.x + p.z * p.z).sqrt() - *major_radius;
                (q_x * q_x + p.y * p.y).sqrt() - *minor_radius
            }
            Sdf::Ellipsoid { radii } => {
                let k0 = Vec3x4::new(p.x / radii.x, p.y / radii.y, p.z / radii.z).length();
                let k1 = Vec3x4::new(
                    p.x / (radii.x * radii.x),
                    p.y / (radii.y * radii.y),
                    p.z / (radii.z * radii.z),
                )
                .length();
                let near_center = k1.lt(F32x4::splat(1e-12));
                F32x4::splat(-radii.min_component()).select(k0 * (k0 - 1.0) / k1, near_center)
            }
            Sdf::Union(children) => children
                .iter()
                .map(|c| c.distance_x4(p))
                .fold(F32x4::splat(f32::INFINITY), F32x4::min),
            Sdf::SmoothUnion { a, b, k } => {
                let da = a.distance_x4(p);
                let db = b.distance_x4(p);
                let h = (((db - da) * 0.5) / *k + 0.5).clamp(0.0, 1.0);
                db + (da - db) * h - (h * *k) * (F32x4::splat(1.0) - h)
            }
            Sdf::Subtract { a, b } => a.distance_x4(p).max(-b.distance_x4(p)),
            Sdf::Intersect { a, b } => a.distance_x4(p).max(b.distance_x4(p)),
            Sdf::Translate { offset, child } => child.distance_x4(p - *offset),
            Sdf::Scale { factor, child } => child.distance_x4(p / *factor) * *factor,
            Sdf::RotateY { angle, child } => {
                let (s, c) = (-angle).sin_cos();
                let q = Vec3x4::new(p.x * c + p.z * s, p.y, p.x * -s + p.z * c);
                child.distance_x4(q)
            }
            Sdf::Displace { amplitude, frequency, child } => {
                let d = child.distance_x4(p);
                let disp =
                    (p.x * *frequency).sin() * (p.y * *frequency).sin() * (p.z * *frequency).sin();
                d + disp * *amplitude
            }
        }
    }

    /// Finite-difference step of [`Sdf::normal`] / [`Sdf::normal_x4`].
    const NORMAL_EPS: f32 = 1e-3;

    /// Surface normal estimated by central finite differences.
    pub fn normal(&self, p: Vec3) -> Vec3 {
        const EPS: f32 = Sdf::NORMAL_EPS;
        let dx = self.distance(p + Vec3::new(EPS, 0.0, 0.0))
            - self.distance(p - Vec3::new(EPS, 0.0, 0.0));
        let dy = self.distance(p + Vec3::new(0.0, EPS, 0.0))
            - self.distance(p - Vec3::new(0.0, EPS, 0.0));
        let dz = self.distance(p + Vec3::new(0.0, 0.0, EPS))
            - self.distance(p - Vec3::new(0.0, 0.0, EPS));
        Vec3::new(dx, dy, dz).normalized()
    }

    /// Four-lane surface normal: six packet distance evaluations instead of
    /// twenty-four scalar ones.
    ///
    /// Mirrors [`Sdf::normal`] operation for operation — the six offset
    /// probes go through [`Sdf::distance_x4`] (per-lane exact) and the final
    /// normalisation through [`Vec3x4::normalized`] — so each lane is
    /// **bit-identical** to `self.normal(p.lane(i))`. The packet ray
    /// marcher's hit resolution relies on this to keep packet renders
    /// bit-identical to scalar ones for any lane grouping.
    pub fn normal_x4(&self, p: Vec3x4) -> Vec3x4 {
        const EPS: f32 = Sdf::NORMAL_EPS;
        let probe = |offset: Vec3| {
            self.distance_x4(p + Vec3x4::splat(offset)) - self.distance_x4(p - offset)
        };
        let dx = probe(Vec3::new(EPS, 0.0, 0.0));
        let dy = probe(Vec3::new(0.0, EPS, 0.0));
        let dz = probe(Vec3::new(0.0, 0.0, EPS));
        Vec3x4::new(dx, dy, dz).normalized()
    }

    /// `true` when the point is inside (or on) the surface.
    pub fn contains(&self, p: Vec3) -> bool {
        self.distance(p) <= 0.0
    }

    /// Conservative axis-aligned bounding box of the surface, computed by
    /// recursion over the tree (displacement amplitudes inflate the box).
    pub fn bounding_box(&self) -> Aabb {
        match self {
            Sdf::Sphere { radius } => Aabb::new(Vec3::splat(-radius), Vec3::splat(*radius)),
            Sdf::Box { half_extent } => Aabb::new(-*half_extent, *half_extent),
            Sdf::RoundedBox { half_extent, radius } => {
                let e = *half_extent + Vec3::splat(*radius);
                Aabb::new(-e, e)
            }
            Sdf::Capsule { a, b, radius } => {
                Aabb::new(a.min(*b) - Vec3::splat(*radius), a.max(*b) + Vec3::splat(*radius))
            }
            Sdf::Cylinder { half_height, radius } => Aabb::new(
                Vec3::new(-radius, -half_height, -radius),
                Vec3::new(*radius, *half_height, *radius),
            ),
            Sdf::Torus { major_radius, minor_radius } => {
                let r = major_radius + minor_radius;
                Aabb::new(Vec3::new(-r, -minor_radius, -r), Vec3::new(r, *minor_radius, r))
            }
            Sdf::Ellipsoid { radii } => Aabb::new(-*radii, *radii),
            Sdf::Union(children) => {
                children.iter().map(Sdf::bounding_box).fold(Aabb::empty(), |acc, b| acc.union(&b))
            }
            Sdf::SmoothUnion { a, b, k } => a.bounding_box().union(&b.bounding_box()).inflate(*k),
            Sdf::Subtract { a, .. } => a.bounding_box(),
            Sdf::Intersect { a, b } => {
                let ba = a.bounding_box();
                let bb = b.bounding_box();
                Aabb::new(ba.min.max(bb.min), ba.max.min(bb.max))
            }
            Sdf::Translate { offset, child } => {
                let b = child.bounding_box();
                Aabb::new(b.min + *offset, b.max + *offset)
            }
            Sdf::Scale { factor, child } => {
                let b = child.bounding_box();
                Aabb::new(b.min * *factor, b.max * *factor)
            }
            Sdf::RotateY { child, .. } => {
                // Conservative: bound by the rotation-invariant enclosing box.
                let b = child.bounding_box();
                let r = b.max.abs().max(b.min.abs());
                let radius = (r.x * r.x + r.z * r.z).sqrt();
                Aabb::new(Vec3::new(-radius, b.min.y, -radius), Vec3::new(radius, b.max.y, radius))
            }
            Sdf::Displace { amplitude, child, .. } => child.bounding_box().inflate(amplitude.abs()),
        }
    }

    /// Wraps the node in a translation.
    pub fn translated(self, offset: Vec3) -> Self {
        Sdf::Translate { offset, child: Box::new(self) }
    }

    /// Wraps the node in a uniform scale.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not strictly positive.
    pub fn scaled(self, factor: f32) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Sdf::Scale { factor, child: Box::new(self) }
    }

    /// Wraps the node in a rotation around the Y axis.
    pub fn rotated_y(self, angle: f32) -> Self {
        Sdf::RotateY { angle, child: Box::new(self) }
    }

    /// Union with another node.
    pub fn union(self, other: Sdf) -> Self {
        Sdf::Union(vec![self, other])
    }

    /// Smooth union with another node.
    pub fn smooth_union(self, other: Sdf, k: f32) -> Self {
        Sdf::SmoothUnion { a: Box::new(self), b: Box::new(other), k }
    }

    /// Subtracts `other` from this node.
    pub fn subtract(self, other: Sdf) -> Self {
        Sdf::Subtract { a: Box::new(self), b: Box::new(other) }
    }

    /// Adds sinusoidal surface displacement.
    pub fn displaced(self, amplitude: f32, frequency: f32) -> Self {
        Sdf::Displace { amplitude, frequency, child: Box::new(self) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sphere_distance_is_exact() {
        let s = Sdf::Sphere { radius: 1.0 };
        assert!((s.distance(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-6);
        assert!((s.distance(Vec3::ZERO) + 1.0).abs() < 1e-6);
        assert!(s.contains(Vec3::new(0.5, 0.0, 0.0)));
    }

    #[test]
    fn box_distance_inside_and_outside() {
        let b = Sdf::Box { half_extent: Vec3::splat(1.0) };
        assert!((b.distance(Vec3::new(3.0, 0.0, 0.0)) - 2.0).abs() < 1e-6);
        assert!(b.distance(Vec3::ZERO) < 0.0);
        // Corner distance follows the Euclidean metric.
        let d = b.distance(Vec3::new(2.0, 2.0, 2.0));
        assert!((d - 3.0f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn translation_and_scale_compose() {
        let s = Sdf::Sphere { radius: 1.0 }.scaled(2.0).translated(Vec3::new(5.0, 0.0, 0.0));
        assert!(s.contains(Vec3::new(5.0, 0.0, 0.0)));
        assert!(s.contains(Vec3::new(6.9, 0.0, 0.0)));
        assert!(!s.contains(Vec3::new(7.1, 0.0, 0.0)));
    }

    #[test]
    fn rotation_moves_features() {
        // A box elongated along X, rotated 90° about Y, becomes elongated along Z.
        let b = Sdf::Box { half_extent: Vec3::new(2.0, 0.5, 0.5) }
            .rotated_y(std::f32::consts::FRAC_PI_2);
        assert!(b.contains(Vec3::new(0.0, 0.0, 1.8)));
        assert!(!b.contains(Vec3::new(1.8, 0.0, 0.0)));
    }

    #[test]
    fn union_subtract_intersect_semantics() {
        let a = Sdf::Sphere { radius: 1.0 };
        let b = Sdf::Sphere { radius: 1.0 }.translated(Vec3::new(1.5, 0.0, 0.0));
        let union = a.clone().union(b.clone());
        assert!(union.contains(Vec3::ZERO));
        assert!(union.contains(Vec3::new(1.5, 0.0, 0.0)));
        let sub = a.clone().subtract(b.clone());
        assert!(sub.contains(Vec3::new(-0.5, 0.0, 0.0)));
        assert!(!sub.contains(Vec3::new(0.9, 0.0, 0.0)));
        let inter = Sdf::Intersect { a: Box::new(a), b: Box::new(b) };
        assert!(inter.contains(Vec3::new(0.75, 0.0, 0.0)));
        assert!(!inter.contains(Vec3::ZERO));
    }

    #[test]
    fn smooth_union_is_at_least_as_large_as_union() {
        let a = Sdf::Sphere { radius: 0.8 };
        let b = Sdf::Sphere { radius: 0.8 }.translated(Vec3::new(1.2, 0.0, 0.0));
        let hard = a.clone().union(b.clone());
        let smooth = a.smooth_union(b, 0.3);
        // Between the spheres the smooth union fills in material.
        let p = Vec3::new(0.6, 0.55, 0.0);
        assert!(smooth.distance(p) <= hard.distance(p) + 1e-6);
    }

    #[test]
    fn normals_point_outward() {
        let s = Sdf::Sphere { radius: 1.0 };
        let p = Vec3::new(0.0, 1.0, 0.0);
        let n = s.normal(p);
        assert!((n - Vec3::Y).length() < 1e-2);
    }

    #[test]
    fn bounding_box_encloses_surface() {
        let shape = Sdf::Cylinder { half_height: 1.0, radius: 0.5 }
            .union(Sdf::Torus { major_radius: 1.0, minor_radius: 0.2 })
            .translated(Vec3::new(0.0, 2.0, 0.0));
        let bb = shape.bounding_box();
        // Sample points on the surface by projecting grid points; all inside the box.
        for i in 0..100 {
            let p = Vec3::new(
                (i % 10) as f32 * 0.3 - 1.5,
                2.0 + ((i / 10) % 10) as f32 * 0.3 - 1.5,
                ((i * 7) % 10) as f32 * 0.3 - 1.5,
            );
            if shape.contains(p) {
                assert!(bb.contains(p), "{p:?} outside {bb:?}");
            }
        }
    }

    #[test]
    fn displacement_changes_surface_detail() {
        let smooth = Sdf::Sphere { radius: 1.0 };
        let rough = Sdf::Sphere { radius: 1.0 }.displaced(0.05, 20.0);
        // Displaced distances differ near the surface.
        let mut diff = 0.0;
        for i in 0..50 {
            let theta = i as f32 * 0.13;
            let p = Vec3::new(theta.cos(), 0.2, theta.sin());
            diff += (smooth.distance(p) - rough.distance(p)).abs();
        }
        assert!(diff > 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = Sdf::Sphere { radius: 1.0 }.scaled(0.0);
    }

    /// A tree exercising every [`Sdf`] node type at once.
    fn all_nodes_shape() -> Sdf {
        let base = Sdf::Sphere { radius: 0.8 }
            .smooth_union(Sdf::Box { half_extent: Vec3::new(0.7, 0.4, 0.5) }, 0.2)
            .union(
                Sdf::RoundedBox { half_extent: Vec3::splat(0.3), radius: 0.05 }
                    .translated(Vec3::new(1.2, 0.0, 0.0)),
            )
            .union(Sdf::Capsule {
                a: Vec3::new(-0.5, -0.5, 0.0),
                b: Vec3::new(0.5, 0.7, 0.2),
                radius: 0.2,
            })
            .union(Sdf::Cylinder { half_height: 0.6, radius: 0.25 }.rotated_y(0.7))
            .union(Sdf::Torus { major_radius: 0.9, minor_radius: 0.15 })
            .union(Sdf::Ellipsoid { radii: Vec3::new(0.9, 0.5, 0.6) }.scaled(0.8))
            .subtract(Sdf::Sphere { radius: 0.3 }.translated(Vec3::new(0.2, 0.2, 0.2)));
        let carved = Sdf::Intersect {
            a: Box::new(base),
            b: Box::new(Sdf::Box { half_extent: Vec3::splat(2.5) }),
        };
        carved.displaced(0.03, 7.0)
    }

    #[test]
    fn distance_x4_matches_scalar_on_every_node_type() {
        let shape = all_nodes_shape();
        let lanes = [
            Vec3::new(0.1, 0.2, 0.3),
            Vec3::new(-1.5, 0.8, -0.2),
            Vec3::new(2.0, -2.0, 2.0),
            Vec3::ZERO,
        ];
        let packed = shape.distance_x4(Vec3x4::from_lanes(lanes));
        for (lane, &p) in lanes.iter().enumerate() {
            assert_eq!(
                packed.lane(lane).to_bits(),
                shape.distance(p).to_bits(),
                "lane {lane} diverges from scalar at {p:?}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_distance_x4_matches_scalar(
            ax in -3f32..3.0, ay in -3f32..3.0, az in -3f32..3.0,
            bx in -3f32..3.0, by in -3f32..3.0, bz in -3f32..3.0,
        ) {
            // Lane evaluation is bit-identical to scalar evaluation — the
            // determinism contract the packet ray marcher builds on.
            let shape = all_nodes_shape();
            let lanes = [
                Vec3::new(ax, ay, az),
                Vec3::new(bx, by, bz),
                Vec3::new(ay, bz, ax),
                Vec3::new(-bx, -ay, az),
            ];
            let packed = shape.distance_x4(Vec3x4::from_lanes(lanes));
            for (lane, &p) in lanes.iter().enumerate() {
                prop_assert_eq!(packed.lane(lane).to_bits(), shape.distance(p).to_bits());
            }
        }

        #[test]
        fn prop_normal_x4_matches_scalar(
            ax in -2f32..2.0, ay in -2f32..2.0, az in -2f32..2.0,
            bx in -2f32..2.0, by in -2f32..2.0, bz in -2f32..2.0,
        ) {
            // Packetised normal estimation is bit-identical to the scalar
            // finite-difference path on every lane — the contract that lets
            // the packet ray marcher resolve hits in groups.
            let shape = all_nodes_shape();
            let lanes = [
                Vec3::new(ax, ay, az),
                Vec3::new(bx, by, bz),
                Vec3::new(bz, ax, -by),
                Vec3::new(-ay, bx, az),
            ];
            let packed = shape.normal_x4(Vec3x4::from_lanes(lanes));
            for (lane, &p) in lanes.iter().enumerate() {
                let scalar = shape.normal(p);
                prop_assert_eq!(packed.lane(lane).x.to_bits(), scalar.x.to_bits());
                prop_assert_eq!(packed.lane(lane).y.to_bits(), scalar.y.to_bits());
                prop_assert_eq!(packed.lane(lane).z.to_bits(), scalar.z.to_bits());
            }
        }

        #[test]
        fn prop_distance_sign_matches_contains(px in -3f32..3.0, py in -3f32..3.0, pz in -3f32..3.0) {
            let shape = Sdf::RoundedBox { half_extent: Vec3::new(1.0, 0.6, 0.8), radius: 0.1 };
            let p = Vec3::new(px, py, pz);
            prop_assert_eq!(shape.contains(p), shape.distance(p) <= 0.0);
        }

        #[test]
        fn prop_scaled_distance_scales(px in -3f32..3.0, py in -3f32..3.0, pz in -3f32..3.0, s in 0.5f32..3.0) {
            let base = Sdf::Sphere { radius: 1.0 };
            let scaled = base.clone().scaled(s);
            let p = Vec3::new(px, py, pz);
            let expected = base.distance(p / s) * s;
            prop_assert!((scaled.distance(p) - expected).abs() < 1e-4);
        }
    }
}
