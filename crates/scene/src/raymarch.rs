//! Ground-truth rendering by sphere-traced ray marching.
//!
//! The paper's ground truth is the photograph / the full NeRF render; ours is
//! an exact render of the procedural scene. The same shading model (two
//! directional lights + ambient over the procedural albedo) is shared with
//! the baked-mesh renderer so that quality differences measured between the
//! two come only from the baked representation (mesh granularity `g`,
//! texture patch size `p`) — exactly the degradation the NeRFlex profiler
//! models.
//!
//! # Performance and the determinism contract
//!
//! Ground-truth rendering is the dominant profiling cost, so the renderer is
//! restructured along two orthogonal axes — neither of which may change a
//! single output bit:
//!
//! * **Tiled parallelism** — [`render_view_parallel`] splits the image into
//!   row tiles and fans them over the shared worker pool
//!   ([`nerflex_math::pool`]). Pixels are independent and tiles are stitched
//!   back in job order, so the image is **bit-for-bit identical for every
//!   worker count and tile height**; one worker is exactly the sequential
//!   path.
//! * **Ray packets** — inside a tile, rows are traced four pixels at a time
//!   by [`trace_packet`], which runs the sphere-tracing steps, the AABB
//!   rejection tests, the SDF distance evaluations, the hit-normal
//!   estimation ([`crate::sdf::Sdf::normal_x4`], grouped by hit object) and
//!   the Lambert shading ([`shade_x4`]) on [`nerflex_math::simd`] lanes.
//!   Every lane op is the exact scalar IEEE-754 op in the same association
//!   order (see [`crate::sdf::Sdf::distance_x4`]), so a packet lane is
//!   bit-identical to the scalar [`trace`] + [`shade`] on that ray; leftover
//!   pixels at the row end fall back to the scalar path.
//!
//! Tests in this module assert both properties exhaustively; any future
//! change to this file must keep `worker/tile/lane count never changes
//! output bits` true.

use crate::camera_path::CameraPose;
use crate::scene::Scene;
use nerflex_image::{Color, Image};
use nerflex_math::pool::{default_workers, parallel_map};
use nerflex_math::simd::{LANES, LANES8};
use nerflex_math::transform::camera_to_world;
use nerflex_math::{Aabb, F32x4, F32x8, LaneWidth, Mask4, Mask8, Mat4, Ray, Vec3, Vec3x4, Vec3x8};

/// Maximum sphere-tracing steps per ray.
const MAX_STEPS: usize = 96;
/// Surface hit tolerance.
const HIT_EPS: f32 = 2e-3;
/// Default tile height (rows per parallel job). Small tiles keep the
/// dynamic job queue load-balanced; the value never affects output bits.
const DEFAULT_TILE_ROWS: usize = 4;

/// A ray/scene intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Distance along the ray.
    pub t: f32,
    /// World-space hit point.
    pub point: Vec3,
    /// World-space surface normal.
    pub normal: Vec3,
    /// Instance id of the hit object.
    pub object_id: usize,
}

/// Shared shading model: simple two-light Lambertian over the albedo.
pub fn shade(albedo: Color, normal: Vec3) -> Color {
    let key = Vec3::new(0.5, 0.8, 0.3).normalized();
    let fill = Vec3::new(-0.6, 0.4, -0.5).normalized();
    let diffuse = 0.75 * normal.dot(key).max(0.0) + 0.35 * normal.dot(fill).max(0.0);
    let light = 0.25 + diffuse;
    albedo.scale(light).clamped()
}

/// Four-lane Lambert shading: [`shade`] evaluated on packet lanes (the two
/// light dot products and the diffuse term run on [`F32x4`], the per-lane
/// albedo scale/clamp on scalars). Lane `i` is **bit-identical** to
/// `shade(albedos[i], normals.lane(i))` — the dot products use the scalar
/// association order and IEEE multiplication/addition are commutative
/// exactly, so packet shading never changes output bits.
pub fn shade_x4(albedos: [Color; LANES], normals: Vec3x4) -> [Color; LANES] {
    let key = Vec3::new(0.5, 0.8, 0.3).normalized();
    let fill = Vec3::new(-0.6, 0.4, -0.5).normalized();
    let diffuse = normals.dot(Vec3x4::splat(key)).max(F32x4::ZERO) * 0.75
        + normals.dot(Vec3x4::splat(fill)).max(F32x4::ZERO) * 0.35;
    let light = diffuse + 0.25;
    std::array::from_fn(|lane| albedos[lane].scale(light.lane(lane)).clamped())
}

/// Eight-lane Lambert shading: [`shade_x4`] widened to the wavefront
/// packet. Per-lane ops and association orders are unchanged, so lane `i`
/// is **bit-identical** to `shade(albedos[i], normals.lane(i))`.
pub fn shade_x8(albedos: [Color; LANES8], normals: Vec3x8) -> [Color; LANES8] {
    let key = Vec3::new(0.5, 0.8, 0.3).normalized();
    let fill = Vec3::new(-0.6, 0.4, -0.5).normalized();
    let diffuse = normals.dot(Vec3x8::splat(key)).max(F32x8::ZERO) * 0.75
        + normals.dot(Vec3x8::splat(fill)).max(F32x8::ZERO) * 0.35;
    let light = diffuse + 0.25;
    std::array::from_fn(|lane| albedos[lane].scale(light.lane(lane)).clamped())
}

/// Background colour for a ray direction (vertical gradient).
pub fn background(direction: Vec3) -> Color {
    let t = 0.5 * (direction.y + 1.0);
    Color::new(0.85, 0.9, 0.95).lerp(Color::new(0.55, 0.65, 0.8), t)
}

/// Sphere-traces the scene and returns the first hit, if any.
///
/// `boxes` are the per-object world bounding boxes (pass
/// [`object_boxes`] output); they let the marcher skip objects that cannot be
/// the nearest surface.
pub fn trace(scene: &Scene, boxes: &[Aabb], ray: &Ray, max_distance: f32) -> Option<Hit> {
    let mut t = 0.0f32;
    for _ in 0..MAX_STEPS {
        let p = ray.at(t);
        let (d, id) = scene.distance_bounded(p, boxes, f32::INFINITY);
        if d < HIT_EPS {
            let id = id?;
            let obj = scene.object(id)?;
            let normal = obj.world_sdf().normal(p);
            return Some(Hit { t, point: p, normal, object_id: id });
        }
        t += d.max(HIT_EPS * 0.5);
        if t > max_distance {
            break;
        }
    }
    None
}

/// Sphere-traces a packet of four rays at once, running the marching steps,
/// AABB rejection and SDF evaluation on SIMD lanes.
///
/// Lanes where `active` is clear are ignored (and report `None`). Each
/// active lane's result is **bit-identical** to [`trace`] on that ray: the
/// per-step positions, distances and termination decisions use the exact
/// scalar operations lane by lane, and hit resolution runs through the
/// packetised [`Sdf::normal_x4`] — lanes that hit the same object share six
/// packet distance evaluations instead of paying six scalar evaluations
/// each, and every lane's normal is bit-identical to the scalar
/// [`Sdf::normal`] at its hit point. Rays terminate independently; the
/// packet keeps stepping until every lane has hit, escaped or exhausted its
/// step budget.
pub fn trace_packet(
    scene: &Scene,
    boxes: &[Aabb],
    rays: &[Ray; LANES],
    max_distance: f32,
    mut active: Mask4,
) -> [Option<Hit>; LANES] {
    let origin =
        Vec3x4::from_lanes([rays[0].origin, rays[1].origin, rays[2].origin, rays[3].origin]);
    let direction = Vec3x4::from_lanes([
        rays[0].direction,
        rays[1].direction,
        rays[2].direction,
        rays[3].direction,
    ]);
    let mut t = F32x4::ZERO;
    // (t, hit point, object id) per lane, resolved to normals after the march.
    let mut pending: [Option<(f32, Vec3, usize)>; LANES] = [None; LANES];
    for _ in 0..MAX_STEPS {
        if !active.any() {
            break;
        }
        let p = origin + direction * t;
        let (d, ids) = scene.distance_bounded_x4(p, boxes, active);
        for lane in 0..LANES {
            if !active.lane(lane) {
                continue;
            }
            let dl = d.lane(lane);
            if dl < HIT_EPS {
                if let Some(id) = ids[lane].filter(|&id| scene.object(id).is_some()) {
                    pending[lane] = Some((t.lane(lane), p.lane(lane), id));
                }
                active.0[lane] = false;
            } else {
                let next = t.lane(lane) + dl.max(HIT_EPS * 0.5);
                t.set_lane(lane, next);
                if next > max_distance {
                    active.0[lane] = false;
                }
            }
        }
    }
    resolve_packet_hits(scene, pending)
}

/// Resolves pending packet hits: lanes that hit the same object are grouped
/// into one [`Sdf::normal_x4`] call (with the group's first point padding
/// the unused lanes), so a fully coherent packet estimates all four normals
/// for the cost of six packet distance evaluations — and shares one
/// [`PlacedObject::world_sdf`](crate::scene::PlacedObject) tree clone. Lane
/// independence of the packet ops keeps every normal bit-identical to the
/// scalar path regardless of how lanes are grouped.
fn resolve_packet_hits(
    scene: &Scene,
    pending: [Option<(f32, Vec3, usize)>; LANES],
) -> [Option<Hit>; LANES] {
    let mut hits = [None; LANES];
    let mut resolved = [false; LANES];
    for lane in 0..LANES {
        if resolved[lane] {
            continue;
        }
        let Some((_, point, id)) = pending[lane] else { continue };
        // Gather every later lane that hit the same object.
        let mut group = [lane; LANES];
        let mut points = [point; LANES];
        let mut count = 0;
        for (other, entry) in pending.iter().enumerate().skip(lane) {
            if let Some((_, other_point, other_id)) = entry {
                if !resolved[other] && *other_id == id {
                    group[count] = other;
                    points[count] = *other_point;
                    count += 1;
                }
            }
        }
        let sdf = scene.object(id).expect("validated during marching").world_sdf();
        let normals = sdf.normal_x4(Vec3x4::from_lanes(points));
        for (slot, &member) in group.iter().enumerate().take(count) {
            let (t, p, _) = pending[member].expect("grouped lanes are pending");
            hits[member] = Some(Hit { t, point: p, normal: normals.lane(slot), object_id: id });
            resolved[member] = true;
        }
    }
    hits
}

/// Sphere-traces a packet of eight rays at once — the wavefront layout of
/// [`trace_packet`] selected by [`LaneWidth::X8`].
///
/// The marching state (positions, distances, termination decisions) runs on
/// the eight-wide lanes; the SDF substrate is evaluated through
/// [`Scene::distance_bounded_x8`], which drives the four-wide SDF trees on
/// the packet's two halves. Per-lane ops are the exact scalar ops in the
/// same association order, so each active lane's result is
/// **bit-identical** to [`trace`] on that ray — the lane-width knob never
/// changes output bits.
pub fn trace_packet8(
    scene: &Scene,
    boxes: &[Aabb],
    rays: &[Ray; LANES8],
    max_distance: f32,
    mut active: Mask8,
) -> [Option<Hit>; LANES8] {
    let origin = Vec3x8::from_lanes(std::array::from_fn(|i| rays[i].origin));
    let direction = Vec3x8::from_lanes(std::array::from_fn(|i| rays[i].direction));
    let mut t = F32x8::ZERO;
    // (t, hit point, object id) per lane, resolved to normals after the march.
    let mut pending: [Option<(f32, Vec3, usize)>; LANES8] = [None; LANES8];
    for _ in 0..MAX_STEPS {
        if !active.any() {
            break;
        }
        let p = origin + direction * t;
        let (d, ids) = scene.distance_bounded_x8(p, boxes, active);
        for lane in 0..LANES8 {
            if !active.lane(lane) {
                continue;
            }
            let dl = d.lane(lane);
            if dl < HIT_EPS {
                if let Some(id) = ids[lane].filter(|&id| scene.object(id).is_some()) {
                    pending[lane] = Some((t.lane(lane), p.lane(lane), id));
                }
                active.0[lane] = false;
            } else {
                let next = t.lane(lane) + dl.max(HIT_EPS * 0.5);
                t.set_lane(lane, next);
                if next > max_distance {
                    active.0[lane] = false;
                }
            }
        }
    }
    resolve_packet_hits8(scene, pending)
}

/// [`resolve_packet_hits`] for the eight-wide packet: lanes that hit the
/// same object are grouped into [`Sdf::normal_x4`] calls of up to four
/// lanes each. Lane independence of the packet ops keeps every normal
/// bit-identical to the scalar path regardless of the grouping, exactly as
/// in the four-wide resolver.
fn resolve_packet_hits8(
    scene: &Scene,
    pending: [Option<(f32, Vec3, usize)>; LANES8],
) -> [Option<Hit>; LANES8] {
    let mut hits = [None; LANES8];
    let mut resolved = [false; LANES8];
    for lane in 0..LANES8 {
        if resolved[lane] {
            continue;
        }
        let Some((_, point, id)) = pending[lane] else { continue };
        // Gather up to four unresolved lanes (starting with this one) that
        // hit the same object into one normal_x4 call.
        let mut group = [lane; LANES];
        let mut points = [point; LANES];
        let mut count = 0;
        for (other, entry) in pending.iter().enumerate().skip(lane) {
            if count == LANES {
                break;
            }
            if let Some((_, other_point, other_id)) = entry {
                if !resolved[other] && *other_id == id {
                    group[count] = other;
                    points[count] = *other_point;
                    count += 1;
                }
            }
        }
        let sdf = scene.object(id).expect("validated during marching").world_sdf();
        let normals = sdf.normal_x4(Vec3x4::from_lanes(points));
        for (slot, &member) in group.iter().enumerate().take(count) {
            let (t, p, _) = pending[member].expect("grouped lanes are pending");
            hits[member] = Some(Hit { t, point: p, normal: normals.lane(slot), object_id: id });
            resolved[member] = true;
        }
    }
    hits
}

/// Computes the per-object world bounding boxes used by [`trace`].
pub fn object_boxes(scene: &Scene) -> Vec<Aabb> {
    scene.objects().iter().map(|o| o.world_bounding_box().inflate(1e-3)).collect()
}

/// Per-view primary-ray generator: hoists the camera basis out of the
/// per-pixel loop while producing rays bit-identical to [`primary_ray`].
#[derive(Debug, Clone, Copy)]
pub struct PrimaryRays {
    cam: Mat4,
    eye: Vec3,
    aspect: f32,
    tan_half: f32,
    width: usize,
    height: usize,
}

impl PrimaryRays {
    /// Prepares the generator for one pose and viewport.
    pub fn new(pose: &CameraPose, width: usize, height: usize) -> Self {
        Self {
            cam: camera_to_world(pose.eye, pose.target, pose.up),
            eye: pose.eye,
            aspect: width as f32 / height as f32,
            tan_half: (pose.fov_y * 0.5).tan(),
            width,
            height,
        }
    }

    /// The primary ray through pixel `(x, y)`.
    pub fn ray(&self, x: usize, y: usize) -> Ray {
        // Pixel centre in NDC, then into camera space on the z = -1 plane.
        let ndc_x = (x as f32 + 0.5) / self.width as f32 * 2.0 - 1.0;
        let ndc_y = 1.0 - (y as f32 + 0.5) / self.height as f32 * 2.0;
        let dir_cam = Vec3::new(ndc_x * self.tan_half * self.aspect, ndc_y * self.tan_half, -1.0);
        let dir_world = self.cam.transform_direction(dir_cam).normalized();
        Ray::new(self.eye, dir_world)
    }
}

/// Generates the primary ray through pixel `(x, y)` of a `width × height`
/// image for the given pose.
pub fn primary_ray(pose: &CameraPose, x: usize, y: usize, width: usize, height: usize) -> Ray {
    PrimaryRays::new(pose, width, height).ray(x, y)
}

/// The sphere-tracing distance cap for a scene viewed from `eye`.
fn view_max_distance(scene: &Scene, eye: Vec3) -> f32 {
    let scene_box = scene.bounding_box();
    if scene_box.is_empty() {
        20.0
    } else {
        eye.distance(scene_box.center()) + scene_box.diagonal() + 1.0
    }
}

/// Shades one pixel from its packet/scalar trace result.
fn shade_pixel(scene: &Scene, ray: &Ray, hit: Option<Hit>) -> (Color, Option<usize>) {
    match hit {
        Some(hit) => {
            let obj = scene.object(hit.object_id).expect("hit references a valid object");
            (shade(obj.albedo(hit.point, hit.normal), hit.normal), Some(hit.object_id))
        }
        None => (background(ray.direction), None),
    }
}

/// Renders the rows `y0..y1` into row-major colour/instance buffers, with
/// packets of `lane_width` rays across each row and a scalar tail. The lane
/// width never changes output bits (each packet lane is the exact scalar
/// trace/shade of that pixel).
#[allow(clippy::too_many_arguments)]
fn render_rows(
    scene: &Scene,
    boxes: &[Aabb],
    rays: &PrimaryRays,
    width: usize,
    y0: usize,
    y1: usize,
    max_distance: f32,
    lane_width: LaneWidth,
) -> (Vec<Color>, Vec<Option<usize>>) {
    let mut colors = Vec::with_capacity((y1 - y0) * width);
    let mut instances = Vec::with_capacity((y1 - y0) * width);
    for y in y0..y1 {
        let mut x = 0;
        match lane_width {
            // Four-wide ray packets across the row (the reference path).
            LaneWidth::X4 => {
                while x + LANES <= width {
                    let packet: [Ray; LANES] = std::array::from_fn(|i| rays.ray(x + i, y));
                    let hits = trace_packet(scene, boxes, &packet, max_distance, Mask4::ALL);
                    // Albedo lookups stay scalar (appearance is
                    // data-dependent); the Lambert term runs on lanes via
                    // `shade_x4`. Miss lanes carry a zero normal/albedo and
                    // are replaced by the background below.
                    let mut albedos = [Color::BLACK; LANES];
                    let mut normals = [Vec3::ZERO; LANES];
                    for lane in 0..LANES {
                        if let Some(hit) = hits[lane] {
                            let obj =
                                scene.object(hit.object_id).expect("hit references a valid object");
                            albedos[lane] = obj.albedo(hit.point, hit.normal);
                            normals[lane] = hit.normal;
                        }
                    }
                    let shaded = shade_x4(albedos, Vec3x4::from_lanes(normals));
                    push_packet_pixels(&mut colors, &mut instances, &hits, &shaded, &packet);
                    x += LANES;
                }
            }
            // Eight-wide wavefront packets across the row.
            LaneWidth::X8 => {
                while x + LANES8 <= width {
                    let packet: [Ray; LANES8] = std::array::from_fn(|i| rays.ray(x + i, y));
                    let hits = trace_packet8(scene, boxes, &packet, max_distance, Mask8::ALL);
                    let mut albedos = [Color::BLACK; LANES8];
                    let mut normals = [Vec3::ZERO; LANES8];
                    for lane in 0..LANES8 {
                        if let Some(hit) = hits[lane] {
                            let obj =
                                scene.object(hit.object_id).expect("hit references a valid object");
                            albedos[lane] = obj.albedo(hit.point, hit.normal);
                            normals[lane] = hit.normal;
                        }
                    }
                    let shaded = shade_x8(albedos, Vec3x8::from_lanes(normals));
                    push_packet_pixels(&mut colors, &mut instances, &hits, &shaded, &packet);
                    x += LANES8;
                }
            }
        }
        // Scalar fallback for the leftover pixels of the row.
        while x < width {
            let ray = rays.ray(x, y);
            let hit = trace(scene, boxes, &ray, max_distance);
            let (color, id) = shade_pixel(scene, &ray, hit);
            colors.push(color);
            instances.push(id);
            x += 1;
        }
    }
    (colors, instances)
}

/// Appends one packet's pixels to the row buffers: hit lanes take the
/// packet-shaded colour, miss lanes the background of their ray.
fn push_packet_pixels<const N: usize>(
    colors: &mut Vec<Color>,
    instances: &mut Vec<Option<usize>>,
    hits: &[Option<Hit>; N],
    shaded: &[Color; N],
    packet: &[Ray; N],
) {
    for lane in 0..N {
        match hits[lane] {
            Some(hit) => {
                colors.push(shaded[lane]);
                instances.push(Some(hit.object_id));
            }
            None => {
                colors.push(background(packet[lane].direction));
                instances.push(None);
            }
        }
    }
}

/// Renders a ground-truth view of the scene, returning the image and the
/// per-pixel instance map (which object, if any, covers each pixel).
///
/// This is the sequential entry point (`workers = 1`); see
/// [`render_view_parallel`] for the tiled multi-worker path, which produces
/// bit-identical output.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn render_view(
    scene: &Scene,
    pose: &CameraPose,
    width: usize,
    height: usize,
) -> (Image, Vec<Option<usize>>) {
    render_view_parallel(scene, pose, width, height, 1)
}

/// [`render_view`] with the row tiles fanned over `workers` pool threads
/// (`0` = one per core, `1` = the sequential path). Output is bit-for-bit
/// identical for every worker count.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn render_view_parallel(
    scene: &Scene,
    pose: &CameraPose,
    width: usize,
    height: usize,
    workers: usize,
) -> (Image, Vec<Option<usize>>) {
    render_view_tiled(scene, pose, width, height, workers, DEFAULT_TILE_ROWS)
}

/// [`render_view_parallel`] with an explicit packet width (see
/// [`LaneWidth`]); output is bit-for-bit identical for every combination.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn render_view_lanes(
    scene: &Scene,
    pose: &CameraPose,
    width: usize,
    height: usize,
    workers: usize,
    lane_width: LaneWidth,
) -> (Image, Vec<Option<usize>>) {
    render_view_tiled_lanes(scene, pose, width, height, workers, DEFAULT_TILE_ROWS, lane_width)
}

/// [`render_view_parallel`] with an explicit tile height (rows per job);
/// `workers` follows the same convention (`0` = one per core). Exposed so
/// tests can assert the determinism contract across tile sizes; output is
/// bit-for-bit identical for every `(workers, tile_rows)` pair.
///
/// # Panics
///
/// Panics if either dimension or `tile_rows` is zero.
pub fn render_view_tiled(
    scene: &Scene,
    pose: &CameraPose,
    width: usize,
    height: usize,
    workers: usize,
    tile_rows: usize,
) -> (Image, Vec<Option<usize>>) {
    render_view_tiled_lanes(scene, pose, width, height, workers, tile_rows, LaneWidth::X4)
}

/// [`render_view_tiled`] with an explicit packet width. The lane width is a
/// pure throughput knob: output is bit-for-bit identical for every
/// `(workers, tile_rows, lane_width)` combination.
///
/// # Panics
///
/// Panics if either dimension or `tile_rows` is zero.
pub fn render_view_tiled_lanes(
    scene: &Scene,
    pose: &CameraPose,
    width: usize,
    height: usize,
    workers: usize,
    tile_rows: usize,
    lane_width: LaneWidth,
) -> (Image, Vec<Option<usize>>) {
    assert!(width > 0 && height > 0, "render target must be non-zero");
    assert!(tile_rows > 0, "tile height must be non-zero");
    let boxes = object_boxes(scene);
    let max_distance = view_max_distance(scene, pose.eye);
    let rays = PrimaryRays::new(pose, width, height);
    let jobs = height.div_ceil(tile_rows);
    let workers = match workers {
        0 => default_workers(jobs),
        n => n,
    };
    let tiles = parallel_map(jobs, workers, |job| {
        let y0 = job * tile_rows;
        let y1 = (y0 + tile_rows).min(height);
        render_rows(scene, &boxes, &rays, width, y0, y1, max_distance, lane_width)
    });

    // Stitch the tiles back in job order (deterministic regardless of
    // which worker rendered which tile).
    let mut image = Image::new(width, height, Color::BLACK);
    let mut instance_map = vec![None; width * height];
    for (job, (colors, instances)) in tiles.into_iter().enumerate() {
        let y0 = job * tile_rows;
        for (offset, (color, id)) in colors.into_iter().zip(instances).enumerate() {
            let (x, y) = (offset % width, y0 + offset / width);
            image.set(x, y, color);
            instance_map[y * width + x] = id;
        }
    }
    (image, instance_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera_path::orbit_path;
    use crate::object::CanonicalObject;

    fn small_scene() -> Scene {
        Scene::with_objects(&[CanonicalObject::Hotdog], 1)
    }

    #[test]
    fn trace_hits_object_in_front_of_camera() {
        let scene = small_scene();
        let boxes = object_boxes(&scene);
        let center = scene.bounding_box().center();
        let eye = center + Vec3::new(0.0, 0.2, 3.0);
        let ray = Ray::new(eye, center - eye);
        let hit = trace(&scene, &boxes, &ray, 50.0).expect("should hit the hotdog");
        assert_eq!(hit.object_id, 0);
        assert!(hit.t > 1.0 && hit.t < 5.0);
        assert!((hit.normal.length() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn trace_misses_empty_direction() {
        let scene = small_scene();
        let boxes = object_boxes(&scene);
        let ray = Ray::new(Vec3::new(0.0, 5.0, 5.0), Vec3::Y);
        assert!(trace(&scene, &boxes, &ray, 50.0).is_none());
    }

    #[test]
    fn packet_trace_is_bit_identical_to_scalar_trace() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 4);
        let boxes = object_boxes(&scene);
        let pose = orbit_path(scene.bounding_box().center(), 3.0, 0.4, 5)[2];
        let rays = PrimaryRays::new(&pose, 24, 24);
        let max_distance = view_max_distance(&scene, pose.eye);
        for y in 0..24 {
            for x0 in (0..24).step_by(LANES) {
                let packet = [
                    rays.ray(x0, y),
                    rays.ray(x0 + 1, y),
                    rays.ray(x0 + 2, y),
                    rays.ray(x0 + 3, y),
                ];
                let packed = trace_packet(&scene, &boxes, &packet, max_distance, Mask4::ALL);
                for lane in 0..LANES {
                    let scalar = trace(&scene, &boxes, &packet[lane], max_distance);
                    match (packed[lane], scalar) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.t.to_bits(), b.t.to_bits(), "t at ({x0}+{lane},{y})");
                            assert_eq!(a.point, b.point);
                            assert_eq!(a.normal, b.normal);
                            assert_eq!(a.object_id, b.object_id);
                        }
                        (a, b) => panic!("hit mismatch at ({x0}+{lane},{y}): {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn packet8_trace_is_bit_identical_to_scalar_trace() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 4);
        let boxes = object_boxes(&scene);
        let pose = orbit_path(scene.bounding_box().center(), 3.0, 0.4, 5)[2];
        let rays = PrimaryRays::new(&pose, 24, 24);
        let max_distance = view_max_distance(&scene, pose.eye);
        for y in 0..24 {
            for x0 in (0..24).step_by(LANES8) {
                let packet: [Ray; LANES8] = std::array::from_fn(|i| rays.ray(x0 + i, y));
                let packed = trace_packet8(&scene, &boxes, &packet, max_distance, Mask8::ALL);
                for lane in 0..LANES8 {
                    let scalar = trace(&scene, &boxes, &packet[lane], max_distance);
                    match (packed[lane], scalar) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.t.to_bits(), b.t.to_bits(), "t at ({x0}+{lane},{y})");
                            assert_eq!(a.point, b.point);
                            assert_eq!(a.normal, b.normal);
                            assert_eq!(a.object_id, b.object_id);
                        }
                        (a, b) => panic!("hit mismatch at ({x0}+{lane},{y}): {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn inactive_packet8_lanes_stay_none() {
        let scene = small_scene();
        let boxes = object_boxes(&scene);
        let center = scene.bounding_box().center();
        let eye = center + Vec3::new(0.0, 0.2, 3.0);
        let ray = Ray::new(eye, center - eye);
        let mask = Mask8([true, false, true, false, false, true, false, false]);
        let hits = trace_packet8(&scene, &boxes, &[ray; LANES8], 50.0, mask);
        for (lane, hit) in hits.iter().enumerate() {
            assert_eq!(hit.is_some(), mask.lane(lane), "lane {lane}");
        }
    }

    #[test]
    fn lane_width_never_changes_rendered_bits() {
        // The odd width exercises the 8-wide packets, a 4-wide-only span
        // and the scalar tail in one image.
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 4);
        let pose = orbit_path(scene.bounding_box().center(), 3.0, 0.4, 6)[1];
        let (reference, reference_map) = render_view(&scene, &pose, 29, 23);
        for (workers, tile_rows) in [(1, 1), (2, 3), (3, 8), (0, 4)] {
            let (img, map) =
                render_view_tiled_lanes(&scene, &pose, 29, 23, workers, tile_rows, LaneWidth::X8);
            assert_eq!(img, reference, "workers={workers} tile_rows={tile_rows}");
            assert_eq!(map, reference_map, "workers={workers} tile_rows={tile_rows}");
        }
        let (img, map) = render_view_lanes(&scene, &pose, 29, 23, 0, LaneWidth::X8);
        assert_eq!(img, reference);
        assert_eq!(map, reference_map);
    }

    #[test]
    fn shade_x8_is_bit_identical_to_scalar_shade() {
        let albedos: [Color; LANES8] = std::array::from_fn(|i| {
            let v = i as f32 / LANES8 as f32;
            Color::new(v, 1.0 - v, 0.5 + 0.25 * v)
        });
        let normals: [Vec3; LANES8] = [
            Vec3::new(0.5, 0.8, 0.3).normalized(),
            Vec3::new(-0.6, 0.4, -0.5).normalized(),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::ZERO, // degenerate (miss-lane padding) must not poison others
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(0.3, -0.3, 0.9).normalized(),
            Vec3::new(-1.0, 1.0, -1.0).normalized(),
        ];
        let packed = shade_x8(albedos, Vec3x8::from_lanes(normals));
        for lane in 0..LANES8 {
            let scalar = shade(albedos[lane], normals[lane]);
            assert_eq!(packed[lane].r.to_bits(), scalar.r.to_bits(), "lane {lane}");
            assert_eq!(packed[lane].g.to_bits(), scalar.g.to_bits(), "lane {lane}");
            assert_eq!(packed[lane].b.to_bits(), scalar.b.to_bits(), "lane {lane}");
        }
    }

    #[test]
    fn inactive_packet_lanes_stay_none() {
        let scene = small_scene();
        let boxes = object_boxes(&scene);
        let center = scene.bounding_box().center();
        let eye = center + Vec3::new(0.0, 0.2, 3.0);
        let ray = Ray::new(eye, center - eye);
        let hits = trace_packet(
            &scene,
            &boxes,
            &[ray, ray, ray, ray],
            50.0,
            Mask4([true, false, true, false]),
        );
        assert!(hits[0].is_some() && hits[2].is_some());
        assert!(hits[1].is_none() && hits[3].is_none());
    }

    #[test]
    fn primary_rays_match_the_free_function() {
        let pose = CameraPose::new(Vec3::new(0.0, 1.0, 4.0), Vec3::ZERO, 55.0f32.to_radians());
        let gen = PrimaryRays::new(&pose, 31, 17);
        for (x, y) in [(0, 0), (30, 16), (15, 8), (7, 11)] {
            let a = gen.ray(x, y);
            let b = primary_ray(&pose, x, y, 31, 17);
            assert_eq!(a.origin, b.origin);
            assert_eq!(a.direction, b.direction);
        }
    }

    #[test]
    fn parallel_and_tiled_renders_are_bit_identical() {
        // The determinism contract: worker count, tile height and the
        // packet/scalar split (exercised by the odd width) never change a
        // single output bit.
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 4);
        let pose = orbit_path(scene.bounding_box().center(), 3.0, 0.4, 6)[1];
        let (reference, reference_map) = render_view(&scene, &pose, 33, 29);
        for (workers, tile_rows) in [(1, 1), (2, 3), (3, 8), (5, 64), (0, 4)] {
            let (img, map) = render_view_tiled(&scene, &pose, 33, 29, workers, tile_rows);
            assert_eq!(img, reference, "workers={workers} tile_rows={tile_rows}");
            assert_eq!(map, reference_map, "workers={workers} tile_rows={tile_rows}");
        }
        let (img, map) = render_view_parallel(&scene, &pose, 33, 29, 0);
        assert_eq!(img, reference);
        assert_eq!(map, reference_map);
    }

    #[test]
    fn rendered_view_contains_object_and_background() {
        let scene = small_scene();
        let pose = orbit_path(scene.bounding_box().center(), 2.5, 0.4, 8)[0];
        let (img, instances) = render_view(&scene, &pose, 48, 48);
        assert_eq!(img.width(), 48);
        let covered = instances.iter().filter(|i| i.is_some()).count();
        assert!(covered > 50, "object not visible: {covered} pixels");
        assert!(covered < 48 * 48, "object fills the whole frame");
        // All covered pixels reference object 0.
        assert!(instances.iter().flatten().all(|&id| id == 0));
    }

    #[test]
    fn instance_map_separates_two_objects() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 4);
        let pose = CameraPose::new(
            scene.bounding_box().center() + Vec3::new(0.0, 2.2, 4.5),
            scene.bounding_box().center(),
            60.0f32.to_radians(),
        );
        let (_, instances) = render_view(&scene, &pose, 64, 64);
        let mut seen = std::collections::HashSet::new();
        for id in instances.iter().flatten() {
            seen.insert(*id);
        }
        assert!(seen.contains(&0) && seen.contains(&1), "both objects visible: {seen:?}");
    }

    #[test]
    fn shade_x4_is_bit_identical_to_scalar_shade() {
        let albedos = [
            Color::new(0.8, 0.2, 0.1),
            Color::gray(0.5),
            Color::new(0.05, 0.9, 0.4),
            Color::new(1.0, 1.0, 0.0),
        ];
        let normals = [
            Vec3::new(0.5, 0.8, 0.3).normalized(),
            Vec3::new(-0.6, 0.4, -0.5).normalized(),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::ZERO, // degenerate (miss-lane padding) must not poison others
        ];
        let packed = shade_x4(albedos, Vec3x4::from_lanes(normals));
        for lane in 0..LANES {
            let scalar = shade(albedos[lane], normals[lane]);
            assert_eq!(packed[lane].r.to_bits(), scalar.r.to_bits(), "lane {lane}");
            assert_eq!(packed[lane].g.to_bits(), scalar.g.to_bits(), "lane {lane}");
            assert_eq!(packed[lane].b.to_bits(), scalar.b.to_bits(), "lane {lane}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_shade_x4_matches_scalar_shade(
            nx in -1f32..1.0, ny in -1f32..1.0, nz in -1f32..1.0,
            r in 0f32..1.0, g in 0f32..1.0, b in 0f32..1.0,
        ) {
            let albedos = [
                Color::new(r, g, b),
                Color::new(g, b, r),
                Color::gray(r),
                Color::new(1.0 - r, 1.0 - g, 1.0 - b),
            ];
            let normals = [
                Vec3::new(nx, ny, nz).normalized(),
                Vec3::new(-nx, nz, ny).normalized(),
                Vec3::new(ny, -nz, nx).normalized(),
                Vec3::ZERO,
            ];
            let packed = shade_x4(albedos, Vec3x4::from_lanes(normals));
            for lane in 0..LANES {
                let scalar = shade(albedos[lane], normals[lane]);
                proptest::prop_assert_eq!(packed[lane].r.to_bits(), scalar.r.to_bits());
                proptest::prop_assert_eq!(packed[lane].g.to_bits(), scalar.g.to_bits());
                proptest::prop_assert_eq!(packed[lane].b.to_bits(), scalar.b.to_bits());
            }
        }
    }

    #[test]
    fn shading_is_brighter_for_light_facing_normals() {
        let albedo = Color::gray(0.8);
        let lit = shade(albedo, Vec3::new(0.5, 0.8, 0.3).normalized());
        let unlit = shade(albedo, Vec3::new(-0.5, -0.8, -0.3).normalized());
        assert!(lit.luminance() > unlit.luminance());
    }

    #[test]
    fn background_varies_with_elevation() {
        let up = background(Vec3::Y);
        let down = background(-Vec3::Y);
        assert_ne!(up, down);
    }
}
