//! Ground-truth rendering by sphere-traced ray marching.
//!
//! The paper's ground truth is the photograph / the full NeRF render; ours is
//! an exact render of the procedural scene. The same shading model (two
//! directional lights + ambient over the procedural albedo) is shared with
//! the baked-mesh renderer so that quality differences measured between the
//! two come only from the baked representation (mesh granularity `g`,
//! texture patch size `p`) — exactly the degradation the NeRFlex profiler
//! models.

use crate::camera_path::CameraPose;
use crate::scene::Scene;
use nerflex_image::{Color, Image};
use nerflex_math::transform::camera_to_world;
use nerflex_math::{Aabb, Ray, Vec3};

/// Maximum sphere-tracing steps per ray.
const MAX_STEPS: usize = 96;
/// Surface hit tolerance.
const HIT_EPS: f32 = 2e-3;

/// A ray/scene intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Distance along the ray.
    pub t: f32,
    /// World-space hit point.
    pub point: Vec3,
    /// World-space surface normal.
    pub normal: Vec3,
    /// Instance id of the hit object.
    pub object_id: usize,
}

/// Shared shading model: simple two-light Lambertian over the albedo.
pub fn shade(albedo: Color, normal: Vec3) -> Color {
    let key = Vec3::new(0.5, 0.8, 0.3).normalized();
    let fill = Vec3::new(-0.6, 0.4, -0.5).normalized();
    let diffuse = 0.75 * normal.dot(key).max(0.0) + 0.35 * normal.dot(fill).max(0.0);
    let light = 0.25 + diffuse;
    albedo.scale(light).clamped()
}

/// Background colour for a ray direction (vertical gradient).
pub fn background(direction: Vec3) -> Color {
    let t = 0.5 * (direction.y + 1.0);
    Color::new(0.85, 0.9, 0.95).lerp(Color::new(0.55, 0.65, 0.8), t)
}

/// Sphere-traces the scene and returns the first hit, if any.
///
/// `boxes` are the per-object world bounding boxes (pass
/// [`object_boxes`] output); they let the marcher skip objects that cannot be
/// the nearest surface.
pub fn trace(scene: &Scene, boxes: &[Aabb], ray: &Ray, max_distance: f32) -> Option<Hit> {
    let mut t = 0.0f32;
    for _ in 0..MAX_STEPS {
        let p = ray.at(t);
        let (d, id) = scene.distance_bounded(p, boxes, f32::INFINITY);
        if d < HIT_EPS {
            let id = id?;
            let obj = scene.object(id)?;
            let normal = obj.world_sdf().normal(p);
            return Some(Hit { t, point: p, normal, object_id: id });
        }
        t += d.max(HIT_EPS * 0.5);
        if t > max_distance {
            break;
        }
    }
    None
}

/// Computes the per-object world bounding boxes used by [`trace`].
pub fn object_boxes(scene: &Scene) -> Vec<Aabb> {
    scene.objects().iter().map(|o| o.world_bounding_box().inflate(1e-3)).collect()
}

/// Generates the primary ray through pixel `(x, y)` of a `width × height`
/// image for the given pose.
pub fn primary_ray(pose: &CameraPose, x: usize, y: usize, width: usize, height: usize) -> Ray {
    let cam = camera_to_world(pose.eye, pose.target, pose.up);
    let aspect = width as f32 / height as f32;
    let tan_half = (pose.fov_y * 0.5).tan();
    // Pixel centre in NDC, then into camera space on the z = -1 plane.
    let ndc_x = (x as f32 + 0.5) / width as f32 * 2.0 - 1.0;
    let ndc_y = 1.0 - (y as f32 + 0.5) / height as f32 * 2.0;
    let dir_cam = Vec3::new(ndc_x * tan_half * aspect, ndc_y * tan_half, -1.0);
    let dir_world = cam.transform_direction(dir_cam).normalized();
    Ray::new(pose.eye, dir_world)
}

/// Renders a ground-truth view of the scene, returning the image and the
/// per-pixel instance map (which object, if any, covers each pixel).
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn render_view(
    scene: &Scene,
    pose: &CameraPose,
    width: usize,
    height: usize,
) -> (Image, Vec<Option<usize>>) {
    assert!(width > 0 && height > 0, "render target must be non-zero");
    let boxes = object_boxes(scene);
    let scene_box = scene.bounding_box();
    let max_distance = if scene_box.is_empty() {
        20.0
    } else {
        pose.eye.distance(scene_box.center()) + scene_box.diagonal() + 1.0
    };
    let mut instance_map = vec![None; width * height];
    let image = Image::from_fn(width, height, |x, y| {
        let ray = primary_ray(pose, x, y, width, height);
        match trace(scene, &boxes, &ray, max_distance) {
            Some(hit) => {
                instance_map[y * width + x] = Some(hit.object_id);
                let obj = scene.object(hit.object_id).expect("hit references a valid object");
                shade(obj.albedo(hit.point, hit.normal), hit.normal)
            }
            None => background(ray.direction),
        }
    });
    (image, instance_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera_path::orbit_path;
    use crate::object::CanonicalObject;

    fn small_scene() -> Scene {
        Scene::with_objects(&[CanonicalObject::Hotdog], 1)
    }

    #[test]
    fn trace_hits_object_in_front_of_camera() {
        let scene = small_scene();
        let boxes = object_boxes(&scene);
        let center = scene.bounding_box().center();
        let eye = center + Vec3::new(0.0, 0.2, 3.0);
        let ray = Ray::new(eye, center - eye);
        let hit = trace(&scene, &boxes, &ray, 50.0).expect("should hit the hotdog");
        assert_eq!(hit.object_id, 0);
        assert!(hit.t > 1.0 && hit.t < 5.0);
        assert!((hit.normal.length() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn trace_misses_empty_direction() {
        let scene = small_scene();
        let boxes = object_boxes(&scene);
        let ray = Ray::new(Vec3::new(0.0, 5.0, 5.0), Vec3::Y);
        assert!(trace(&scene, &boxes, &ray, 50.0).is_none());
    }

    #[test]
    fn rendered_view_contains_object_and_background() {
        let scene = small_scene();
        let pose = orbit_path(scene.bounding_box().center(), 2.5, 0.4, 8)[0];
        let (img, instances) = render_view(&scene, &pose, 48, 48);
        assert_eq!(img.width(), 48);
        let covered = instances.iter().filter(|i| i.is_some()).count();
        assert!(covered > 50, "object not visible: {covered} pixels");
        assert!(covered < 48 * 48, "object fills the whole frame");
        // All covered pixels reference object 0.
        assert!(instances.iter().flatten().all(|&id| id == 0));
    }

    #[test]
    fn instance_map_separates_two_objects() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 4);
        let pose = CameraPose::new(
            scene.bounding_box().center() + Vec3::new(0.0, 2.2, 4.5),
            scene.bounding_box().center(),
            60.0f32.to_radians(),
        );
        let (_, instances) = render_view(&scene, &pose, 64, 64);
        let mut seen = std::collections::HashSet::new();
        for id in instances.iter().flatten() {
            seen.insert(*id);
        }
        assert!(seen.contains(&0) && seen.contains(&1), "both objects visible: {seen:?}");
    }

    #[test]
    fn shading_is_brighter_for_light_facing_normals() {
        let albedo = Color::gray(0.8);
        let lit = shade(albedo, Vec3::new(0.5, 0.8, 0.3).normalized());
        let unlit = shade(albedo, Vec3::new(-0.5, -0.8, -0.3).normalized());
        assert!(lit.luminance() > unlit.luminance());
    }

    #[test]
    fn background_varies_with_elevation() {
        let up = background(Vec3::Y);
        let down = background(-Vec3::Y);
        assert_ne!(up, down);
    }
}
