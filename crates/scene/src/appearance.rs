//! Procedural surface appearance with controllable spatial-frequency content.
//!
//! Each canonical object pairs its SDF geometry with an [`Appearance`] whose
//! detail frequency controls how much high-frequency texture the ground-truth
//! images contain. The baking simulator band-limits this appearance according
//! to the texture patch size `p`, which is exactly the quality/size trade-off
//! the NeRFlex profiler models.

use nerflex_image::Color;
use nerflex_math::sampling::{fbm, value_noise};
use nerflex_math::Vec3;
use serde::{Deserialize, Serialize};

/// A procedural appearance: position (+ normal) → albedo colour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Appearance {
    /// A single flat colour (no texture detail).
    Solid {
        /// Albedo.
        color: Color,
    },
    /// Two-tone 3-D checker pattern.
    Checker {
        /// First colour.
        a: Color,
        /// Second colour.
        b: Color,
        /// Checker cells per unit length.
        scale: f32,
    },
    /// Value-noise marbling between two colours.
    Noise {
        /// Base colour.
        base: Color,
        /// Accent colour.
        accent: Color,
        /// Spatial frequency of the noise.
        frequency: f32,
        /// Number of fBm octaves (more octaves = more fine detail).
        octaves: u32,
    },
    /// Stripes along the Y axis (planks, hull strakes).
    Stripes {
        /// First colour.
        a: Color,
        /// Second colour.
        b: Color,
        /// Stripes per unit length.
        frequency: f32,
    },
    /// Regular stud/grid pattern (Lego-like), the highest-frequency option.
    Studs {
        /// Base colour.
        base: Color,
        /// Stud highlight colour.
        highlight: Color,
        /// Studs per unit length.
        frequency: f32,
    },
}

impl Appearance {
    /// Albedo at surface point `p` with surface normal `n`.
    pub fn albedo(&self, p: Vec3, n: Vec3) -> Color {
        match self {
            Appearance::Solid { color } => *color,
            Appearance::Checker { a, b, scale } => {
                let q = p * *scale;
                let parity =
                    (q.x.floor() as i64 + q.y.floor() as i64 + q.z.floor() as i64).rem_euclid(2);
                if parity == 0 {
                    *a
                } else {
                    *b
                }
            }
            Appearance::Noise { base, accent, frequency, octaves } => {
                let t = fbm(p, *frequency, *octaves);
                base.lerp(*accent, t)
            }
            Appearance::Stripes { a, b, frequency } => {
                let t = 0.5 + 0.5 * (p.y * frequency * std::f32::consts::TAU).sin();
                a.lerp(*b, t)
            }
            Appearance::Studs { base, highlight, frequency } => {
                // Bumps on up-facing surfaces, grid lines elsewhere.
                let gx = (p.x * frequency).fract().abs();
                let gz = (p.z * frequency).fract().abs();
                let cell = ((gx - 0.5).powi(2) + (gz - 0.5).powi(2)).sqrt();
                let stud = if cell < 0.3 { 1.0 } else { 0.0 };
                let facing_up = n.y.max(0.0);
                let line = if gx < 0.06 || gz < 0.06 { 0.6 } else { 0.0 };
                let t = (stud * facing_up + line).min(1.0);
                base.lerp(*highlight, t)
            }
        }
    }

    /// A nominal spatial-frequency score for this appearance in `[0, 1]`,
    /// used by tests and by the synthetic object catalogue to reason about
    /// expected segmentation decisions (the *measured* detail frequency comes
    /// from `nerflex_image::frequency` on rendered views).
    pub fn nominal_detail(&self) -> f32 {
        match self {
            Appearance::Solid { .. } => 0.0,
            Appearance::Checker { scale, .. } => (scale / 16.0).min(1.0),
            Appearance::Noise { frequency, octaves, .. } => {
                ((frequency * (1u32 << (*octaves).min(6)) as f32) / 128.0).min(1.0)
            }
            Appearance::Stripes { frequency, .. } => (frequency / 16.0).min(1.0),
            Appearance::Studs { frequency, .. } => (frequency / 8.0).clamp(0.5, 1.0),
        }
    }

    /// Band-limited albedo: the appearance evaluated with detail above the
    /// cut-off frequency removed (approximated by smoothing the procedural
    /// parameters). `cutoff` is in texels-per-unit — the baking simulator
    /// passes the texel density implied by the texture patch size so smaller
    /// patches yield blurrier baked colours.
    pub fn albedo_band_limited(&self, p: Vec3, n: Vec3, cutoff: f32) -> Color {
        match self {
            Appearance::Solid { color } => *color,
            Appearance::Checker { a, b, scale } => {
                if *scale <= cutoff {
                    self.albedo(p, n)
                } else {
                    // Pattern unresolvable: average of the two tones.
                    a.lerp(*b, 0.5)
                }
            }
            Appearance::Noise { base, accent, frequency, octaves } => {
                // Drop the octaves whose frequency exceeds the cut-off.
                let mut usable = 0u32;
                let mut f = *frequency;
                for _ in 0..*octaves {
                    if f <= cutoff {
                        usable += 1;
                    }
                    f *= 2.0;
                }
                if usable == 0 {
                    let t = value_noise(p, cutoff.min(*frequency));
                    return base.lerp(*accent, 0.25 + 0.5 * t);
                }
                let t = fbm(p, *frequency, usable);
                base.lerp(*accent, t)
            }
            Appearance::Stripes { a, b, frequency } => {
                if *frequency <= cutoff {
                    self.albedo(p, n)
                } else {
                    a.lerp(*b, 0.5)
                }
            }
            Appearance::Studs { base, highlight, frequency } => {
                if *frequency <= cutoff {
                    self.albedo(p, n)
                } else {
                    // Studs unresolvable: only the broad up-facing tint survives.
                    base.lerp(*highlight, 0.3 * n.y.max(0.0))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_ignores_position() {
        let a = Appearance::Solid { color: Color::new(0.2, 0.4, 0.6) };
        assert_eq!(a.albedo(Vec3::ZERO, Vec3::Y), a.albedo(Vec3::splat(3.7), Vec3::X));
        assert_eq!(a.nominal_detail(), 0.0);
    }

    #[test]
    fn checker_alternates_cells() {
        let a = Appearance::Checker { a: Color::BLACK, b: Color::WHITE, scale: 1.0 };
        let c0 = a.albedo(Vec3::new(0.5, 0.5, 0.5), Vec3::Y);
        let c1 = a.albedo(Vec3::new(1.5, 0.5, 0.5), Vec3::Y);
        assert_ne!(c0, c1);
    }

    #[test]
    fn noise_appearance_is_deterministic_and_bounded() {
        let a = Appearance::Noise {
            base: Color::BLACK,
            accent: Color::WHITE,
            frequency: 4.0,
            octaves: 4,
        };
        let p = Vec3::new(0.3, -0.7, 1.1);
        let c1 = a.albedo(p, Vec3::Y);
        let c2 = a.albedo(p, Vec3::Y);
        assert_eq!(c1, c2);
        assert!(c1.r >= 0.0 && c1.r <= 1.0);
    }

    #[test]
    fn higher_frequency_means_higher_nominal_detail() {
        let coarse = Appearance::Noise {
            base: Color::BLACK,
            accent: Color::WHITE,
            frequency: 2.0,
            octaves: 2,
        };
        let fine = Appearance::Noise {
            base: Color::BLACK,
            accent: Color::WHITE,
            frequency: 16.0,
            octaves: 5,
        };
        assert!(fine.nominal_detail() > coarse.nominal_detail());
    }

    #[test]
    fn band_limiting_removes_checker_contrast() {
        let a = Appearance::Checker { a: Color::BLACK, b: Color::WHITE, scale: 8.0 };
        // With a generous cut-off the pattern is preserved; with a tiny one it
        // collapses to the mean.
        let sharp = a.albedo_band_limited(Vec3::new(0.51, 0.0, 0.0), Vec3::Y, 32.0);
        let blurred = a.albedo_band_limited(Vec3::new(0.51, 0.0, 0.0), Vec3::Y, 1.0);
        assert_ne!(sharp, blurred);
        assert!((blurred.r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn band_limiting_is_identity_above_the_full_bandwidth() {
        let a = Appearance::Noise {
            base: Color::BLACK,
            accent: Color::WHITE,
            frequency: 4.0,
            octaves: 6,
        };
        let mut changed = 0;
        for i in 0..200 {
            let p = Vec3::new(i as f32 * 0.033, 0.0, 0.5);
            let full = a.albedo(p, Vec3::Y).r;
            // Cut-off above every octave frequency (4·2⁵ = 128): identical.
            assert!((a.albedo_band_limited(p, Vec3::Y, 256.0).r - full).abs() < 1e-6);
            // Cut-off below the base frequency: the texture loses detail.
            if (a.albedo_band_limited(p, Vec3::Y, 1.0).r - full).abs() > 1e-3 {
                changed += 1;
            }
        }
        assert!(changed > 100, "low cut-off changed only {changed}/200 samples");
    }

    #[test]
    fn studs_respond_to_normal_direction() {
        let a =
            Appearance::Studs { base: Color::gray(0.3), highlight: Color::WHITE, frequency: 6.0 };
        let up = a.albedo(Vec3::new(0.58, 1.0, 0.58), Vec3::Y);
        let side = a.albedo(Vec3::new(0.58, 1.0, 0.58), Vec3::X);
        assert!(up.luminance() >= side.luminance());
    }
}
