//! Camera poses and orbit trajectories.
//!
//! The evaluation rotates the scene "at a fixed speed (7.5 seconds per 360
//! degrees)" while rendering 2000 frames; training/test views are taken on
//! orbits at a few elevations, matching the synthetic 360° datasets.

use nerflex_math::transform::orbit_position;
use nerflex_math::{Aabb, Vec3};

/// A pinhole camera pose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraPose {
    /// Camera position.
    pub eye: Vec3,
    /// Point looked at.
    pub target: Vec3,
    /// Up direction.
    pub up: Vec3,
    /// Full vertical field of view in radians.
    pub fov_y: f32,
}

impl CameraPose {
    /// Creates a pose looking at `target` from `eye` with the given vertical
    /// field of view.
    pub fn new(eye: Vec3, target: Vec3, fov_y: f32) -> Self {
        Self { eye, target, up: Vec3::Y, fov_y }
    }
}

/// Generates `count` poses on an orbit of the given radius and elevation
/// angle (radians above the horizontal plane) around `center`.
///
/// # Panics
///
/// Panics when `count` is zero or `radius` is not positive.
pub fn orbit_path(center: Vec3, radius: f32, elevation: f32, count: usize) -> Vec<CameraPose> {
    assert!(count > 0, "orbit path needs at least one pose");
    assert!(radius > 0.0, "orbit radius must be positive");
    (0..count)
        .map(|i| {
            let azimuth = i as f32 / count as f32 * std::f32::consts::TAU;
            CameraPose::new(
                orbit_position(center, radius, azimuth, elevation),
                center,
                50.0f32.to_radians(),
            )
        })
        .collect()
}

/// Standard training trajectory around a scene: two interleaved orbits at
/// different elevations (mimicking the spread of the synthetic datasets'
/// training views), sized from the scene bounding box.
pub fn training_orbits(scene_bounds: &Aabb, views: usize) -> Vec<CameraPose> {
    let center = scene_bounds.center();
    let radius = (scene_bounds.diagonal() * 0.9).max(1.0);
    let low = orbit_path(center, radius, 0.35, views.div_ceil(2));
    let high = if views / 2 > 0 { orbit_path(center, radius, 0.8, views / 2) } else { Vec::new() };
    let mut all = Vec::with_capacity(views);
    let mut li = low.into_iter();
    let mut hi = high.into_iter();
    loop {
        match (li.next(), hi.next()) {
            (None, None) => break,
            (a, b) => {
                if let Some(a) = a {
                    all.push(a);
                }
                if let Some(b) = b {
                    all.push(b);
                }
            }
        }
    }
    all
}

/// The evaluation trajectory: `frames` poses completing a full revolution
/// every `seconds_per_rev` at `fps` frames per second (the paper uses 7.5 s
/// per revolution over 2000 frames).
pub fn rotation_frames(
    scene_bounds: &Aabb,
    frames: usize,
    seconds_per_rev: f32,
    fps: f32,
) -> Vec<CameraPose> {
    assert!(seconds_per_rev > 0.0 && fps > 0.0, "rotation speed must be positive");
    let center = scene_bounds.center();
    let radius = (scene_bounds.diagonal() * 0.9).max(1.0);
    (0..frames)
        .map(|i| {
            let t = i as f32 / fps;
            let azimuth = t / seconds_per_rev * std::f32::consts::TAU;
            CameraPose::new(
                orbit_position(center, radius, azimuth, 0.4),
                center,
                50.0f32.to_radians(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
    }

    #[test]
    fn orbit_keeps_constant_radius_and_target() {
        let poses = orbit_path(Vec3::new(1.0, 0.0, 0.0), 3.0, 0.3, 16);
        assert_eq!(poses.len(), 16);
        for p in &poses {
            assert!((p.eye.distance(p.target) - 3.0).abs() < 1e-4);
            assert_eq!(p.target, Vec3::new(1.0, 0.0, 0.0));
        }
    }

    #[test]
    fn orbit_poses_are_distinct() {
        let poses = orbit_path(Vec3::ZERO, 2.0, 0.0, 8);
        for i in 1..poses.len() {
            assert!(poses[i].eye.distance(poses[i - 1].eye) > 1e-3);
        }
    }

    #[test]
    fn training_orbits_produce_requested_count() {
        for n in [1usize, 2, 7, 20] {
            let poses = training_orbits(&unit_box(), n);
            assert_eq!(poses.len(), n, "requested {n}");
        }
    }

    #[test]
    fn rotation_frames_complete_revolution() {
        // 7.5 s per revolution at 20 fps = 150 frames per revolution.
        let frames = rotation_frames(&unit_box(), 150, 7.5, 20.0);
        assert_eq!(frames.len(), 150);
        // First and last+1 frame coincide (modulo the full circle).
        let first = frames[0].eye;
        let wrap = orbit_position(
            Vec3::ZERO,
            (unit_box().diagonal() * 0.9).max(1.0),
            std::f32::consts::TAU,
            0.4,
        );
        assert!((first - wrap).length() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one pose")]
    fn empty_orbit_panics() {
        let _ = orbit_path(Vec3::ZERO, 1.0, 0.0, 0);
    }
}
