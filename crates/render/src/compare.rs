//! Quality evaluation: baked-asset renders vs ray-marched ground truth.
//!
//! The profiler and every experiment measure "rendering quality" as the
//! similarity between what the device renders from the baked data and the
//! ground-truth view; this module packages that comparison.

use crate::renderer::{render_assets, RenderOptions};
use nerflex_bake::BakedAsset;
use nerflex_image::{lpips::lpips_proxy, metrics, Image};
use nerflex_scene::camera_path::CameraPose;
use nerflex_scene::scene::Scene;

/// Aggregated full-reference quality over a set of views.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualityReport {
    /// Mean SSIM across views (the paper's primary metric).
    pub ssim: f64,
    /// Mean PSNR in dB (finite even for identical images: capped at 99 dB).
    pub psnr: f64,
    /// Mean LPIPS-style perceptual distance (lower is better).
    pub lpips: f64,
    /// Number of views evaluated.
    pub views: usize,
}

/// Renders `assets` at every pose and compares against ground-truth renders
/// of `scene`, returning the averaged metrics.
///
/// # Panics
///
/// Panics when `poses` is empty or a render dimension is zero.
pub fn compare_against_ground_truth(
    assets: &[BakedAsset],
    scene: &Scene,
    poses: &[CameraPose],
    width: usize,
    height: usize,
    options: &RenderOptions,
) -> QualityReport {
    assert!(!poses.is_empty(), "at least one pose is required");
    let mut ssim_sum = 0.0;
    let mut psnr_sum = 0.0;
    let mut lpips_sum = 0.0;
    for pose in poses {
        let (ground_truth, _) = nerflex_scene::raymarch::render_view(scene, pose, width, height);
        let (render, _) = render_assets(assets, pose, width, height, options);
        let fused = metrics::quality_metrics(&ground_truth, &render);
        ssim_sum += fused.ssim;
        psnr_sum += fused.psnr.min(99.0);
        lpips_sum += lpips_proxy(&ground_truth, &render);
    }
    let n = poses.len() as f64;
    QualityReport {
        ssim: ssim_sum / n,
        psnr: psnr_sum / n,
        lpips: lpips_sum / n,
        views: poses.len(),
    }
}

/// Compares two already-rendered image sets (e.g. cached ground truth).
///
/// # Panics
///
/// Panics when the two sets differ in length or are empty.
pub fn compare_images(ground_truth: &[Image], rendered: &[Image]) -> QualityReport {
    assert_eq!(ground_truth.len(), rendered.len(), "image set length mismatch");
    assert!(!ground_truth.is_empty(), "at least one image pair is required");
    let mut ssim_sum = 0.0;
    let mut psnr_sum = 0.0;
    let mut lpips_sum = 0.0;
    for (gt, img) in ground_truth.iter().zip(rendered) {
        let fused = metrics::quality_metrics(gt, img);
        ssim_sum += fused.ssim;
        psnr_sum += fused.psnr.min(99.0);
        lpips_sum += lpips_proxy(gt, img);
    }
    let n = ground_truth.len() as f64;
    QualityReport {
        ssim: ssim_sum / n,
        psnr: psnr_sum / n,
        lpips: lpips_sum / n,
        views: ground_truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_bake::{bake_placed, BakeConfig};
    use nerflex_image::Color;
    use nerflex_scene::camera_path::orbit_path;
    use nerflex_scene::object::CanonicalObject;

    #[test]
    fn identical_image_sets_are_perfect() {
        let imgs = vec![Image::from_fn(32, 32, |x, y| Color::gray((x * y % 7) as f32 / 7.0))];
        let report = compare_images(&imgs, &imgs);
        assert_eq!(report.ssim, 1.0);
        assert_eq!(report.psnr, 99.0);
        assert!(report.lpips < 1e-9);
        assert_eq!(report.views, 1);
    }

    #[test]
    fn better_configuration_scores_better_end_to_end() {
        let scene = Scene::with_objects(&[CanonicalObject::Chair], 6);
        let poses = &orbit_path(scene.bounding_box().center(), 2.8, 0.4, 6)[0..2];
        let report_for = |g: u32, p: u32| {
            let assets: Vec<_> =
                scene.objects().iter().map(|o| bake_placed(o, BakeConfig::new(g, p))).collect();
            compare_against_ground_truth(&assets, &scene, poses, 64, 64, &RenderOptions::default())
        };
        let coarse = report_for(10, 3);
        let fine = report_for(36, 9);
        assert!(fine.ssim > coarse.ssim, "SSIM: {} -> {}", coarse.ssim, fine.ssim);
        assert!(fine.lpips < coarse.lpips, "LPIPS: {} -> {}", coarse.lpips, fine.lpips);
        assert_eq!(fine.views, 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_sets_panic() {
        let a = vec![Image::new(8, 8, Color::BLACK)];
        let _ = compare_images(&a, &[]);
    }
}
