//! Rendering baked assets into images.

use crate::camera::RasterCamera;
use crate::framebuffer::Framebuffer;
use crate::raster::{draw_triangle, RasterStats, RasterVertex};
use nerflex_bake::BakedAsset;
use nerflex_image::{Color, Image};
use nerflex_math::Vec2;
use nerflex_scene::camera_path::CameraPose;
use nerflex_scene::raymarch::{background, shade};

/// Options controlling how baked assets are shaded and composited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderOptions {
    /// Shade fragments with the asset's deferred MLP (when present) instead
    /// of the analytic shading model. Used by the MLP ablation benchmark.
    pub use_mlp_shading: bool,
    /// Worker count for the row-parallel splat compositor (0 = one worker
    /// per available core). Never changes output bits
    /// (`docs/determinism.md`).
    pub splat_workers: usize,
    /// Lane width for the compositor's per-pixel gaussian evaluation.
    /// Never changes output bits.
    pub splat_lanes: nerflex_math::simd::LaneWidth,
}

/// Workload statistics for one rendered frame, consumed by the device FPS
/// model (`nerflex-device`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderStats {
    /// Quads submitted to the rasteriser across all assets.
    pub quads_submitted: usize,
    /// Triangles that survived clipping.
    pub triangles_rasterized: usize,
    /// Fragments that passed the depth test and were shaded.
    pub fragments_shaded: usize,
    /// Splats projected into the viewport and composited.
    pub splats_submitted: usize,
}

/// Renders a set of baked assets from `pose` into a `width × height` image.
///
/// Returns the image and the frame's workload statistics.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn render_assets(
    assets: &[BakedAsset],
    pose: &CameraPose,
    width: usize,
    height: usize,
    options: &RenderOptions,
) -> (Image, RenderStats) {
    assert!(width > 0 && height > 0, "render target must be non-zero");
    let camera = RasterCamera::new(pose, width, height);
    let mut framebuffer = Framebuffer::new(width, height, Color::BLACK);
    let mut raster_stats = RasterStats::default();
    let mut stats = RenderStats::default();

    for asset in assets {
        let placement = asset.placement;
        for (q, quad) in asset.mesh.quads.iter().enumerate() {
            stats.quads_submitted += 1;
            // Build the four corner vertices in world space with patch UVs.
            let corner = |i: usize, u: f32, v: f32| -> RasterVertex {
                let local = asset.mesh.positions[quad.vertices[i] as usize];
                let normal = asset.mesh.normals[quad.vertices[i] as usize];
                RasterVertex {
                    position: placement.to_world(local),
                    uv: Vec2::new(u, v),
                    normal: placement.rotate_direction(normal),
                }
            };
            let v0 = corner(0, 0.0, 0.0);
            let v1 = corner(1, 1.0, 0.0);
            let v2 = corner(2, 1.0, 1.0);
            let v3 = corner(3, 0.0, 1.0);
            let mut shade_fragment = |frag: crate::raster::Fragment| -> Color {
                let albedo = asset.atlas.sample(q, frag.uv.x, frag.uv.y);
                match (&asset.mlp, options.use_mlp_shading) {
                    (Some(mlp), true) => mlp.shade(frag.normal, albedo),
                    _ => shade(albedo, frag.normal),
                }
            };
            draw_triangle(
                &camera,
                &mut framebuffer,
                &[v0, v1, v2],
                &mut raster_stats,
                &mut shade_fragment,
            );
            draw_triangle(
                &camera,
                &mut framebuffer,
                &[v0, v2, v3],
                &mut raster_stats,
                &mut shade_fragment,
            );
        }
    }

    stats.triangles_rasterized = raster_stats.triangles_rasterized;
    stats.fragments_shaded = raster_stats.fragments_shaded;
    framebuffer.fill_background(|x, y| {
        let ray = nerflex_scene::raymarch::primary_ray(pose, x, y, width, height);
        background(ray.direction)
    });
    // Splat-family assets composite after the background fill: they blend
    // over sky and rasterised geometry alike, occluded per pixel by the
    // z-buffer (see crate::splat for the determinism contract).
    stats.splats_submitted =
        crate::splat::composite_splats(assets, &camera, &mut framebuffer, options);
    (framebuffer.into_image(), stats)
}

/// Convenience wrapper: world-space eye-to-target distance heuristic for
/// whether an asset is in front of the camera at all (used by the device
/// session simulator to estimate per-frame workload without shading).
/// Counts device-side primitives — mesh quads plus splats.
pub fn visible_quads(assets: &[BakedAsset], pose: &CameraPose) -> usize {
    assets
        .iter()
        .map(|asset| {
            let bb = asset.world_bounding_box();
            let to_center = (bb.center() - pose.eye).normalized();
            let view_dir = (pose.target - pose.eye).normalized();
            if to_center.dot(view_dir) > 0.0 {
                asset.primitive_count()
            } else {
                0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_bake::{bake_object, bake_placed, BakeConfig};
    use nerflex_image::metrics;
    use nerflex_math::Vec3;
    use nerflex_scene::camera_path::orbit_path;
    use nerflex_scene::object::CanonicalObject;
    use nerflex_scene::raymarch::render_view;
    use nerflex_scene::scene::Scene;

    fn hotdog_asset(config: BakeConfig) -> BakedAsset {
        bake_object(&CanonicalObject::Hotdog.build(), config)
    }

    fn front_pose(assets: &[BakedAsset]) -> CameraPose {
        let bb = assets
            .iter()
            .map(BakedAsset::world_bounding_box)
            .fold(nerflex_math::Aabb::empty(), |acc, b| acc.union(&b));
        orbit_path(bb.center(), bb.diagonal().max(1.0) * 1.4, 0.4, 8)[0]
    }

    #[test]
    fn baked_object_is_visible_in_render() {
        let asset = hotdog_asset(BakeConfig::new(16, 5));
        let pose = front_pose(std::slice::from_ref(&asset));
        let (img, stats) = render_assets(&[asset], &pose, 64, 64, &RenderOptions::default());
        assert!(stats.quads_submitted > 0);
        assert!(stats.fragments_shaded > 100, "object should cover pixels: {stats:?}");
        // The image is not pure background: some pixel differs from the sky gradient.
        let bg_only = Image::from_fn(64, 64, |x, y| {
            let ray = nerflex_scene::raymarch::primary_ray(&pose, x, y, 64, 64);
            background(ray.direction)
        });
        assert!(metrics::mse(&img, &bg_only) > 1e-4);
    }

    #[test]
    fn finer_bakes_match_ground_truth_better() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog], 1);
        let obj = &scene.objects()[0];
        let pose = orbit_path(scene.bounding_box().center(), 2.6, 0.4, 8)[0];
        let (gt, _) = render_view(&scene, &pose, 72, 72);
        let ssim_for = |g: u32, p: u32| {
            let asset = bake_placed(obj, BakeConfig::new(g, p));
            let (img, _) = render_assets(&[asset], &pose, 72, 72, &RenderOptions::default());
            metrics::ssim(&gt, &img)
        };
        let coarse = ssim_for(10, 3);
        let fine = ssim_for(40, 9);
        assert!(fine > coarse, "quality must improve with (g,p): {coarse} -> {fine}");
        assert!(fine > 0.55, "fine bake should be reasonably close to ground truth: {fine}");
    }

    #[test]
    fn mlp_shading_is_close_to_analytic_shading() {
        let mut asset = hotdog_asset(BakeConfig::new(14, 5));
        asset.mlp = Some(nerflex_bake::TinyMlp::shading_model(3));
        let pose = front_pose(std::slice::from_ref(&asset));
        let (analytic, _) = render_assets(
            std::slice::from_ref(&asset),
            &pose,
            48,
            48,
            &RenderOptions { use_mlp_shading: false, ..RenderOptions::default() },
        );
        let (mlp, _) = render_assets(
            &[asset],
            &pose,
            48,
            48,
            &RenderOptions { use_mlp_shading: true, ..RenderOptions::default() },
        );
        let ssim = metrics::ssim(&analytic, &mlp);
        assert!(ssim > 0.8, "MLP shading diverges from analytic shading: SSIM {ssim}");
    }

    #[test]
    fn multiple_assets_render_without_interference() {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 4);
        let assets: Vec<BakedAsset> =
            scene.objects().iter().map(|o| bake_placed(o, BakeConfig::new(14, 3))).collect();
        let pose = CameraPose::new(
            scene.bounding_box().center() + Vec3::new(0.0, 2.5, 5.0),
            scene.bounding_box().center(),
            60.0f32.to_radians(),
        );
        let (_, stats) = render_assets(&assets, &pose, 64, 64, &RenderOptions::default());
        let total_quads: usize = assets.iter().map(|a| a.mesh.quad_count()).sum();
        assert_eq!(stats.quads_submitted, total_quads);
        assert!(stats.fragments_shaded > 0);
    }

    #[test]
    fn visible_quads_counts_assets_in_front() {
        let asset = hotdog_asset(BakeConfig::new(12, 3));
        let pose = front_pose(std::slice::from_ref(&asset));
        assert_eq!(visible_quads(std::slice::from_ref(&asset), &pose), asset.mesh.quad_count());
        // Looking the other way sees nothing.
        let away = CameraPose::new(pose.eye, pose.eye + (pose.eye - pose.target), pose.fov_y);
        assert_eq!(visible_quads(std::slice::from_ref(&asset), &away), 0);
    }
}
