//! Deterministic gaussian-splat compositing — the device-side half of the
//! splat representation family (ISSUE 10; extraction lives in
//! `nerflex_bake::splat`, the family design in `docs/splats.md`).
//!
//! Splats are composited after rasterisation and background fill: every
//! splat is projected to a screen-space 2×2 gaussian footprint, all splats
//! of all assets are depth-sorted **once, globally**, and each pixel blends
//! them back-to-front over whatever the z-buffer left there (splats behind
//! rasterised geometry are occluded per pixel; splats never write depth).
//!
//! # The determinism contract (`docs/determinism.md`)
//!
//! Worker, tile and lane counts never change output bits:
//!
//! * the back-to-front order is a **fixed global sort**: depth descending
//!   by `f32::total_cmp`, ties broken by (asset index, splat index) — a
//!   pure function of the input, independent of execution;
//! * rows are composited in parallel over the shared `WorkerPool`; each
//!   pixel's entire blend chain happens inside its own row job in sorted
//!   splat order, and rows are stitched in job order, so worker counts are
//!   invisible by construction;
//! * the per-pixel quadratic form is evaluated on [`F32x4`]/[`F32x8`]
//!   packets whose lanes are exact scalar arithmetic, and the `exp` +
//!   alpha blend runs scalar per pixel in column order — so lane width is
//!   pure batching and `X4`/`X8` produce bit-identical frames.

use crate::camera::RasterCamera;
use crate::framebuffer::Framebuffer;
use crate::renderer::RenderOptions;
use nerflex_bake::BakedAsset;
use nerflex_image::Color;
use nerflex_math::pool::{default_workers, parallel_map};
use nerflex_math::simd::{F32x4, F32x8, LaneWidth};
use nerflex_math::Vec3;

/// Mahalanobis-distance² cut-off: pixels beyond 3σ contribute < 1.2% alpha
/// and are skipped (also bounds the conservative screen rectangle).
const Q_CUTOFF: f32 = 9.0;

/// Isotropic floor (in pixels²) added to the screen-space covariance so
/// edge-on splats stay at least ~half a pixel wide and the matrix stays
/// invertible.
const FOOTPRINT_FLOOR: f32 = 0.3;

/// One splat projected to the screen: inverse 2×2 covariance, conservative
/// pixel rectangle, premultiplied colour inputs.
struct ProjectedSplat {
    cx: f32,
    cy: f32,
    depth: f32,
    /// Inverse-covariance entries: q = ia·dx² + ib2·dx·dy + ic·dy².
    ia: f32,
    ib2: f32,
    ic: f32,
    color: Color,
    alpha: f32,
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
}

/// Projects one splat of `asset` into screen space. Returns `None` when
/// the splat (or an axis probe) is behind the near plane or its footprint
/// misses the viewport.
fn project_splat(
    asset: &BakedAsset,
    splat: &nerflex_bake::Splat,
    camera: &RasterCamera,
) -> Option<ProjectedSplat> {
    let placement = asset.placement;
    let center_world = placement.to_world(splat.position);
    let (pc, depth) = camera.project(center_world)?;

    // The splat's three scaled local axes (its own Y-rotation, same
    // convention as Placement), carried into world space.
    let (sr, cr) = splat.rotation_y.sin_cos();
    let axes = [
        Vec3::new(cr, 0.0, -sr) * splat.scale.x,
        Vec3::new(0.0, 1.0, 0.0) * splat.scale.y,
        Vec3::new(sr, 0.0, cr) * splat.scale.z,
    ];
    // Screen-space covariance Σ = Σᵢ dᵢ dᵢᵀ + λI from the three projected
    // axis offsets (a first-order footprint, exact for axis-aligned views
    // and conservative elsewhere thanks to the isotropic floor).
    let (mut a, mut b, mut c) = (FOOTPRINT_FLOOR, 0.0f32, FOOTPRINT_FLOOR);
    for axis in axes {
        let world = placement.rotate_direction(axis) * placement.scale;
        let (pa, _) = camera.project(center_world + world)?;
        let d = pa - pc;
        a += d.x * d.x;
        b += d.x * d.y;
        c += d.y * d.y;
    }
    let det = a * c - b * b;
    if det <= 1e-12 || !det.is_finite() {
        return None;
    }

    // Conservative radius: 3σ of the major axis.
    let half_diff = 0.5 * (a - c);
    let lambda_max = 0.5 * (a + c) + (half_diff * half_diff + b * b).sqrt();
    let radius = 3.0 * lambda_max.sqrt();
    let (w, h) = (camera.width() as f32, camera.height() as f32);
    if pc.x + radius < 0.0 || pc.x - radius >= w || pc.y + radius < 0.0 || pc.y - radius >= h {
        return None;
    }
    let clamp_axis = |v: f32, hi: usize| (v.max(0.0) as usize).min(hi);
    Some(ProjectedSplat {
        cx: pc.x,
        cy: pc.y,
        depth,
        ia: c / det,
        ib2: -2.0 * b / det,
        ic: a / det,
        color: Color::new(
            splat.color[0] as f32 / 255.0,
            splat.color[1] as f32 / 255.0,
            splat.color[2] as f32 / 255.0,
        ),
        alpha: splat.opacity as f32 / 255.0,
        x0: clamp_axis((pc.x - radius).floor(), camera.width() - 1),
        x1: clamp_axis((pc.x + radius).ceil(), camera.width() - 1),
        y0: clamp_axis((pc.y - radius).floor(), camera.height() - 1),
        y1: clamp_axis((pc.y + radius).ceil(), camera.height() - 1),
    })
}

/// Blends every splat touching row `y` into `colors`, in the fixed sorted
/// order. The quadratic form is evaluated on lanes; the `exp` and blend
/// run scalar per pixel in column order, so the blend chain per pixel is
/// identical for every lane width.
fn composite_row(
    y: usize,
    colors: &mut [Color],
    depths: &[f32],
    splats: &[ProjectedSplat],
    lanes: LaneWidth,
) {
    let py = y as f32 + 0.5;
    for s in splats {
        if y < s.y0 || y > s.y1 {
            continue;
        }
        let dy = py - s.cy;
        let dy_term = dy * dy * s.ic;
        // The depth test negates the scalar *pass* condition so a NaN depth
        // skips the pixel, matching the rasteriser's convention.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let mut blend = |x: usize, q: f32| {
            if q > Q_CUTOFF || !(s.depth < depths[x]) {
                return;
            }
            let a = s.alpha * (-0.5 * q).exp();
            let dst = colors[x];
            colors[x] = Color::new(
                dst.r * (1.0 - a) + s.color.r * a,
                dst.g * (1.0 - a) + s.color.g * a,
                dst.b * (1.0 - a) + s.color.b * a,
            );
        };
        // Each lane computes exactly the scalar expression
        // `dx·dx·ia + dx·ib2·dy + dy·dy·ic`, so packet width is pure
        // batching (docs/determinism.md).
        match lanes {
            LaneWidth::X4 => {
                let mut x = s.x0;
                while x <= s.x1 {
                    let dx = F32x4(std::array::from_fn(|i| (x + i) as f32 + 0.5 - s.cx));
                    let q = dx * dx * s.ia + dx * s.ib2 * dy + dy_term;
                    for i in 0..4 {
                        if x + i > s.x1 {
                            break;
                        }
                        blend(x + i, q.lane(i));
                    }
                    x += 4;
                }
            }
            LaneWidth::X8 => {
                let mut x = s.x0;
                while x <= s.x1 {
                    let dx = F32x8(std::array::from_fn(|i| (x + i) as f32 + 0.5 - s.cx));
                    let q = dx * dx * s.ia + dx * s.ib2 * dy + dy_term;
                    for i in 0..8 {
                        if x + i > s.x1 {
                            break;
                        }
                        blend(x + i, q.lane(i));
                    }
                    x += 8;
                }
            }
        }
    }
}

/// Composites every splat-family asset into the framebuffer, back-to-front
/// over the rasterised geometry and background. Returns the number of
/// splats submitted (projected into the viewport).
///
/// Runs after `fill_background`: splats blend over the sky where no
/// geometry was drawn and are occluded per pixel where the z-buffer is
/// nearer. Colours only — the depth buffer is never written.
pub fn composite_splats(
    assets: &[BakedAsset],
    camera: &RasterCamera,
    framebuffer: &mut Framebuffer,
    options: &RenderOptions,
) -> usize {
    let mut projected: Vec<ProjectedSplat> = Vec::new();
    for asset in assets {
        let Some(cloud) = &asset.splats else { continue };
        for splat in cloud.splats() {
            if let Some(p) = project_splat(asset, splat, camera) {
                projected.push(p);
            }
        }
    }
    if projected.is_empty() {
        return 0;
    }
    // The fixed global back-to-front order: depth descending
    // (total_cmp — total and portable), ties by projection order, which is
    // (asset index, splat index). The sort is stable, so equal-depth
    // splats keep that order.
    projected.sort_by(|p, q| q.depth.total_cmp(&p.depth));
    let submitted = projected.len();

    let (width, height) = (camera.width(), camera.height());
    let workers =
        if options.splat_workers == 0 { default_workers(height) } else { options.splat_workers };
    // Row-parallel compositing: each row job reads the (frozen) colour and
    // depth buffers and returns its blended row; rows stitch in job order.
    let (image, depths) = (framebuffer.color(), framebuffer.depth());
    let rows: Vec<Option<Vec<Color>>> = parallel_map(height, workers, |y| {
        if !projected.iter().any(|s| y >= s.y0 && y <= s.y1) {
            return None;
        }
        let mut colors: Vec<Color> = (0..width).map(|x| image.get(x, y)).collect();
        composite_row(
            y,
            &mut colors,
            &depths[y * width..(y + 1) * width],
            &projected,
            options.splat_lanes,
        );
        Some(colors)
    });
    let image = framebuffer.color_mut();
    for (y, row) in rows.into_iter().enumerate() {
        let Some(row) = row else { continue };
        for (x, color) in row.into_iter().enumerate() {
            image.set(x, y, color);
        }
    }
    submitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::renderer::render_assets;
    use nerflex_bake::{bake_object, BakeConfig};
    use nerflex_image::Image;
    use nerflex_scene::camera_path::orbit_path;
    use nerflex_scene::object::CanonicalObject;

    fn splat_asset(count: u32) -> BakedAsset {
        bake_object(&CanonicalObject::Hotdog.build(), BakeConfig::splat(20, count))
    }

    fn front_pose(asset: &BakedAsset) -> nerflex_scene::camera_path::CameraPose {
        let bb = asset.world_bounding_box();
        orbit_path(bb.center(), bb.diagonal().max(1.0) * 1.4, 0.4, 8)[0]
    }

    fn render_with(
        asset: &BakedAsset,
        options: &RenderOptions,
    ) -> (Image, crate::renderer::RenderStats) {
        let pose = front_pose(asset);
        render_assets(std::slice::from_ref(asset), &pose, 64, 64, options)
    }

    #[test]
    fn splat_asset_is_visible_in_render() {
        let asset = splat_asset(1024);
        let (img, stats) = render_with(&asset, &RenderOptions::default());
        assert_eq!(stats.quads_submitted, 0, "splat assets carry no mesh");
        assert!(stats.splats_submitted > 0, "cloud must reach the compositor");
        // The image is not pure background.
        let pose = front_pose(&asset);
        let bg = Image::from_fn(64, 64, |x, y| {
            let ray = nerflex_scene::raymarch::primary_ray(&pose, x, y, 64, 64);
            nerflex_scene::raymarch::background(ray.direction)
        });
        assert!(nerflex_image::metrics::mse(&img, &bg) > 1e-4);
    }

    #[test]
    fn output_is_bit_identical_across_workers_and_lanes() {
        // The acceptance criterion: {1, 4, auto} workers × {X4, X8} lanes
        // all produce the same bits.
        let asset = splat_asset(768);
        let reference =
            render_with(&asset, &RenderOptions { splat_workers: 1, ..RenderOptions::default() }).0;
        for workers in [1usize, 4, 0] {
            for lanes in [LaneWidth::X4, LaneWidth::X8] {
                let options = RenderOptions {
                    splat_workers: workers,
                    splat_lanes: lanes,
                    ..RenderOptions::default()
                };
                let img = render_with(&asset, &options).0;
                assert!(
                    reference.pixels().iter().zip(img.pixels()).all(|(a, b)| {
                        a.r.to_bits() == b.r.to_bits()
                            && a.g.to_bits() == b.g.to_bits()
                            && a.b.to_bits() == b.b.to_bits()
                    }),
                    "bits changed at workers={workers}, lanes={lanes:?}"
                );
            }
        }
    }

    #[test]
    fn more_splats_approximate_the_object_better() {
        let model = CanonicalObject::Hotdog.build();
        let coarse = bake_object(&model, BakeConfig::splat(20, 128));
        let fine = bake_object(&model, BakeConfig::splat(20, 4096));
        let pose = front_pose(&fine);
        // A fine mesh bake is the family-independent yardstick.
        let mesh_ref = bake_object(&model, BakeConfig::new(40, 9));
        let (reference, _) = render_assets(&[mesh_ref], &pose, 64, 64, &RenderOptions::default());
        let ssim_of = |asset: &BakedAsset| {
            let (img, _) = render_assets(
                std::slice::from_ref(asset),
                &pose,
                64,
                64,
                &RenderOptions::default(),
            );
            nerflex_image::metrics::ssim(&reference, &img)
        };
        let lo = ssim_of(&coarse);
        let hi = ssim_of(&fine);
        assert!(hi > lo, "quality must grow with the splat count: {lo} -> {hi}");
    }

    #[test]
    fn splats_are_occluded_by_nearer_geometry() {
        // A mesh asset in front of a splat asset: pixels covered by the
        // mesh must keep the mesh colour wherever the mesh is nearer.
        let mesh = bake_object(&CanonicalObject::Chair.build(), BakeConfig::new(20, 5));
        let splats = splat_asset(512);
        let pose = front_pose(&mesh);
        let (mesh_only, _) =
            render_assets(std::slice::from_ref(&mesh), &pose, 48, 48, &RenderOptions::default());
        let (both, stats) =
            render_assets(&[mesh.clone(), splats], &pose, 48, 48, &RenderOptions::default());
        assert!(stats.splats_submitted > 0);
        // Somewhere the splat cloud must be visible…
        assert!(nerflex_image::metrics::mse(&both, &mesh_only) > 0.0);
        // …but the frame must not be dominated by splats bleeding through
        // the mesh: most mesh pixels survive (occlusion works).
        let same = mesh_only.pixels().iter().zip(both.pixels()).filter(|(a, b)| a == b).count();
        assert!(same * 2 > mesh_only.pixels().len(), "occlusion lost: only {same} pixels kept");
    }
}
