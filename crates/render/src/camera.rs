//! Camera matrices for the rasteriser.

use nerflex_math::transform::{look_at, ndc_to_viewport, perspective};
use nerflex_math::{Mat4, Vec2, Vec3, Vec4};
use nerflex_scene::camera_path::CameraPose;

/// Near clip plane distance.
pub const NEAR: f32 = 0.05;
/// Far clip plane distance.
pub const FAR: f32 = 100.0;

/// Precomputed view–projection state for one camera pose and viewport.
#[derive(Debug, Clone, Copy)]
pub struct RasterCamera {
    view_proj: Mat4,
    width: usize,
    height: usize,
    /// Camera position (world space), used for view-dependent effects.
    pub eye: Vec3,
}

impl RasterCamera {
    /// Builds the camera for a pose and viewport size.
    ///
    /// # Panics
    ///
    /// Panics if either viewport dimension is zero.
    pub fn new(pose: &CameraPose, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "viewport must be non-zero");
        let view = look_at(pose.eye, pose.target, pose.up);
        let proj = perspective(pose.fov_y, width as f32 / height as f32, NEAR, FAR);
        Self { view_proj: proj * view, width, height, eye: pose.eye }
    }

    /// Projects a world-space point to clip space (before perspective divide).
    pub fn to_clip(&self, p: Vec3) -> Vec4 {
        self.view_proj.mul_vec4(p.extend(1.0))
    }

    /// Projects a world-space point to viewport pixel coordinates plus depth;
    /// returns `None` when the point is behind the near plane.
    pub fn project(&self, p: Vec3) -> Option<(Vec2, f32)> {
        let clip = self.to_clip(p);
        if clip.w <= NEAR * 0.5 {
            return None;
        }
        let ndc = clip.perspective_divide();
        Some((ndc_to_viewport(ndc, self.width, self.height), ndc.z))
    }

    /// Viewport width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Viewport height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pose() -> CameraPose {
        CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 60.0f32.to_radians())
    }

    #[test]
    fn center_point_projects_to_viewport_center() {
        let cam = RasterCamera::new(&test_pose(), 200, 100);
        let (px, depth) = cam.project(Vec3::ZERO).unwrap();
        assert!((px.x - 100.0).abs() < 1e-3);
        assert!((px.y - 50.0).abs() < 1e-3);
        assert!(depth > -1.0 && depth < 1.0);
    }

    #[test]
    fn nearer_points_have_smaller_depth() {
        let cam = RasterCamera::new(&test_pose(), 100, 100);
        let (_, d_near) = cam.project(Vec3::new(0.0, 0.0, 2.0)).unwrap();
        let (_, d_far) = cam.project(Vec3::new(0.0, 0.0, -3.0)).unwrap();
        assert!(d_near < d_far);
    }

    #[test]
    fn points_behind_the_camera_are_rejected() {
        let cam = RasterCamera::new(&test_pose(), 100, 100);
        assert!(cam.project(Vec3::new(0.0, 0.0, 10.0)).is_none());
    }

    #[test]
    fn off_axis_points_move_in_the_expected_direction() {
        let cam = RasterCamera::new(&test_pose(), 100, 100);
        let (right, _) = cam.project(Vec3::new(1.0, 0.0, 0.0)).unwrap();
        let (left, _) = cam.project(Vec3::new(-1.0, 0.0, 0.0)).unwrap();
        assert!(right.x > 50.0 && left.x < 50.0);
        let (up, _) = cam.project(Vec3::new(0.0, 1.0, 0.0)).unwrap();
        assert!(up.y < 50.0, "screen y grows downward");
    }
}
