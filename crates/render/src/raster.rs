//! Triangle rasterisation with perspective-correct attribute interpolation.
//!
//! Each baked quad is split into two triangles whose vertices carry the patch
//! UV coordinate and the surface normal; fragments are produced with the
//! perspective-correctly interpolated attributes and handed to a shading
//! callback, which is how the renderer keeps rasterisation independent of the
//! texturing / MLP shading policy.
//!
//! # Inner loop and the determinism contract
//!
//! The per-pixel barycentric weights are affine in the pixel coordinates, so
//! the inner loop evaluates precomputed **incremental edge functions**
//! (`w = (c + a·px + b·py)·inv_area`, with the `c + b·py` base hoisted per
//! row) instead of three `perp_dot` cross products per pixel, and the
//! perspective-correction setup (per-vertex `attribute × 1/w` products) is
//! hoisted out of the loop entirely. Each weight is recomputed from its row
//! base — never accumulated across pixels — so there is no drift and the
//! output is a pure function of the triangle: same inputs, same bits, on
//! every run. The edge functions, the interpolated depth and the
//! perspective weights `l0/l1/l2` evaluate four pixels at a time on
//! [`nerflex_math::simd`] lanes (each lane op is exactly the scalar op, so
//! the packet/scalar-tail split never changes output bits; see
//! `docs/determinism.md`). A property test checks the incremental weights
//! against the reference `perp_dot` evaluation over random triangles, and a
//! second one checks the packet loop bit-for-bit against a scalar-only
//! reference; fragments are only shaded after a single framebuffer depth
//! test ([`Framebuffer::write_lazy`]).

use crate::camera::RasterCamera;
use crate::framebuffer::Framebuffer;
use nerflex_image::Color;
use nerflex_math::simd::LANES;
use nerflex_math::{F32x4, Vec2, Vec3};

/// A vertex submitted to the rasteriser.
#[derive(Debug, Clone, Copy)]
pub struct RasterVertex {
    /// World-space position.
    pub position: Vec3,
    /// Texture coordinate within the quad's atlas patch.
    pub uv: Vec2,
    /// World-space surface normal.
    pub normal: Vec3,
}

/// An interpolated fragment passed to the shading callback.
#[derive(Debug, Clone, Copy)]
pub struct Fragment {
    /// Perspective-correct texture coordinate.
    pub uv: Vec2,
    /// Perspective-correct (re-normalised) surface normal.
    pub normal: Vec3,
    /// Normalised-device-coordinate depth (smaller is nearer).
    pub depth: f32,
}

/// Statistics accumulated while rasterising.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterStats {
    /// Triangles that survived clipping and faced the camera.
    pub triangles_rasterized: usize,
    /// Fragments that passed the depth test and were shaded.
    pub fragments_shaded: usize,
}

/// Coefficients of the affine edge function `w(px, py) = c + a·px + b·py`
/// spanned by the directed edge `s → e`: the expansion of
/// `(s − p).perp_dot(e − p)` (the cross terms cancel).
fn edge_coefficients(s: Vec2, e: Vec2) -> (f32, f32, f32) {
    (s.y - e.y, e.x - s.x, s.x * e.y - s.y * e.x)
}

/// Rasterises one triangle, calling `shade` for every fragment that passes
/// the depth test.
pub fn draw_triangle(
    camera: &RasterCamera,
    framebuffer: &mut Framebuffer,
    vertices: &[RasterVertex; 3],
    stats: &mut RasterStats,
    shade: &mut dyn FnMut(Fragment) -> Color,
) {
    // Project all three vertices; reject triangles crossing the near plane
    // (scene scale makes these negligible — objects sit well inside the view).
    let clips = [
        camera.to_clip(vertices[0].position),
        camera.to_clip(vertices[1].position),
        camera.to_clip(vertices[2].position),
    ];
    if clips.iter().any(|c| c.w <= crate::camera::NEAR * 0.5) {
        return;
    }
    let inv_w = [1.0 / clips[0].w, 1.0 / clips[1].w, 1.0 / clips[2].w];
    let screen: [Vec2; 3] = std::array::from_fn(|i| {
        let ndc = clips[i].perspective_divide();
        nerflex_math::transform::ndc_to_viewport(ndc, framebuffer.width(), framebuffer.height())
    });
    let depth_ndc = [clips[0].z * inv_w[0], clips[1].z * inv_w[1], clips[2].z * inv_w[2]];

    // Signed area (negative = back-facing in our winding); keep both windings
    // because baked quads are viewed from either side after projection.
    let area = (screen[1] - screen[0]).perp_dot(screen[2] - screen[0]);
    if area.abs() < 1e-6 {
        return;
    }
    stats.triangles_rasterized += 1;
    let inv_area = 1.0 / area;

    let min_x = screen.iter().map(|p| p.x).fold(f32::INFINITY, f32::min).floor().max(0.0) as usize;
    let max_x = (screen.iter().map(|p| p.x).fold(f32::NEG_INFINITY, f32::max).ceil() as isize)
        .clamp(0, framebuffer.width() as isize - 1) as usize;
    let min_y = screen.iter().map(|p| p.y).fold(f32::INFINITY, f32::min).floor().max(0.0) as usize;
    let max_y = (screen.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max).ceil() as isize)
        .clamp(0, framebuffer.height() as isize - 1) as usize;
    if min_x > max_x || min_y > max_y {
        return;
    }

    // Barycentric weights as incremental edge functions (w2 closes the sum),
    // and the perspective-correction setup hoisted out of the pixel loop:
    // every attribute is pre-multiplied by its vertex's 1/w once.
    let (a0, b0, c0) = edge_coefficients(screen[1], screen[2]);
    let (a1, b1, c1) = edge_coefficients(screen[2], screen[0]);
    let uv_w = [vertices[0].uv * inv_w[0], vertices[1].uv * inv_w[1], vertices[2].uv * inv_w[2]];
    let normal_w = [
        vertices[0].normal * inv_w[0],
        vertices[1].normal * inv_w[1],
        vertices[2].normal * inv_w[2],
    ];

    // Shades one surviving fragment behind the single depth test;
    // interpolation runs only for visible fragments. Shared by the packet
    // loop (lane-extracted weights) and the scalar tail — the weights are
    // bit-identical either way, so the output never depends on the split.
    let mut emit_fragment =
        |x: usize, y: usize, w0: f32, w1: f32, w2: f32, depth: f32, denom: f32| {
            let written = framebuffer.write_lazy(x, y, depth, || {
                let inv_denom = 1.0 / denom;
                let uv = (uv_w[0] * w0 + uv_w[1] * w1 + uv_w[2] * w2) * inv_denom;
                let normal = ((normal_w[0] * w0 + normal_w[1] * w1 + normal_w[2] * w2) * inv_denom)
                    .normalized();
                shade(Fragment { uv, normal, depth })
            });
            if written {
                stats.fragments_shaded += 1;
            }
        };

    for y in min_y..=max_y {
        let py = y as f32 + 0.5;
        // Per-row bases; each pixel adds its own a·px term (recomputed from
        // the base, never accumulated, so rounding cannot drift across a row).
        let w0_row = c0 + b0 * py;
        let w1_row = c1 + b1 * py;
        // Four pixels at a time: the barycentric weights, the depth and the
        // perspective weights l0/l1/l2 evaluate on [`F32x4`] lanes. Every
        // lane op is the scalar op of the tail loop below (multiplication
        // and addition commute exactly in IEEE-754, and the coverage masks
        // negate the scalar skip conditions so NaN handling matches), so
        // the packet/tail split never changes output bits.
        let mut x = min_x;
        while x + LANES <= max_x + 1 {
            let px = F32x4::new(
                x as f32 + 0.5,
                (x + 1) as f32 + 0.5,
                (x + 2) as f32 + 0.5,
                (x + 3) as f32 + 0.5,
            );
            let w0 = (px * a0 + w0_row) * inv_area;
            let w1 = (px * a1 + w1_row) * inv_area;
            let w2 = F32x4::splat(1.0) - w0 - w1;
            let outside = w0.lt(F32x4::ZERO).or(w1.lt(F32x4::ZERO)).or(w2.lt(F32x4::ZERO));
            let depth = w0 * depth_ndc[0] + w1 * depth_ndc[1] + w2 * depth_ndc[2];
            let in_depth_range = F32x4::splat(-1.0).le(depth).and(depth.le(F32x4::splat(1.0)));
            let l0 = w0 * inv_w[0];
            let l1 = w1 * inv_w[1];
            let l2 = w2 * inv_w[2];
            let denom = l0 + l1 + l2;
            let covered = (!outside).and(in_depth_range).and(!denom.le(F32x4::ZERO));
            if covered.any() {
                for lane in 0..LANES {
                    if covered.lane(lane) {
                        emit_fragment(
                            x + lane,
                            y,
                            w0.lane(lane),
                            w1.lane(lane),
                            w2.lane(lane),
                            depth.lane(lane),
                            denom.lane(lane),
                        );
                    }
                }
            }
            x += LANES;
        }
        // Scalar tail for the leftover pixels of the row.
        for x in x..=max_x {
            let px = x as f32 + 0.5;
            let w0 = (w0_row + a0 * px) * inv_area;
            let w1 = (w1_row + a1 * px) * inv_area;
            let w2 = 1.0 - w0 - w1;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let depth = w0 * depth_ndc[0] + w1 * depth_ndc[1] + w2 * depth_ndc[2];
            if !(-1.0..=1.0).contains(&depth) {
                continue;
            }
            // Perspective-correct weights (attributes were scaled by 1/w above).
            let l0 = w0 * inv_w[0];
            let l1 = w1 * inv_w[1];
            let l2 = w2 * inv_w[2];
            let denom = l0 + l1 + l2;
            if denom <= 0.0 {
                continue;
            }
            emit_fragment(x, y, w0, w1, w2, depth, denom);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::camera_path::CameraPose;
    use proptest::prelude::*;

    fn camera(width: usize, height: usize) -> RasterCamera {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 60.0f32.to_radians());
        RasterCamera::new(&pose, width, height)
    }

    fn vertex(p: Vec3, uv: Vec2) -> RasterVertex {
        RasterVertex { position: p, uv, normal: Vec3::Z }
    }

    #[test]
    fn triangle_covers_expected_pixels() {
        let cam = camera(64, 64);
        let mut fb = Framebuffer::new(64, 64, Color::BLACK);
        let mut stats = RasterStats::default();
        let tri = [
            vertex(Vec3::new(-1.0, -1.0, 0.0), Vec2::new(0.0, 0.0)),
            vertex(Vec3::new(1.0, -1.0, 0.0), Vec2::new(1.0, 0.0)),
            vertex(Vec3::new(0.0, 1.0, 0.0), Vec2::new(0.5, 1.0)),
        ];
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(stats.triangles_rasterized, 1);
        assert!(stats.fragments_shaded > 50);
        // The triangle centroid projects near the viewport centre.
        assert_eq!(fb.into_image().get(32, 32), Color::WHITE);
    }

    #[test]
    fn nearer_triangle_occludes_farther_one() {
        let cam = camera(48, 48);
        let mut fb = Framebuffer::new(48, 48, Color::BLACK);
        let mut stats = RasterStats::default();
        let far = [
            vertex(Vec3::new(-1.0, -1.0, -1.0), Vec2::ZERO),
            vertex(Vec3::new(1.0, -1.0, -1.0), Vec2::ZERO),
            vertex(Vec3::new(0.0, 1.0, -1.0), Vec2::ZERO),
        ];
        let near = [
            vertex(Vec3::new(-1.0, -1.0, 1.0), Vec2::ZERO),
            vertex(Vec3::new(1.0, -1.0, 1.0), Vec2::ZERO),
            vertex(Vec3::new(0.0, 1.0, 1.0), Vec2::ZERO),
        ];
        draw_triangle(&cam, &mut fb, &far, &mut stats, &mut |_| Color::gray(0.2));
        draw_triangle(&cam, &mut fb, &near, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(fb.into_image().get(24, 24), Color::WHITE);

        // Drawing in the opposite order must give the same result.
        let mut fb2 = Framebuffer::new(48, 48, Color::BLACK);
        draw_triangle(&cam, &mut fb2, &near, &mut stats, &mut |_| Color::WHITE);
        draw_triangle(&cam, &mut fb2, &far, &mut stats, &mut |_| Color::gray(0.2));
        assert_eq!(fb2.into_image().get(24, 24), Color::WHITE);
    }

    #[test]
    fn uv_interpolation_spans_the_triangle() {
        let cam = camera(64, 64);
        let mut fb = Framebuffer::new(64, 64, Color::BLACK);
        let mut stats = RasterStats::default();
        let tri = [
            vertex(Vec3::new(-1.5, -1.5, 0.0), Vec2::new(0.0, 0.0)),
            vertex(Vec3::new(1.5, -1.5, 0.0), Vec2::new(1.0, 0.0)),
            vertex(Vec3::new(-1.5, 1.5, 0.0), Vec2::new(0.0, 1.0)),
        ];
        let mut min_u = f32::INFINITY;
        let mut max_u = f32::NEG_INFINITY;
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |f| {
            min_u = min_u.min(f.uv.x);
            max_u = max_u.max(f.uv.x);
            Color::WHITE
        });
        assert!(min_u < 0.1 && max_u > 0.8, "u range [{min_u}, {max_u}]");
    }

    #[test]
    fn behind_camera_triangles_are_skipped() {
        let cam = camera(32, 32);
        let mut fb = Framebuffer::new(32, 32, Color::BLACK);
        let mut stats = RasterStats::default();
        let tri = [
            vertex(Vec3::new(-1.0, -1.0, 10.0), Vec2::ZERO),
            vertex(Vec3::new(1.0, -1.0, 10.0), Vec2::ZERO),
            vertex(Vec3::new(0.0, 1.0, 10.0), Vec2::ZERO),
        ];
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(stats.triangles_rasterized, 0);
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn degenerate_triangle_is_skipped() {
        let cam = camera(32, 32);
        let mut fb = Framebuffer::new(32, 32, Color::BLACK);
        let mut stats = RasterStats::default();
        let p = Vec3::new(0.0, 0.0, 0.0);
        let tri = [vertex(p, Vec2::ZERO), vertex(p, Vec2::ZERO), vertex(p, Vec2::ZERO)];
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(stats.triangles_rasterized, 0);
    }

    /// Scalar-only reference rasteriser: the exact per-pixel loop the packet
    /// path replaced (edge functions, depth, `l0/l1/l2` and rejections all
    /// scalar). [`draw_triangle`] must match it bit for bit.
    fn draw_triangle_scalar_reference(
        camera: &RasterCamera,
        framebuffer: &mut Framebuffer,
        vertices: &[RasterVertex; 3],
        stats: &mut RasterStats,
        shade: &mut dyn FnMut(Fragment) -> Color,
    ) {
        let clips = [
            camera.to_clip(vertices[0].position),
            camera.to_clip(vertices[1].position),
            camera.to_clip(vertices[2].position),
        ];
        if clips.iter().any(|c| c.w <= crate::camera::NEAR * 0.5) {
            return;
        }
        let inv_w = [1.0 / clips[0].w, 1.0 / clips[1].w, 1.0 / clips[2].w];
        let screen: [Vec2; 3] = std::array::from_fn(|i| {
            let ndc = clips[i].perspective_divide();
            nerflex_math::transform::ndc_to_viewport(ndc, framebuffer.width(), framebuffer.height())
        });
        let depth_ndc = [clips[0].z * inv_w[0], clips[1].z * inv_w[1], clips[2].z * inv_w[2]];
        let area = (screen[1] - screen[0]).perp_dot(screen[2] - screen[0]);
        if area.abs() < 1e-6 {
            return;
        }
        stats.triangles_rasterized += 1;
        let inv_area = 1.0 / area;
        let min_x =
            screen.iter().map(|p| p.x).fold(f32::INFINITY, f32::min).floor().max(0.0) as usize;
        let max_x = (screen.iter().map(|p| p.x).fold(f32::NEG_INFINITY, f32::max).ceil() as isize)
            .clamp(0, framebuffer.width() as isize - 1) as usize;
        let min_y =
            screen.iter().map(|p| p.y).fold(f32::INFINITY, f32::min).floor().max(0.0) as usize;
        let max_y = (screen.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max).ceil() as isize)
            .clamp(0, framebuffer.height() as isize - 1) as usize;
        if min_x > max_x || min_y > max_y {
            return;
        }
        let (a0, b0, c0) = edge_coefficients(screen[1], screen[2]);
        let (a1, b1, c1) = edge_coefficients(screen[2], screen[0]);
        let uv_w =
            [vertices[0].uv * inv_w[0], vertices[1].uv * inv_w[1], vertices[2].uv * inv_w[2]];
        let normal_w = [
            vertices[0].normal * inv_w[0],
            vertices[1].normal * inv_w[1],
            vertices[2].normal * inv_w[2],
        ];
        for y in min_y..=max_y {
            let py = y as f32 + 0.5;
            let w0_row = c0 + b0 * py;
            let w1_row = c1 + b1 * py;
            for x in min_x..=max_x {
                let px = x as f32 + 0.5;
                let w0 = (w0_row + a0 * px) * inv_area;
                let w1 = (w1_row + a1 * px) * inv_area;
                let w2 = 1.0 - w0 - w1;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = w0 * depth_ndc[0] + w1 * depth_ndc[1] + w2 * depth_ndc[2];
                if !(-1.0..=1.0).contains(&depth) {
                    continue;
                }
                let l0 = w0 * inv_w[0];
                let l1 = w1 * inv_w[1];
                let l2 = w2 * inv_w[2];
                let denom = l0 + l1 + l2;
                if denom <= 0.0 {
                    continue;
                }
                let written = framebuffer.write_lazy(x, y, depth, || {
                    let inv_denom = 1.0 / denom;
                    let uv = (uv_w[0] * w0 + uv_w[1] * w1 + uv_w[2] * w2) * inv_denom;
                    let normal = ((normal_w[0] * w0 + normal_w[1] * w1 + normal_w[2] * w2)
                        * inv_denom)
                        .normalized();
                    shade(Fragment { uv, normal, depth })
                });
                if written {
                    stats.fragments_shaded += 1;
                }
            }
        }
    }

    /// Reference per-pixel barycentric evaluation (the pre-incremental
    /// rasteriser's three `perp_dot` cross products), including the same
    /// projection, depth and perspective-denominator rejections.
    fn reference_fragment(
        cam: &RasterCamera,
        size: usize,
        tri: &[RasterVertex; 3],
        x: usize,
        y: usize,
    ) -> Option<(Vec2, f32, f32)> {
        let clips = [
            cam.to_clip(tri[0].position),
            cam.to_clip(tri[1].position),
            cam.to_clip(tri[2].position),
        ];
        if clips.iter().any(|c| c.w <= crate::camera::NEAR * 0.5) {
            return None;
        }
        let inv_w = [1.0 / clips[0].w, 1.0 / clips[1].w, 1.0 / clips[2].w];
        let screen: Vec<Vec2> = clips
            .iter()
            .map(|c| nerflex_math::transform::ndc_to_viewport(c.perspective_divide(), size, size))
            .collect();
        let depth_ndc = [clips[0].z * inv_w[0], clips[1].z * inv_w[1], clips[2].z * inv_w[2]];
        let area = (screen[1] - screen[0]).perp_dot(screen[2] - screen[0]);
        if area.abs() < 1e-6 {
            return None;
        }
        let inv_area = 1.0 / area;
        let p = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
        let w0 = (screen[1] - p).perp_dot(screen[2] - p) * inv_area;
        let w1 = (screen[2] - p).perp_dot(screen[0] - p) * inv_area;
        let w2 = 1.0 - w0 - w1;
        if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
            return None;
        }
        let depth = w0 * depth_ndc[0] + w1 * depth_ndc[1] + w2 * depth_ndc[2];
        if !(-1.0..=1.0).contains(&depth) {
            return None;
        }
        let denom = w0 * inv_w[0] + w1 * inv_w[1] + w2 * inv_w[2];
        if denom <= 0.0 {
            return None;
        }
        let persp = |a0: f32, a1: f32, a2: f32| {
            (a0 * w0 * inv_w[0] + a1 * w1 * inv_w[1] + a2 * w2 * inv_w[2]) / denom
        };
        let uv = Vec2::new(
            persp(tri[0].uv.x, tri[1].uv.x, tri[2].uv.x),
            persp(tri[0].uv.y, tri[1].uv.y, tri[2].uv.y),
        );
        let edge_margin = w0.abs().min(w1.abs()).min(w2.abs());
        Some((uv, depth, edge_margin))
    }

    proptest! {
        #[test]
        fn prop_packet_loop_is_bit_identical_to_scalar_loop(
            x0 in -1.8f32..1.8, y0 in -1.8f32..1.8, z0 in -1.0f32..1.0,
            x1 in -1.8f32..1.8, y1 in -1.8f32..1.8, z1 in -1.0f32..1.0,
            x2 in -1.8f32..1.8, y2 in -1.8f32..1.8, z2 in -1.0f32..1.0,
            size in 17usize..50,
        ) {
            // The lane-packed fragment loop must reproduce the scalar loop
            // bit for bit: same coverage, same depths, same shaded colours,
            // same stats — for any viewport size (odd widths exercise the
            // packet/tail split).
            let cam = camera(size, size);
            let tri = [
                RasterVertex {
                    position: Vec3::new(x0, y0, z0),
                    uv: Vec2::new(0.0, 0.0),
                    normal: Vec3::new(0.3, 0.9, 0.1).normalized(),
                },
                RasterVertex {
                    position: Vec3::new(x1, y1, z1),
                    uv: Vec2::new(1.0, 0.0),
                    normal: Vec3::Z,
                },
                RasterVertex {
                    position: Vec3::new(x2, y2, z2),
                    uv: Vec2::new(0.5, 1.0),
                    normal: Vec3::new(-0.2, 0.4, 0.8).normalized(),
                },
            ];
            let shade = |f: Fragment| Color::new(f.uv.x, f.normal.y, f.depth);
            let mut fb_packet = Framebuffer::new(size, size, Color::BLACK);
            let mut stats_packet = RasterStats::default();
            draw_triangle(&cam, &mut fb_packet, &tri, &mut stats_packet, &mut { shade });
            let mut fb_scalar = Framebuffer::new(size, size, Color::BLACK);
            let mut stats_scalar = RasterStats::default();
            draw_triangle_scalar_reference(
                &cam,
                &mut fb_scalar,
                &tri,
                &mut stats_scalar,
                &mut { shade },
            );
            prop_assert_eq!(stats_packet, stats_scalar);
            for y in 0..size {
                for x in 0..size {
                    let dp = fb_packet.depth_at(x, y);
                    let ds = fb_scalar.depth_at(x, y);
                    prop_assert_eq!(dp.to_bits(), ds.to_bits());
                }
            }
            let img_packet = fb_packet.into_image();
            let img_scalar = fb_scalar.into_image();
            prop_assert_eq!(img_packet, img_scalar);
        }

        #[test]
        fn prop_incremental_matches_reference_barycentric(
            x0 in -1.8f32..1.8, y0 in -1.8f32..1.8, z0 in -1.0f32..1.0,
            x1 in -1.8f32..1.8, y1 in -1.8f32..1.8, z1 in -1.0f32..1.0,
            x2 in -1.8f32..1.8, y2 in -1.8f32..1.8, z2 in -1.0f32..1.0,
        ) {
            const SIZE: usize = 48;
            let cam = camera(SIZE, SIZE);
            let tri = [
                RasterVertex {
                    position: Vec3::new(x0, y0, z0),
                    uv: Vec2::new(0.0, 0.0),
                    normal: Vec3::Z,
                },
                RasterVertex {
                    position: Vec3::new(x1, y1, z1),
                    uv: Vec2::new(1.0, 0.0),
                    normal: Vec3::Z,
                },
                RasterVertex {
                    position: Vec3::new(x2, y2, z2),
                    uv: Vec2::new(0.5, 1.0),
                    normal: Vec3::Z,
                },
            ];
            // Skip screen-space slivers: their barycentrics are dominated by
            // rounding in *both* formulations and compare nothing meaningful.
            let screen: Vec<Vec2> = tri
                .iter()
                .filter_map(|v| cam.project(v.position).map(|(p, _)| p))
                .collect();
            prop_assume!(screen.len() == 3);
            let area = (screen[1] - screen[0]).perp_dot(screen[2] - screen[0]);
            prop_assume!(area.abs() > 4.0);

            // Rasterise once, encoding (uv.x, uv.y, depth) into the colour.
            let mut fb = Framebuffer::new(SIZE, SIZE, Color::BLACK);
            let mut stats = RasterStats::default();
            draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |f| {
                Color::new(f.uv.x, f.uv.y, f.depth)
            });
            let img = fb.clone().into_image();

            for y in 0..SIZE {
                for x in 0..SIZE {
                    let covered = fb.depth_at(x, y).is_finite();
                    match reference_fragment(&cam, SIZE, &tri, x, y) {
                        Some((uv, depth, edge_margin)) => {
                            if !covered {
                                // Coverage may flip only within rounding
                                // distance of an edge.
                                prop_assert!(
                                    edge_margin < 1e-2,
                                    "pixel ({x},{y}) lost with margin {edge_margin}"
                                );
                                continue;
                            }
                            let c = img.get(x, y);
                            prop_assert!((c.r - uv.x).abs() < 1e-2, "uv.x at ({x},{y})");
                            prop_assert!((c.g - uv.y).abs() < 1e-2, "uv.y at ({x},{y})");
                            prop_assert!((c.b - depth).abs() < 1e-2, "depth at ({x},{y})");
                        }
                        None => {
                            if covered {
                                let margin = reference_edge_margin(&cam, SIZE, &tri, x, y);
                                prop_assert!(
                                    margin < 1e-2,
                                    "pixel ({x},{y}) gained with margin {margin}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// The smallest reference barycentric magnitude at a pixel — how close
    /// the pixel centre is to an edge, for the coverage-flip tolerance.
    fn reference_edge_margin(
        cam: &RasterCamera,
        size: usize,
        tri: &[RasterVertex; 3],
        x: usize,
        y: usize,
    ) -> f32 {
        let clips = [
            cam.to_clip(tri[0].position),
            cam.to_clip(tri[1].position),
            cam.to_clip(tri[2].position),
        ];
        let screen: Vec<Vec2> = clips
            .iter()
            .map(|c| nerflex_math::transform::ndc_to_viewport(c.perspective_divide(), size, size))
            .collect();
        let area = (screen[1] - screen[0]).perp_dot(screen[2] - screen[0]);
        let inv_area = 1.0 / area;
        let p = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
        let w0 = (screen[1] - p).perp_dot(screen[2] - p) * inv_area;
        let w1 = (screen[2] - p).perp_dot(screen[0] - p) * inv_area;
        let w2 = 1.0 - w0 - w1;
        w0.abs().min(w1.abs()).min(w2.abs())
    }
}
