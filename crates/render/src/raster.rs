//! Triangle rasterisation with perspective-correct attribute interpolation.
//!
//! Each baked quad is split into two triangles whose vertices carry the patch
//! UV coordinate and the surface normal; fragments are produced with the
//! perspective-correctly interpolated attributes and handed to a shading
//! callback, which is how the renderer keeps rasterisation independent of the
//! texturing / MLP shading policy.

use crate::camera::RasterCamera;
use crate::framebuffer::Framebuffer;
use nerflex_image::Color;
use nerflex_math::{Vec2, Vec3};

/// A vertex submitted to the rasteriser.
#[derive(Debug, Clone, Copy)]
pub struct RasterVertex {
    /// World-space position.
    pub position: Vec3,
    /// Texture coordinate within the quad's atlas patch.
    pub uv: Vec2,
    /// World-space surface normal.
    pub normal: Vec3,
}

/// An interpolated fragment passed to the shading callback.
#[derive(Debug, Clone, Copy)]
pub struct Fragment {
    /// Perspective-correct texture coordinate.
    pub uv: Vec2,
    /// Perspective-correct (re-normalised) surface normal.
    pub normal: Vec3,
    /// Normalised-device-coordinate depth (smaller is nearer).
    pub depth: f32,
}

/// Statistics accumulated while rasterising.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterStats {
    /// Triangles that survived clipping and faced the camera.
    pub triangles_rasterized: usize,
    /// Fragments that passed the depth test and were shaded.
    pub fragments_shaded: usize,
}

/// Rasterises one triangle, calling `shade` for every fragment that passes
/// the depth test.
pub fn draw_triangle(
    camera: &RasterCamera,
    framebuffer: &mut Framebuffer,
    vertices: &[RasterVertex; 3],
    stats: &mut RasterStats,
    shade: &mut dyn FnMut(Fragment) -> Color,
) {
    // Project all three vertices; reject triangles crossing the near plane
    // (scene scale makes these negligible — objects sit well inside the view).
    let clips = [
        camera.to_clip(vertices[0].position),
        camera.to_clip(vertices[1].position),
        camera.to_clip(vertices[2].position),
    ];
    if clips.iter().any(|c| c.w <= crate::camera::NEAR * 0.5) {
        return;
    }
    let inv_w = [1.0 / clips[0].w, 1.0 / clips[1].w, 1.0 / clips[2].w];
    let screen: Vec<Vec2> = clips
        .iter()
        .map(|c| {
            let ndc = c.perspective_divide();
            nerflex_math::transform::ndc_to_viewport(ndc, framebuffer.width(), framebuffer.height())
        })
        .collect();
    let depth_ndc = [clips[0].z * inv_w[0], clips[1].z * inv_w[1], clips[2].z * inv_w[2]];

    // Signed area (negative = back-facing in our winding); keep both windings
    // because baked quads are viewed from either side after projection.
    let area = (screen[1] - screen[0]).perp_dot(screen[2] - screen[0]);
    if area.abs() < 1e-6 {
        return;
    }
    stats.triangles_rasterized += 1;
    let inv_area = 1.0 / area;

    let min_x = screen.iter().map(|p| p.x).fold(f32::INFINITY, f32::min).floor().max(0.0) as usize;
    let max_x = (screen.iter().map(|p| p.x).fold(f32::NEG_INFINITY, f32::max).ceil() as isize)
        .clamp(0, framebuffer.width() as isize - 1) as usize;
    let min_y = screen.iter().map(|p| p.y).fold(f32::INFINITY, f32::min).floor().max(0.0) as usize;
    let max_y = (screen.iter().map(|p| p.y).fold(f32::NEG_INFINITY, f32::max).ceil() as isize)
        .clamp(0, framebuffer.height() as isize - 1) as usize;
    if min_x > max_x || min_y > max_y {
        return;
    }

    for y in min_y..=max_y {
        for x in min_x..=max_x {
            let p = Vec2::new(x as f32 + 0.5, y as f32 + 0.5);
            // Barycentric coordinates (consistent sign handling for both windings).
            let w0 = (screen[1] - p).perp_dot(screen[2] - p) * inv_area;
            let w1 = (screen[2] - p).perp_dot(screen[0] - p) * inv_area;
            let w2 = 1.0 - w0 - w1;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let depth = w0 * depth_ndc[0] + w1 * depth_ndc[1] + w2 * depth_ndc[2];
            if !(-1.0..=1.0).contains(&depth) {
                continue;
            }
            // Perspective-correct interpolation: weight attributes by 1/w.
            let denom = w0 * inv_w[0] + w1 * inv_w[1] + w2 * inv_w[2];
            if denom <= 0.0 {
                continue;
            }
            let persp = |a0: f32, a1: f32, a2: f32| {
                (a0 * w0 * inv_w[0] + a1 * w1 * inv_w[1] + a2 * w2 * inv_w[2]) / denom
            };
            let uv = Vec2::new(
                persp(vertices[0].uv.x, vertices[1].uv.x, vertices[2].uv.x),
                persp(vertices[0].uv.y, vertices[1].uv.y, vertices[2].uv.y),
            );
            let normal = Vec3::new(
                persp(vertices[0].normal.x, vertices[1].normal.x, vertices[2].normal.x),
                persp(vertices[0].normal.y, vertices[1].normal.y, vertices[2].normal.y),
                persp(vertices[0].normal.z, vertices[1].normal.z, vertices[2].normal.z),
            )
            .normalized();
            let fragment = Fragment { uv, normal, depth };
            // Depth test first so the shade callback only runs for visible fragments.
            let idx_depth = framebuffer.depth_at(x, y);
            if depth < idx_depth {
                let color = shade(fragment);
                if framebuffer.write(x, y, depth, color) {
                    stats.fragments_shaded += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::camera_path::CameraPose;

    fn camera(width: usize, height: usize) -> RasterCamera {
        let pose = CameraPose::new(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, 60.0f32.to_radians());
        RasterCamera::new(&pose, width, height)
    }

    fn vertex(p: Vec3, uv: Vec2) -> RasterVertex {
        RasterVertex { position: p, uv, normal: Vec3::Z }
    }

    #[test]
    fn triangle_covers_expected_pixels() {
        let cam = camera(64, 64);
        let mut fb = Framebuffer::new(64, 64, Color::BLACK);
        let mut stats = RasterStats::default();
        let tri = [
            vertex(Vec3::new(-1.0, -1.0, 0.0), Vec2::new(0.0, 0.0)),
            vertex(Vec3::new(1.0, -1.0, 0.0), Vec2::new(1.0, 0.0)),
            vertex(Vec3::new(0.0, 1.0, 0.0), Vec2::new(0.5, 1.0)),
        ];
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(stats.triangles_rasterized, 1);
        assert!(stats.fragments_shaded > 50);
        // The triangle centroid projects near the viewport centre.
        assert_eq!(fb.into_image().get(32, 32), Color::WHITE);
    }

    #[test]
    fn nearer_triangle_occludes_farther_one() {
        let cam = camera(48, 48);
        let mut fb = Framebuffer::new(48, 48, Color::BLACK);
        let mut stats = RasterStats::default();
        let far = [
            vertex(Vec3::new(-1.0, -1.0, -1.0), Vec2::ZERO),
            vertex(Vec3::new(1.0, -1.0, -1.0), Vec2::ZERO),
            vertex(Vec3::new(0.0, 1.0, -1.0), Vec2::ZERO),
        ];
        let near = [
            vertex(Vec3::new(-1.0, -1.0, 1.0), Vec2::ZERO),
            vertex(Vec3::new(1.0, -1.0, 1.0), Vec2::ZERO),
            vertex(Vec3::new(0.0, 1.0, 1.0), Vec2::ZERO),
        ];
        draw_triangle(&cam, &mut fb, &far, &mut stats, &mut |_| Color::gray(0.2));
        draw_triangle(&cam, &mut fb, &near, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(fb.into_image().get(24, 24), Color::WHITE);

        // Drawing in the opposite order must give the same result.
        let mut fb2 = Framebuffer::new(48, 48, Color::BLACK);
        draw_triangle(&cam, &mut fb2, &near, &mut stats, &mut |_| Color::WHITE);
        draw_triangle(&cam, &mut fb2, &far, &mut stats, &mut |_| Color::gray(0.2));
        assert_eq!(fb2.into_image().get(24, 24), Color::WHITE);
    }

    #[test]
    fn uv_interpolation_spans_the_triangle() {
        let cam = camera(64, 64);
        let mut fb = Framebuffer::new(64, 64, Color::BLACK);
        let mut stats = RasterStats::default();
        let tri = [
            vertex(Vec3::new(-1.5, -1.5, 0.0), Vec2::new(0.0, 0.0)),
            vertex(Vec3::new(1.5, -1.5, 0.0), Vec2::new(1.0, 0.0)),
            vertex(Vec3::new(-1.5, 1.5, 0.0), Vec2::new(0.0, 1.0)),
        ];
        let mut min_u = f32::INFINITY;
        let mut max_u = f32::NEG_INFINITY;
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |f| {
            min_u = min_u.min(f.uv.x);
            max_u = max_u.max(f.uv.x);
            Color::WHITE
        });
        assert!(min_u < 0.1 && max_u > 0.8, "u range [{min_u}, {max_u}]");
    }

    #[test]
    fn behind_camera_triangles_are_skipped() {
        let cam = camera(32, 32);
        let mut fb = Framebuffer::new(32, 32, Color::BLACK);
        let mut stats = RasterStats::default();
        let tri = [
            vertex(Vec3::new(-1.0, -1.0, 10.0), Vec2::ZERO),
            vertex(Vec3::new(1.0, -1.0, 10.0), Vec2::ZERO),
            vertex(Vec3::new(0.0, 1.0, 10.0), Vec2::ZERO),
        ];
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(stats.triangles_rasterized, 0);
        assert_eq!(fb.covered_pixels(), 0);
    }

    #[test]
    fn degenerate_triangle_is_skipped() {
        let cam = camera(32, 32);
        let mut fb = Framebuffer::new(32, 32, Color::BLACK);
        let mut stats = RasterStats::default();
        let p = Vec3::new(0.0, 0.0, 0.0);
        let tri = [vertex(p, Vec2::ZERO), vertex(p, Vec2::ZERO), vertex(p, Vec2::ZERO)];
        draw_triangle(&cam, &mut fb, &tri, &mut stats, &mut |_| Color::WHITE);
        assert_eq!(stats.triangles_rasterized, 0);
    }
}
