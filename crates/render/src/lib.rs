//! # nerflex-render
//!
//! Software renderer for baked assets — the stand-in for the WebGL rendering
//! engine the paper runs on the phones. Baked quad meshes are rasterised
//! with a z-buffer, textured from the atlas and shaded with the shared
//! shading model (or the baked deferred MLP), so the images it produces can
//! be compared pixel-for-pixel against the ray-marched ground truth.
//!
//! ```
//! use nerflex_bake::{bake_object, BakeConfig};
//! use nerflex_render::{render_assets, RenderOptions};
//! use nerflex_scene::object::CanonicalObject;
//! use nerflex_scene::camera_path::orbit_path;
//! use nerflex_math::Vec3;
//!
//! let asset = bake_object(&CanonicalObject::Hotdog.build(), BakeConfig::new(16, 5));
//! let pose = orbit_path(Vec3::new(0.0, 0.2, 0.0), 2.5, 0.4, 4)[0];
//! let (image, stats) = render_assets(&[asset], &pose, 64, 64, &RenderOptions::default());
//! assert_eq!(image.width(), 64);
//! assert!(stats.quads_submitted > 0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod camera;
pub mod compare;
pub mod framebuffer;
pub mod raster;
pub mod renderer;
pub mod splat;

pub use compare::{compare_against_ground_truth, QualityReport};
pub use framebuffer::Framebuffer;
pub use renderer::{render_assets, RenderOptions, RenderStats};
pub use splat::composite_splats;
