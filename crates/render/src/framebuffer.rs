//! Colour + depth framebuffer.

use nerflex_image::{Color, Image};

/// A colour image with an associated z-buffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    color: Image,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Creates a framebuffer cleared to `clear_color` and maximum depth.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, clear_color: Color) -> Self {
        Self {
            color: Image::new(width, height, clear_color),
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Framebuffer width.
    pub fn width(&self) -> usize {
        self.color.width()
    }

    /// Framebuffer height.
    pub fn height(&self) -> usize {
        self.color.height()
    }

    /// Writes a fragment if it passes the depth test; returns whether it was
    /// written.
    pub fn write(&mut self, x: usize, y: usize, depth: f32, color: Color) -> bool {
        self.write_lazy(x, y, depth, || color)
    }

    /// Depth-tests `(x, y, depth)` and, only when the test passes, invokes
    /// `shade` and writes the resulting colour; returns whether the fragment
    /// was written.
    ///
    /// This is the rasteriser's single-test write path: the former
    /// `depth_at` check followed by [`Framebuffer::write`] probed the depth
    /// buffer twice per visible fragment, and the closure keeps attribute
    /// interpolation + shading lazy for occluded ones.
    pub fn write_lazy(
        &mut self,
        x: usize,
        y: usize,
        depth: f32,
        shade: impl FnOnce() -> Color,
    ) -> bool {
        let idx = y * self.width() + x;
        if depth < self.depth[idx] {
            self.depth[idx] = depth;
            let color = shade();
            self.color.set(x, y, color);
            true
        } else {
            false
        }
    }

    /// Depth at a pixel (`f32::INFINITY` when nothing was drawn).
    pub fn depth_at(&self, x: usize, y: usize) -> f32 {
        self.depth[y * self.width() + x]
    }

    /// The colour image (row-major, read-only).
    pub fn color(&self) -> &Image {
        &self.color
    }

    /// Mutable access to the colour image — colour-only passes (the splat
    /// compositor) blend over drawn pixels without touching depth.
    pub fn color_mut(&mut self) -> &mut Image {
        &mut self.color
    }

    /// The depth buffer, row-major (`f32::INFINITY` where nothing drew).
    pub fn depth(&self) -> &[f32] {
        &self.depth
    }

    /// Fills untouched pixels using a background function of pixel coordinates.
    pub fn fill_background(&mut self, mut f: impl FnMut(usize, usize) -> Color) {
        for y in 0..self.height() {
            for x in 0..self.width() {
                if self.depth[y * self.width() + x].is_infinite() {
                    let c = f(x, y);
                    self.color.set(x, y, c);
                }
            }
        }
    }

    /// Number of pixels covered by geometry.
    pub fn covered_pixels(&self) -> usize {
        self.depth.iter().filter(|d| d.is_finite()).count()
    }

    /// Consumes the framebuffer, returning the colour image.
    pub fn into_image(self) -> Image {
        self.color
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_test_keeps_the_nearest_fragment() {
        let mut fb = Framebuffer::new(4, 4, Color::BLACK);
        assert!(fb.write(1, 1, 0.5, Color::WHITE));
        assert!(!fb.write(1, 1, 0.7, Color::gray(0.3)));
        assert!(fb.write(1, 1, 0.2, Color::gray(0.6)));
        assert_eq!(fb.into_image().get(1, 1), Color::gray(0.6));
    }

    #[test]
    fn write_lazy_shades_only_visible_fragments() {
        let mut fb = Framebuffer::new(4, 4, Color::BLACK);
        let mut shaded = 0;
        assert!(fb.write_lazy(1, 1, 0.5, || {
            shaded += 1;
            Color::WHITE
        }));
        // An occluded fragment is rejected without invoking the shader.
        assert!(!fb.write_lazy(1, 1, 0.7, || {
            shaded += 1;
            Color::gray(0.3)
        }));
        assert_eq!(shaded, 1);
        assert_eq!(fb.depth_at(1, 1), 0.5);
        assert_eq!(fb.into_image().get(1, 1), Color::WHITE);
    }

    #[test]
    fn background_fills_only_uncovered_pixels() {
        let mut fb = Framebuffer::new(2, 2, Color::BLACK);
        fb.write(0, 0, 0.1, Color::WHITE);
        fb.fill_background(|_, _| Color::gray(0.5));
        let img = fb.into_image();
        assert_eq!(img.get(0, 0), Color::WHITE);
        assert_eq!(img.get(1, 1), Color::gray(0.5));
    }

    #[test]
    fn covered_pixels_counts_writes() {
        let mut fb = Framebuffer::new(3, 3, Color::BLACK);
        assert_eq!(fb.covered_pixels(), 0);
        fb.write(0, 0, 0.5, Color::WHITE);
        fb.write(2, 2, 0.5, Color::WHITE);
        fb.write(2, 2, 0.9, Color::WHITE); // fails depth test, still covered
        assert_eq!(fb.covered_pixels(), 2);
    }
}
