//! Deterministic low-discrepancy sequences and procedural value noise.
//!
//! The scene generator uses these to place procedural detail and to pick
//! camera poses; everything is seed-free and deterministic so experiment
//! outputs are reproducible.

use crate::vec::{Vec2, Vec3};

/// Radical-inverse (van der Corput) sequence in the given integer `base`.
///
/// # Panics
///
/// Panics if `base < 2`.
pub fn radical_inverse(mut index: u32, base: u32) -> f32 {
    assert!(base >= 2, "radical inverse base must be at least 2");
    let inv_base = 1.0 / base as f64;
    let mut inv = inv_base;
    let mut result = 0.0f64;
    while index > 0 {
        result += (index % base) as f64 * inv;
        index /= base;
        inv *= inv_base;
    }
    result as f32
}

/// The `index`-th point of the 2-D Halton sequence (bases 2 and 3).
pub fn halton2(index: u32) -> Vec2 {
    Vec2::new(radical_inverse(index, 2), radical_inverse(index, 3))
}

/// Deterministic hash of a 32-bit integer to `[0, 1)` (PCG-style mix).
pub fn hash_u32(mut x: u32) -> f32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^= x >> 16;
    (x >> 8) as f32 / (1u32 << 24) as f32
}

/// Deterministic hash of a 3-D lattice cell to `[0, 1)`.
pub fn hash_cell(x: i32, y: i32, z: i32) -> f32 {
    let h = (x as u32)
        .wrapping_mul(0x8da6_b343)
        .wrapping_add((y as u32).wrapping_mul(0xd816_3841))
        .wrapping_add((z as u32).wrapping_mul(0xcb1a_b31f));
    hash_u32(h)
}

/// Tri-linearly interpolated value noise in `[0, 1)`, period-free, with
/// features of size roughly `1 / frequency`.
pub fn value_noise(p: Vec3, frequency: f32) -> f32 {
    let q = p * frequency;
    let base = Vec3::new(q.x.floor(), q.y.floor(), q.z.floor());
    let f = q - base;
    // Smooth the interpolation weights (C¹) to avoid lattice artefacts.
    let w = Vec3::new(
        f.x * f.x * (3.0 - 2.0 * f.x),
        f.y * f.y * (3.0 - 2.0 * f.y),
        f.z * f.z * (3.0 - 2.0 * f.z),
    );
    let (x0, y0, z0) = (base.x as i32, base.y as i32, base.z as i32);
    let mut accum = 0.0;
    for dz in 0..2 {
        for dy in 0..2 {
            for dx in 0..2 {
                let corner = hash_cell(x0 + dx, y0 + dy, z0 + dz);
                let wx = if dx == 1 { w.x } else { 1.0 - w.x };
                let wy = if dy == 1 { w.y } else { 1.0 - w.y };
                let wz = if dz == 1 { w.z } else { 1.0 - w.z };
                accum += corner * wx * wy * wz;
            }
        }
    }
    accum
}

/// Fractal Brownian motion: `octaves` layers of [`value_noise`] with
/// per-octave frequency doubling and amplitude halving, normalised to `[0, 1)`.
pub fn fbm(p: Vec3, base_frequency: f32, octaves: u32) -> f32 {
    let mut amplitude = 0.5;
    let mut frequency = base_frequency;
    let mut total = 0.0;
    let mut norm = 0.0;
    for _ in 0..octaves.max(1) {
        total += amplitude * value_noise(p, frequency);
        norm += amplitude;
        amplitude *= 0.5;
        frequency *= 2.0;
    }
    total / norm
}

/// Evenly distributed directions on the unit sphere (Fibonacci lattice).
pub fn fibonacci_sphere(count: usize) -> Vec<Vec3> {
    let golden = std::f32::consts::PI * (3.0 - 5.0f32.sqrt());
    (0..count)
        .map(|i| {
            let y = 1.0 - 2.0 * (i as f32 + 0.5) / count as f32;
            let radius = (1.0 - y * y).max(0.0).sqrt();
            let theta = golden * i as f32;
            Vec3::new(radius * theta.cos(), y, radius * theta.sin())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn radical_inverse_first_values_base2() {
        assert_eq!(radical_inverse(0, 2), 0.0);
        assert!((radical_inverse(1, 2) - 0.5).abs() < 1e-6);
        assert!((radical_inverse(2, 2) - 0.25).abs() < 1e-6);
        assert!((radical_inverse(3, 2) - 0.75).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn radical_inverse_rejects_base_one() {
        let _ = radical_inverse(5, 1);
    }

    #[test]
    fn halton_points_fill_unit_square() {
        let pts: Vec<Vec2> = (0..256).map(halton2).collect();
        // Each quadrant should receive a reasonable share of points.
        let mut quads = [0usize; 4];
        for p in &pts {
            let idx = (p.x >= 0.5) as usize + 2 * (p.y >= 0.5) as usize;
            quads[idx] += 1;
        }
        for &q in &quads {
            assert!(q > 32, "quadrant starved: {quads:?}");
        }
    }

    #[test]
    fn value_noise_is_deterministic_and_bounded() {
        let p = Vec3::new(0.3, 1.7, -2.2);
        let a = value_noise(p, 4.0);
        let b = value_noise(p, 4.0);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn fbm_higher_frequency_adds_detail() {
        // fbm with more octaves should differ from the single-octave value at
        // most points (it adds high-frequency energy) while staying bounded.
        let mut diff = 0.0;
        for i in 0..100 {
            let p = Vec3::new(i as f32 * 0.11, 0.5, -0.3);
            let one = fbm(p, 2.0, 1);
            let many = fbm(p, 2.0, 5);
            assert!((0.0..=1.0).contains(&many));
            diff += (one - many).abs();
        }
        assert!(diff > 0.1);
    }

    #[test]
    fn fibonacci_sphere_points_are_unit_and_spread() {
        let pts = fibonacci_sphere(128);
        assert_eq!(pts.len(), 128);
        let mut mean = Vec3::ZERO;
        for p in &pts {
            assert!((p.length() - 1.0).abs() < 1e-4);
            mean += *p;
        }
        // A well-spread set has a near-zero mean direction.
        assert!((mean / 128.0).length() < 0.05);
    }

    proptest! {
        #[test]
        fn prop_hash_is_in_unit_interval(x in any::<u32>()) {
            let h = hash_u32(x);
            prop_assert!((0.0..1.0).contains(&h));
        }

        #[test]
        fn prop_noise_bounded(px in -20f32..20.0, py in -20f32..20.0, pz in -20f32..20.0) {
            let n = value_noise(Vec3::new(px, py, pz), 3.0);
            prop_assert!((0.0..=1.0).contains(&n));
        }
    }
}
