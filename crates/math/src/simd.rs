//! Four-wide SIMD-friendly lanes: [`F32x4`] and the SoA vector [`Vec3x4`].
//!
//! The ray marcher sphere-traces four rays per packet; the SDF trees and the
//! AABB rejection tests evaluate all four lanes at once through these types.
//! They are plain arrays with per-lane arithmetic — no intrinsics — so the
//! code is portable and the autovectoriser packs the lane loops into SSE/NEON
//! registers where available.
//!
//! # Determinism contract
//!
//! Every operation is defined *per lane* as exactly the scalar `f32`
//! operation it replaces (`+`, `*`, `f32::min`, `f32::sqrt`, …), and the
//! compound helpers ([`Vec3x4::dot`], [`Vec3x4::max_component`], …) evaluate
//! in exactly the association order of their scalar counterparts in
//! [`crate::vec`]. IEEE-754 basic operations are exactly rounded, so a lane
//! computation is **bit-identical** to running the scalar code on that lane's
//! input — which is what lets the packet ray marcher guarantee bit-identical
//! images for any lane count. Tests in `nerflex-scene` assert this end to
//! end; do not introduce `mul_add` or reassociation here.
//!
//! The repo-wide lane/tile/reduction-order contract — covering these lanes,
//! the worker-pool tiling and the fixed-shape tree reductions — is stated in
//! one place: `docs/determinism.md`.

use crate::vec::Vec3;

/// Number of lanes in a packet.
pub const LANES: usize = 4;

/// Four `f32` lanes with component-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x4(pub [f32; 4]);

macro_rules! lanes {
    ($f:expr) => {{
        let f = $f;
        F32x4([f(0), f(1), f(2), f(3)])
    }};
}

impl F32x4 {
    /// All lanes zero.
    pub const ZERO: Self = Self::splat(0.0);

    /// Broadcasts one value to every lane.
    pub const fn splat(v: f32) -> Self {
        Self([v; 4])
    }

    /// Builds from four lane values.
    pub const fn new(a: f32, b: f32, c: f32, d: f32) -> Self {
        Self([a, b, c, d])
    }

    /// The value in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> f32 {
        self.0[lane]
    }

    /// Replaces the value in `lane`.
    #[inline]
    pub fn set_lane(&mut self, lane: usize, v: f32) {
        self.0[lane] = v;
    }

    /// Per-lane `f32::min` (identical to the scalar call lane by lane).
    #[inline]
    pub fn min(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i].min(o.0[i]))
    }

    /// Per-lane `f32::max`.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i].max(o.0[i]))
    }

    /// Per-lane absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        lanes!(|i: usize| self.0[i].abs())
    }

    /// Per-lane square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        lanes!(|i: usize| self.0[i].sqrt())
    }

    /// Per-lane sine.
    #[inline]
    pub fn sin(self) -> Self {
        lanes!(|i: usize| self.0[i].sin())
    }

    /// Per-lane `f32::clamp` (callers guarantee `lo <= hi`).
    #[inline]
    pub fn clamp(self, lo: f32, hi: f32) -> Self {
        lanes!(|i: usize| self.0[i].clamp(lo, hi))
    }

    /// Per-lane `self < o`.
    #[inline]
    pub fn lt(self, o: Self) -> Mask4 {
        Mask4([self.0[0] < o.0[0], self.0[1] < o.0[1], self.0[2] < o.0[2], self.0[3] < o.0[3]])
    }

    /// Per-lane `self <= o`.
    #[inline]
    pub fn le(self, o: Self) -> Mask4 {
        Mask4([self.0[0] <= o.0[0], self.0[1] <= o.0[1], self.0[2] <= o.0[2], self.0[3] <= o.0[3]])
    }

    /// Per-lane `self > o`.
    #[inline]
    pub fn gt(self, o: Self) -> Mask4 {
        Mask4([self.0[0] > o.0[0], self.0[1] > o.0[1], self.0[2] > o.0[2], self.0[3] > o.0[3]])
    }

    /// Per-lane selection: `mask ? self : other`.
    #[inline]
    pub fn select(self, other: Self, mask: Mask4) -> Self {
        lanes!(|i: usize| if mask.0[i] { self.0[i] } else { other.0[i] })
    }
}

impl std::ops::Add for F32x4 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] + o.0[i])
    }
}

impl std::ops::Sub for F32x4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] - o.0[i])
    }
}

impl std::ops::Mul for F32x4 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] * o.0[i])
    }
}

impl std::ops::Div for F32x4 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] / o.0[i])
    }
}

impl std::ops::Neg for F32x4 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        lanes!(|i: usize| -self.0[i])
    }
}

impl std::ops::Add<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn add(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] + s)
    }
}

impl std::ops::Sub<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn sub(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] - s)
    }
}

impl std::ops::Mul<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] * s)
    }
}

impl std::ops::Div<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn div(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] / s)
    }
}

/// Four boolean lanes (comparison results, active-ray masks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mask4(pub [bool; 4]);

impl Mask4 {
    /// All lanes set.
    pub const ALL: Self = Self([true; 4]);
    /// No lane set.
    pub const NONE: Self = Self([false; 4]);

    /// `true` when any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.0[0] || self.0[1] || self.0[2] || self.0[3]
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, o: Self) -> Self {
        Self([self.0[0] && o.0[0], self.0[1] && o.0[1], self.0[2] && o.0[2], self.0[3] && o.0[3]])
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, o: Self) -> Self {
        Self([self.0[0] || o.0[0], self.0[1] || o.0[1], self.0[2] || o.0[2], self.0[3] || o.0[3]])
    }

    /// The value in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> bool {
        self.0[lane]
    }
}

impl std::ops::Not for Mask4 {
    type Output = Self;
    /// Lane-wise NOT.
    #[inline]
    fn not(self) -> Self {
        Self([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

/// Four 3-D vectors in structure-of-arrays layout.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3x4 {
    /// X components of the four lanes.
    pub x: F32x4,
    /// Y components of the four lanes.
    pub y: F32x4,
    /// Z components of the four lanes.
    pub z: F32x4,
}

impl Vec3x4 {
    /// Builds from per-axis lanes.
    pub const fn new(x: F32x4, y: F32x4, z: F32x4) -> Self {
        Self { x, y, z }
    }

    /// Broadcasts one vector to every lane.
    pub const fn splat(v: Vec3) -> Self {
        Self { x: F32x4::splat(v.x), y: F32x4::splat(v.y), z: F32x4::splat(v.z) }
    }

    /// Packs four vectors into lanes.
    pub fn from_lanes(v: [Vec3; 4]) -> Self {
        Self {
            x: F32x4::new(v[0].x, v[1].x, v[2].x, v[3].x),
            y: F32x4::new(v[0].y, v[1].y, v[2].y, v[3].y),
            z: F32x4::new(v[0].z, v[1].z, v[2].z, v[3].z),
        }
    }

    /// The vector in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> Vec3 {
        Vec3::new(self.x.lane(lane), self.y.lane(lane), self.z.lane(lane))
    }

    /// Component-wise minimum with a uniform vector.
    #[inline]
    pub fn min_vec(self, o: Vec3) -> Self {
        Self {
            x: self.x.min(F32x4::splat(o.x)),
            y: self.y.min(F32x4::splat(o.y)),
            z: self.z.min(F32x4::splat(o.z)),
        }
    }

    /// Component-wise maximum with a uniform vector.
    #[inline]
    pub fn max_vec(self, o: Vec3) -> Self {
        Self {
            x: self.x.max(F32x4::splat(o.x)),
            y: self.y.max(F32x4::splat(o.y)),
            z: self.z.max(F32x4::splat(o.z)),
        }
    }

    /// Component-wise maximum with another packet.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self { x: self.x.max(o.x), y: self.y.max(o.y), z: self.z.max(o.z) }
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self { x: self.x.abs(), y: self.y.abs(), z: self.z.abs() }
    }

    /// Dot product, evaluated in the exact association order of
    /// [`Vec3::dot`] (`0.0 + x·x + y·y + z·z`) so each lane matches the
    /// scalar result bit for bit.
    #[inline]
    pub fn dot(self, o: Self) -> F32x4 {
        ((F32x4::ZERO + self.x * o.x) + self.y * o.y) + self.z * o.z
    }

    /// Euclidean length (`dot(self, self).sqrt()`, as in [`Vec3::length`]).
    #[inline]
    pub fn length(self) -> F32x4 {
        self.dot(self).sqrt()
    }

    /// Largest component per lane, folded in the order of
    /// [`Vec3::max_component`].
    #[inline]
    pub fn max_component(self) -> F32x4 {
        F32x4::splat(f32::NEG_INFINITY).max(self.x).max(self.y).max(self.z)
    }

    /// Per-lane unit vector, mirroring [`Vec3::normalized`] operation for
    /// operation: lanes whose length exceeds `1e-12` are divided by it, the
    /// rest pass through unchanged — so each lane is bit-identical to the
    /// scalar call on that lane's vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let len = self.length();
        let scaled = Self { x: self.x / len, y: self.y / len, z: self.z / len };
        let keep = len.gt(F32x4::splat(1e-12));
        Self {
            x: scaled.x.select(self.x, keep),
            y: scaled.y.select(self.y, keep),
            z: scaled.z.select(self.z, keep),
        }
    }
}

impl std::ops::Add for Vec3x4 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self { x: self.x + o.x, y: self.y + o.y, z: self.z + o.z }
    }
}

impl std::ops::Sub for Vec3x4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }
}

impl std::ops::Sub<Vec3> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Vec3) -> Self {
        Self { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }
}

impl std::ops::Mul<F32x4> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn mul(self, s: F32x4) -> Self {
        Self { x: self.x * s, y: self.y * s, z: self.z * s }
    }
}

impl std::ops::Mul<f32> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self { x: self.x * s, y: self.y * s, z: self.z * s }
    }
}

impl std::ops::Div<f32> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn div(self, s: f32) -> Self {
        Self { x: self.x / s, y: self.y / s, z: self.z / s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lanes() -> [Vec3; 4] {
        [
            Vec3::new(0.3, -1.2, 2.5),
            Vec3::new(-0.75, 0.0, 1e-3),
            Vec3::new(4.0, 3.0, -2.0),
            Vec3::new(-0.0, 1.5, 0.25),
        ]
    }

    #[test]
    fn arithmetic_matches_scalar_bit_for_bit() {
        let a = sample_lanes();
        let b = [
            Vec3::new(1.1, 0.4, -0.6),
            Vec3::new(0.0, -2.0, 3.5),
            Vec3::new(-1.0, 0.5, 0.125),
            Vec3::new(2.5, -0.3, 7.0),
        ];
        let pa = Vec3x4::from_lanes(a);
        let pb = Vec3x4::from_lanes(b);
        let sum = pa + pb;
        let dot = pa.dot(pb);
        let len = pa.length();
        for i in 0..LANES {
            assert_eq!(sum.lane(i), a[i] + b[i]);
            assert_eq!(dot.lane(i).to_bits(), a[i].dot(b[i]).to_bits());
            assert_eq!(len.lane(i).to_bits(), a[i].length().to_bits());
        }
    }

    #[test]
    fn min_max_abs_match_scalar() {
        let a = F32x4::new(1.0, -2.0, 0.0, -0.0);
        let b = F32x4::new(-1.0, 3.0, 0.5, 0.0);
        for i in 0..LANES {
            assert_eq!(a.min(b).lane(i).to_bits(), a.lane(i).min(b.lane(i)).to_bits());
            assert_eq!(a.max(b).lane(i).to_bits(), a.lane(i).max(b.lane(i)).to_bits());
            assert_eq!(a.abs().lane(i).to_bits(), a.lane(i).abs().to_bits());
        }
    }

    #[test]
    fn normalized_matches_scalar_including_degenerate_lanes() {
        let lanes =
            [Vec3::new(0.3, -1.2, 2.5), Vec3::ZERO, Vec3::new(4.0, 3.0, -2.0), Vec3::splat(1e-20)];
        let n = Vec3x4::from_lanes(lanes).normalized();
        for (i, v) in lanes.iter().enumerate() {
            let s = v.normalized();
            assert_eq!(n.x.lane(i).to_bits(), s.x.to_bits());
            assert_eq!(n.y.lane(i).to_bits(), s.y.to_bits());
            assert_eq!(n.z.lane(i).to_bits(), s.z.to_bits());
        }
    }

    #[test]
    fn max_component_matches_scalar_fold() {
        let lanes = sample_lanes();
        let m = Vec3x4::from_lanes(lanes).max_component();
        for (i, v) in lanes.iter().enumerate() {
            assert_eq!(m.lane(i).to_bits(), v.max_component().to_bits());
        }
    }

    #[test]
    fn select_and_masks() {
        let a = F32x4::new(1.0, 2.0, 3.0, 4.0);
        let b = F32x4::splat(0.0);
        let mask = a.lt(F32x4::splat(2.5));
        assert_eq!(mask, Mask4([true, true, false, false]));
        assert!(mask.any());
        assert_eq!(a.select(b, mask), F32x4::new(1.0, 2.0, 0.0, 0.0));
        assert!(!Mask4::NONE.any());
        assert_eq!(Mask4::ALL.and(mask), mask);
    }

    #[test]
    fn scalar_broadcast_ops() {
        let a = F32x4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a + 1.0, F32x4::new(2.0, 3.0, 4.0, 5.0));
        assert_eq!(a - 1.0, F32x4::new(0.0, 1.0, 2.0, 3.0));
        assert_eq!(a * 2.0, F32x4::new(2.0, 4.0, 6.0, 8.0));
        assert_eq!(a / 2.0, F32x4::new(0.5, 1.0, 1.5, 2.0));
        assert_eq!(-a, F32x4::new(-1.0, -2.0, -3.0, -4.0));
        assert_eq!(a.clamp(1.5, 3.5), F32x4::new(1.5, 2.0, 3.0, 3.5));
    }
}
