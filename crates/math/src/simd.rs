//! SIMD-friendly lanes: the four-wide [`F32x4`] / [`Vec3x4`] reference
//! packet and its eight-wide mirror [`F32x8`] / [`Vec3x8`], selected at the
//! call sites through [`LaneWidth`].
//!
//! The ray marcher sphere-traces four or eight rays per packet; the SDF
//! trees and the AABB rejection tests evaluate all lanes at once through
//! these types. They are plain arrays with per-lane arithmetic — no
//! intrinsics — so the code is portable and the autovectoriser packs the
//! lane loops into SSE/AVX/NEON registers where available.
//!
//! # Determinism contract
//!
//! Every operation is defined *per lane* as exactly the scalar `f32`
//! operation it replaces (`+`, `*`, `f32::min`, `f32::sqrt`, …), and the
//! compound helpers ([`Vec3x4::dot`], [`Vec3x4::max_component`], …) evaluate
//! in exactly the association order of their scalar counterparts in
//! [`crate::vec`]. IEEE-754 basic operations are exactly rounded, so a lane
//! computation is **bit-identical** to running the scalar code on that lane's
//! input — which is what lets the packet ray marcher guarantee bit-identical
//! images for any lane count. Tests in `nerflex-scene` assert this end to
//! end; do not introduce `mul_add` or reassociation here.
//!
//! The repo-wide lane/tile/reduction-order contract — covering these lanes,
//! the worker-pool tiling and the fixed-shape tree reductions — is stated in
//! one place: `docs/determinism.md`.

use crate::vec::Vec3;

/// Number of lanes in a reference (four-wide) packet.
pub const LANES: usize = 4;

/// Number of lanes in a wide (eight-wide) packet.
pub const LANES8: usize = 8;

/// Packet width knob for the lane-selectable code paths (ray marching, the
/// fused metrics bands). Widths never change output bits — every lane is
/// the exact scalar computation — so this is purely a throughput choice;
/// the four-wide path is the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneWidth {
    /// Four lanes per packet (the reference path).
    #[default]
    X4,
    /// Eight lanes per packet (the wavefront layout staged for a GPU
    /// backend).
    X8,
}

impl LaneWidth {
    /// Lanes per packet.
    pub const fn lanes(self) -> usize {
        match self {
            Self::X4 => LANES,
            Self::X8 => LANES8,
        }
    }
}

/// Four `f32` lanes with component-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x4(pub [f32; 4]);

macro_rules! lanes {
    ($f:expr) => {{
        let f = $f;
        F32x4([f(0), f(1), f(2), f(3)])
    }};
}

impl F32x4 {
    /// All lanes zero.
    pub const ZERO: Self = Self::splat(0.0);

    /// Broadcasts one value to every lane.
    pub const fn splat(v: f32) -> Self {
        Self([v; 4])
    }

    /// Builds from four lane values.
    pub const fn new(a: f32, b: f32, c: f32, d: f32) -> Self {
        Self([a, b, c, d])
    }

    /// The value in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> f32 {
        self.0[lane]
    }

    /// Replaces the value in `lane`.
    #[inline]
    pub fn set_lane(&mut self, lane: usize, v: f32) {
        self.0[lane] = v;
    }

    /// Per-lane `f32::min` (identical to the scalar call lane by lane).
    #[inline]
    pub fn min(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i].min(o.0[i]))
    }

    /// Per-lane `f32::max`.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i].max(o.0[i]))
    }

    /// Per-lane absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        lanes!(|i: usize| self.0[i].abs())
    }

    /// Per-lane square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        lanes!(|i: usize| self.0[i].sqrt())
    }

    /// Per-lane sine.
    #[inline]
    pub fn sin(self) -> Self {
        lanes!(|i: usize| self.0[i].sin())
    }

    /// Per-lane `f32::clamp` (callers guarantee `lo <= hi`).
    #[inline]
    pub fn clamp(self, lo: f32, hi: f32) -> Self {
        lanes!(|i: usize| self.0[i].clamp(lo, hi))
    }

    /// Per-lane `self < o`.
    #[inline]
    pub fn lt(self, o: Self) -> Mask4 {
        Mask4([self.0[0] < o.0[0], self.0[1] < o.0[1], self.0[2] < o.0[2], self.0[3] < o.0[3]])
    }

    /// Per-lane `self <= o`.
    #[inline]
    pub fn le(self, o: Self) -> Mask4 {
        Mask4([self.0[0] <= o.0[0], self.0[1] <= o.0[1], self.0[2] <= o.0[2], self.0[3] <= o.0[3]])
    }

    /// Per-lane `self > o`.
    #[inline]
    pub fn gt(self, o: Self) -> Mask4 {
        Mask4([self.0[0] > o.0[0], self.0[1] > o.0[1], self.0[2] > o.0[2], self.0[3] > o.0[3]])
    }

    /// Per-lane selection: `mask ? self : other`.
    #[inline]
    pub fn select(self, other: Self, mask: Mask4) -> Self {
        lanes!(|i: usize| if mask.0[i] { self.0[i] } else { other.0[i] })
    }
}

impl std::ops::Add for F32x4 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] + o.0[i])
    }
}

impl std::ops::Sub for F32x4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] - o.0[i])
    }
}

impl std::ops::Mul for F32x4 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] * o.0[i])
    }
}

impl std::ops::Div for F32x4 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        lanes!(|i: usize| self.0[i] / o.0[i])
    }
}

impl std::ops::Neg for F32x4 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        lanes!(|i: usize| -self.0[i])
    }
}

impl std::ops::Add<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn add(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] + s)
    }
}

impl std::ops::Sub<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn sub(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] - s)
    }
}

impl std::ops::Mul<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] * s)
    }
}

impl std::ops::Div<f32> for F32x4 {
    type Output = Self;
    #[inline]
    fn div(self, s: f32) -> Self {
        lanes!(|i: usize| self.0[i] / s)
    }
}

/// Four boolean lanes (comparison results, active-ray masks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mask4(pub [bool; 4]);

impl Mask4 {
    /// All lanes set.
    pub const ALL: Self = Self([true; 4]);
    /// No lane set.
    pub const NONE: Self = Self([false; 4]);

    /// `true` when any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.0[0] || self.0[1] || self.0[2] || self.0[3]
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, o: Self) -> Self {
        Self([self.0[0] && o.0[0], self.0[1] && o.0[1], self.0[2] && o.0[2], self.0[3] && o.0[3]])
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, o: Self) -> Self {
        Self([self.0[0] || o.0[0], self.0[1] || o.0[1], self.0[2] || o.0[2], self.0[3] || o.0[3]])
    }

    /// The value in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> bool {
        self.0[lane]
    }
}

impl std::ops::Not for Mask4 {
    type Output = Self;
    /// Lane-wise NOT.
    #[inline]
    fn not(self) -> Self {
        Self([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

/// Four 3-D vectors in structure-of-arrays layout.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3x4 {
    /// X components of the four lanes.
    pub x: F32x4,
    /// Y components of the four lanes.
    pub y: F32x4,
    /// Z components of the four lanes.
    pub z: F32x4,
}

impl Vec3x4 {
    /// Builds from per-axis lanes.
    pub const fn new(x: F32x4, y: F32x4, z: F32x4) -> Self {
        Self { x, y, z }
    }

    /// Broadcasts one vector to every lane.
    pub const fn splat(v: Vec3) -> Self {
        Self { x: F32x4::splat(v.x), y: F32x4::splat(v.y), z: F32x4::splat(v.z) }
    }

    /// Packs four vectors into lanes.
    pub fn from_lanes(v: [Vec3; 4]) -> Self {
        Self {
            x: F32x4::new(v[0].x, v[1].x, v[2].x, v[3].x),
            y: F32x4::new(v[0].y, v[1].y, v[2].y, v[3].y),
            z: F32x4::new(v[0].z, v[1].z, v[2].z, v[3].z),
        }
    }

    /// The vector in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> Vec3 {
        Vec3::new(self.x.lane(lane), self.y.lane(lane), self.z.lane(lane))
    }

    /// Component-wise minimum with a uniform vector.
    #[inline]
    pub fn min_vec(self, o: Vec3) -> Self {
        Self {
            x: self.x.min(F32x4::splat(o.x)),
            y: self.y.min(F32x4::splat(o.y)),
            z: self.z.min(F32x4::splat(o.z)),
        }
    }

    /// Component-wise maximum with a uniform vector.
    #[inline]
    pub fn max_vec(self, o: Vec3) -> Self {
        Self {
            x: self.x.max(F32x4::splat(o.x)),
            y: self.y.max(F32x4::splat(o.y)),
            z: self.z.max(F32x4::splat(o.z)),
        }
    }

    /// Component-wise maximum with another packet.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self { x: self.x.max(o.x), y: self.y.max(o.y), z: self.z.max(o.z) }
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self { x: self.x.abs(), y: self.y.abs(), z: self.z.abs() }
    }

    /// Dot product, evaluated in the exact association order of
    /// [`Vec3::dot`] (`0.0 + x·x + y·y + z·z`) so each lane matches the
    /// scalar result bit for bit.
    #[inline]
    pub fn dot(self, o: Self) -> F32x4 {
        ((F32x4::ZERO + self.x * o.x) + self.y * o.y) + self.z * o.z
    }

    /// Euclidean length (`dot(self, self).sqrt()`, as in [`Vec3::length`]).
    #[inline]
    pub fn length(self) -> F32x4 {
        self.dot(self).sqrt()
    }

    /// Largest component per lane, folded in the order of
    /// [`Vec3::max_component`].
    #[inline]
    pub fn max_component(self) -> F32x4 {
        F32x4::splat(f32::NEG_INFINITY).max(self.x).max(self.y).max(self.z)
    }

    /// Per-lane unit vector, mirroring [`Vec3::normalized`] operation for
    /// operation: lanes whose length exceeds `1e-12` are divided by it, the
    /// rest pass through unchanged — so each lane is bit-identical to the
    /// scalar call on that lane's vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let len = self.length();
        let scaled = Self { x: self.x / len, y: self.y / len, z: self.z / len };
        let keep = len.gt(F32x4::splat(1e-12));
        Self {
            x: scaled.x.select(self.x, keep),
            y: scaled.y.select(self.y, keep),
            z: scaled.z.select(self.z, keep),
        }
    }
}

impl std::ops::Add for Vec3x4 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self { x: self.x + o.x, y: self.y + o.y, z: self.z + o.z }
    }
}

impl std::ops::Sub for Vec3x4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }
}

impl std::ops::Sub<Vec3> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Vec3) -> Self {
        Self { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }
}

impl std::ops::Mul<F32x4> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn mul(self, s: F32x4) -> Self {
        Self { x: self.x * s, y: self.y * s, z: self.z * s }
    }
}

impl std::ops::Mul<f32> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self { x: self.x * s, y: self.y * s, z: self.z * s }
    }
}

impl std::ops::Div<f32> for Vec3x4 {
    type Output = Self;
    #[inline]
    fn div(self, s: f32) -> Self {
        Self { x: self.x / s, y: self.y / s, z: self.z / s }
    }
}

/// Eight `f32` lanes with component-wise arithmetic — the wide mirror of
/// [`F32x4`], under the same per-lane determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F32x8(pub [f32; 8]);

macro_rules! lanes8 {
    ($f:expr) => {{
        let f = $f;
        F32x8(std::array::from_fn(f))
    }};
}

macro_rules! mask8 {
    ($f:expr) => {{
        let f = $f;
        Mask8(std::array::from_fn(f))
    }};
}

impl F32x8 {
    /// All lanes zero.
    pub const ZERO: Self = Self::splat(0.0);

    /// Broadcasts one value to every lane.
    pub const fn splat(v: f32) -> Self {
        Self([v; 8])
    }

    /// Builds from eight lane values.
    pub const fn new(v: [f32; 8]) -> Self {
        Self(v)
    }

    /// Concatenates two four-wide packets (`lo` fills lanes 0–3).
    #[inline]
    pub fn from_halves(lo: F32x4, hi: F32x4) -> Self {
        Self(std::array::from_fn(|i| if i < 4 { lo.lane(i) } else { hi.lane(i - 4) }))
    }

    /// Splits into the two four-wide halves (lanes 0–3, lanes 4–7).
    #[inline]
    pub fn halves(self) -> (F32x4, F32x4) {
        (
            F32x4::new(self.0[0], self.0[1], self.0[2], self.0[3]),
            F32x4::new(self.0[4], self.0[5], self.0[6], self.0[7]),
        )
    }

    /// The value in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> f32 {
        self.0[lane]
    }

    /// Replaces the value in `lane`.
    #[inline]
    pub fn set_lane(&mut self, lane: usize, v: f32) {
        self.0[lane] = v;
    }

    /// Per-lane `f32::min` (identical to the scalar call lane by lane).
    #[inline]
    pub fn min(self, o: Self) -> Self {
        lanes8!(|i: usize| self.0[i].min(o.0[i]))
    }

    /// Per-lane `f32::max`.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        lanes8!(|i: usize| self.0[i].max(o.0[i]))
    }

    /// Per-lane absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        lanes8!(|i: usize| self.0[i].abs())
    }

    /// Per-lane square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        lanes8!(|i: usize| self.0[i].sqrt())
    }

    /// Per-lane sine.
    #[inline]
    pub fn sin(self) -> Self {
        lanes8!(|i: usize| self.0[i].sin())
    }

    /// Per-lane `f32::clamp` (callers guarantee `lo <= hi`).
    #[inline]
    pub fn clamp(self, lo: f32, hi: f32) -> Self {
        lanes8!(|i: usize| self.0[i].clamp(lo, hi))
    }

    /// Per-lane `self < o`.
    #[inline]
    pub fn lt(self, o: Self) -> Mask8 {
        mask8!(|i: usize| self.0[i] < o.0[i])
    }

    /// Per-lane `self <= o`.
    #[inline]
    pub fn le(self, o: Self) -> Mask8 {
        mask8!(|i: usize| self.0[i] <= o.0[i])
    }

    /// Per-lane `self > o`.
    #[inline]
    pub fn gt(self, o: Self) -> Mask8 {
        mask8!(|i: usize| self.0[i] > o.0[i])
    }

    /// Per-lane selection: `mask ? self : other`.
    #[inline]
    pub fn select(self, other: Self, mask: Mask8) -> Self {
        lanes8!(|i: usize| if mask.0[i] { self.0[i] } else { other.0[i] })
    }
}

impl std::ops::Add for F32x8 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        lanes8!(|i: usize| self.0[i] + o.0[i])
    }
}

impl std::ops::Sub for F32x8 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        lanes8!(|i: usize| self.0[i] - o.0[i])
    }
}

impl std::ops::Mul for F32x8 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        lanes8!(|i: usize| self.0[i] * o.0[i])
    }
}

impl std::ops::Div for F32x8 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        lanes8!(|i: usize| self.0[i] / o.0[i])
    }
}

impl std::ops::Neg for F32x8 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        lanes8!(|i: usize| -self.0[i])
    }
}

impl std::ops::Add<f32> for F32x8 {
    type Output = Self;
    #[inline]
    fn add(self, s: f32) -> Self {
        lanes8!(|i: usize| self.0[i] + s)
    }
}

impl std::ops::Sub<f32> for F32x8 {
    type Output = Self;
    #[inline]
    fn sub(self, s: f32) -> Self {
        lanes8!(|i: usize| self.0[i] - s)
    }
}

impl std::ops::Mul<f32> for F32x8 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        lanes8!(|i: usize| self.0[i] * s)
    }
}

impl std::ops::Div<f32> for F32x8 {
    type Output = Self;
    #[inline]
    fn div(self, s: f32) -> Self {
        lanes8!(|i: usize| self.0[i] / s)
    }
}

/// Eight boolean lanes (comparison results, active-ray masks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mask8(pub [bool; 8]);

impl Mask8 {
    /// All lanes set.
    pub const ALL: Self = Self([true; 8]);
    /// No lane set.
    pub const NONE: Self = Self([false; 8]);

    /// Concatenates two four-wide masks (`lo` fills lanes 0–3).
    #[inline]
    pub fn from_halves(lo: Mask4, hi: Mask4) -> Self {
        Self(std::array::from_fn(|i| if i < 4 { lo.lane(i) } else { hi.lane(i - 4) }))
    }

    /// Splits into the two four-wide halves (lanes 0–3, lanes 4–7).
    #[inline]
    pub fn halves(self) -> (Mask4, Mask4) {
        (
            Mask4([self.0[0], self.0[1], self.0[2], self.0[3]]),
            Mask4([self.0[4], self.0[5], self.0[6], self.0[7]]),
        )
    }

    /// `true` when any lane is set.
    #[inline]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, o: Self) -> Self {
        mask8!(|i: usize| self.0[i] && o.0[i])
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, o: Self) -> Self {
        mask8!(|i: usize| self.0[i] || o.0[i])
    }

    /// The value in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> bool {
        self.0[lane]
    }
}

impl std::ops::Not for Mask8 {
    type Output = Self;
    /// Lane-wise NOT.
    #[inline]
    fn not(self) -> Self {
        mask8!(|i: usize| !self.0[i])
    }
}

/// Eight 3-D vectors in structure-of-arrays layout.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3x8 {
    /// X components of the eight lanes.
    pub x: F32x8,
    /// Y components of the eight lanes.
    pub y: F32x8,
    /// Z components of the eight lanes.
    pub z: F32x8,
}

impl Vec3x8 {
    /// Builds from per-axis lanes.
    pub const fn new(x: F32x8, y: F32x8, z: F32x8) -> Self {
        Self { x, y, z }
    }

    /// Broadcasts one vector to every lane.
    pub const fn splat(v: Vec3) -> Self {
        Self { x: F32x8::splat(v.x), y: F32x8::splat(v.y), z: F32x8::splat(v.z) }
    }

    /// Packs eight vectors into lanes.
    pub fn from_lanes(v: [Vec3; 8]) -> Self {
        Self {
            x: F32x8(std::array::from_fn(|i| v[i].x)),
            y: F32x8(std::array::from_fn(|i| v[i].y)),
            z: F32x8(std::array::from_fn(|i| v[i].z)),
        }
    }

    /// Concatenates two four-wide packets (`lo` fills lanes 0–3).
    #[inline]
    pub fn from_halves(lo: Vec3x4, hi: Vec3x4) -> Self {
        Self {
            x: F32x8::from_halves(lo.x, hi.x),
            y: F32x8::from_halves(lo.y, hi.y),
            z: F32x8::from_halves(lo.z, hi.z),
        }
    }

    /// Splits into the two four-wide halves (lanes 0–3, lanes 4–7).
    #[inline]
    pub fn halves(self) -> (Vec3x4, Vec3x4) {
        let (xl, xh) = self.x.halves();
        let (yl, yh) = self.y.halves();
        let (zl, zh) = self.z.halves();
        (Vec3x4::new(xl, yl, zl), Vec3x4::new(xh, yh, zh))
    }

    /// The vector in `lane`.
    #[inline]
    pub fn lane(self, lane: usize) -> Vec3 {
        Vec3::new(self.x.lane(lane), self.y.lane(lane), self.z.lane(lane))
    }

    /// Component-wise minimum with a uniform vector.
    #[inline]
    pub fn min_vec(self, o: Vec3) -> Self {
        Self {
            x: self.x.min(F32x8::splat(o.x)),
            y: self.y.min(F32x8::splat(o.y)),
            z: self.z.min(F32x8::splat(o.z)),
        }
    }

    /// Component-wise maximum with a uniform vector.
    #[inline]
    pub fn max_vec(self, o: Vec3) -> Self {
        Self {
            x: self.x.max(F32x8::splat(o.x)),
            y: self.y.max(F32x8::splat(o.y)),
            z: self.z.max(F32x8::splat(o.z)),
        }
    }

    /// Component-wise maximum with another packet.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self { x: self.x.max(o.x), y: self.y.max(o.y), z: self.z.max(o.z) }
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self { x: self.x.abs(), y: self.y.abs(), z: self.z.abs() }
    }

    /// Dot product, evaluated in the exact association order of
    /// [`Vec3::dot`] (`0.0 + x·x + y·y + z·z`) so each lane matches the
    /// scalar result bit for bit.
    #[inline]
    pub fn dot(self, o: Self) -> F32x8 {
        ((F32x8::ZERO + self.x * o.x) + self.y * o.y) + self.z * o.z
    }

    /// Euclidean length (`dot(self, self).sqrt()`, as in [`Vec3::length`]).
    #[inline]
    pub fn length(self) -> F32x8 {
        self.dot(self).sqrt()
    }

    /// Largest component per lane, folded in the order of
    /// [`Vec3::max_component`].
    #[inline]
    pub fn max_component(self) -> F32x8 {
        F32x8::splat(f32::NEG_INFINITY).max(self.x).max(self.y).max(self.z)
    }

    /// Per-lane unit vector, mirroring [`Vec3::normalized`] operation for
    /// operation: lanes whose length exceeds `1e-12` are divided by it, the
    /// rest pass through unchanged — so each lane is bit-identical to the
    /// scalar call on that lane's vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let len = self.length();
        let scaled = Self { x: self.x / len, y: self.y / len, z: self.z / len };
        let keep = len.gt(F32x8::splat(1e-12));
        Self {
            x: scaled.x.select(self.x, keep),
            y: scaled.y.select(self.y, keep),
            z: scaled.z.select(self.z, keep),
        }
    }
}

impl std::ops::Add for Vec3x8 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self { x: self.x + o.x, y: self.y + o.y, z: self.z + o.z }
    }
}

impl std::ops::Sub for Vec3x8 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }
}

impl std::ops::Sub<Vec3> for Vec3x8 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Vec3) -> Self {
        Self { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }
}

impl std::ops::Mul<F32x8> for Vec3x8 {
    type Output = Self;
    #[inline]
    fn mul(self, s: F32x8) -> Self {
        Self { x: self.x * s, y: self.y * s, z: self.z * s }
    }
}

impl std::ops::Mul<f32> for Vec3x8 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f32) -> Self {
        Self { x: self.x * s, y: self.y * s, z: self.z * s }
    }
}

impl std::ops::Div<f32> for Vec3x8 {
    type Output = Self;
    #[inline]
    fn div(self, s: f32) -> Self {
        Self { x: self.x / s, y: self.y / s, z: self.z / s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lanes() -> [Vec3; 4] {
        [
            Vec3::new(0.3, -1.2, 2.5),
            Vec3::new(-0.75, 0.0, 1e-3),
            Vec3::new(4.0, 3.0, -2.0),
            Vec3::new(-0.0, 1.5, 0.25),
        ]
    }

    #[test]
    fn arithmetic_matches_scalar_bit_for_bit() {
        let a = sample_lanes();
        let b = [
            Vec3::new(1.1, 0.4, -0.6),
            Vec3::new(0.0, -2.0, 3.5),
            Vec3::new(-1.0, 0.5, 0.125),
            Vec3::new(2.5, -0.3, 7.0),
        ];
        let pa = Vec3x4::from_lanes(a);
        let pb = Vec3x4::from_lanes(b);
        let sum = pa + pb;
        let dot = pa.dot(pb);
        let len = pa.length();
        for i in 0..LANES {
            assert_eq!(sum.lane(i), a[i] + b[i]);
            assert_eq!(dot.lane(i).to_bits(), a[i].dot(b[i]).to_bits());
            assert_eq!(len.lane(i).to_bits(), a[i].length().to_bits());
        }
    }

    #[test]
    fn min_max_abs_match_scalar() {
        let a = F32x4::new(1.0, -2.0, 0.0, -0.0);
        let b = F32x4::new(-1.0, 3.0, 0.5, 0.0);
        for i in 0..LANES {
            assert_eq!(a.min(b).lane(i).to_bits(), a.lane(i).min(b.lane(i)).to_bits());
            assert_eq!(a.max(b).lane(i).to_bits(), a.lane(i).max(b.lane(i)).to_bits());
            assert_eq!(a.abs().lane(i).to_bits(), a.lane(i).abs().to_bits());
        }
    }

    #[test]
    fn normalized_matches_scalar_including_degenerate_lanes() {
        let lanes =
            [Vec3::new(0.3, -1.2, 2.5), Vec3::ZERO, Vec3::new(4.0, 3.0, -2.0), Vec3::splat(1e-20)];
        let n = Vec3x4::from_lanes(lanes).normalized();
        for (i, v) in lanes.iter().enumerate() {
            let s = v.normalized();
            assert_eq!(n.x.lane(i).to_bits(), s.x.to_bits());
            assert_eq!(n.y.lane(i).to_bits(), s.y.to_bits());
            assert_eq!(n.z.lane(i).to_bits(), s.z.to_bits());
        }
    }

    #[test]
    fn max_component_matches_scalar_fold() {
        let lanes = sample_lanes();
        let m = Vec3x4::from_lanes(lanes).max_component();
        for (i, v) in lanes.iter().enumerate() {
            assert_eq!(m.lane(i).to_bits(), v.max_component().to_bits());
        }
    }

    #[test]
    fn select_and_masks() {
        let a = F32x4::new(1.0, 2.0, 3.0, 4.0);
        let b = F32x4::splat(0.0);
        let mask = a.lt(F32x4::splat(2.5));
        assert_eq!(mask, Mask4([true, true, false, false]));
        assert!(mask.any());
        assert_eq!(a.select(b, mask), F32x4::new(1.0, 2.0, 0.0, 0.0));
        assert!(!Mask4::NONE.any());
        assert_eq!(Mask4::ALL.and(mask), mask);
    }

    #[test]
    fn scalar_broadcast_ops() {
        let a = F32x4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a + 1.0, F32x4::new(2.0, 3.0, 4.0, 5.0));
        assert_eq!(a - 1.0, F32x4::new(0.0, 1.0, 2.0, 3.0));
        assert_eq!(a * 2.0, F32x4::new(2.0, 4.0, 6.0, 8.0));
        assert_eq!(a / 2.0, F32x4::new(0.5, 1.0, 1.5, 2.0));
        assert_eq!(-a, F32x4::new(-1.0, -2.0, -3.0, -4.0));
        assert_eq!(a.clamp(1.5, 3.5), F32x4::new(1.5, 2.0, 3.0, 3.5));
    }

    #[test]
    fn lane_width_knob_reports_packet_sizes() {
        assert_eq!(LaneWidth::default(), LaneWidth::X4);
        assert_eq!(LaneWidth::X4.lanes(), LANES);
        assert_eq!(LaneWidth::X8.lanes(), LANES8);
    }

    #[test]
    fn mask8_logic_matches_per_lane_booleans() {
        let a = F32x8::new([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mask = a.lt(F32x8::splat(4.5));
        assert_eq!(mask, Mask8([true, true, true, true, false, false, false, false]));
        assert!(mask.any());
        assert!(!Mask8::NONE.any());
        assert_eq!(Mask8::ALL.and(mask), mask);
        assert_eq!(Mask8::NONE.or(mask), mask);
        assert_eq!(!(!mask), mask);
        assert_eq!(a.select(F32x8::ZERO, mask).lane(5), 0.0);
        assert_eq!(a.select(F32x8::ZERO, mask).lane(2), 3.0);
    }
}

#[cfg(test)]
mod wide_lane_proptests {
    //! Satellite coverage: every `F32x8` / `Vec3x8` operation is pinned
    //! bit-identical per lane to the scalar operation it replaces, over
    //! random inputs (mirroring the 4-wide contract the scene proptests
    //! pin end to end through the SDF trees).

    use super::*;
    use proptest::collection;
    use proptest::prelude::*;

    fn pack(v: &[f32]) -> F32x8 {
        F32x8(std::array::from_fn(|i| v[i]))
    }

    fn vec_lanes(v: &[f32]) -> [Vec3; 8] {
        std::array::from_fn(|i| Vec3::new(v[3 * i], v[3 * i + 1], v[3 * i + 2]))
    }

    proptest! {
        #[test]
        fn f32x8_arithmetic_is_bit_identical_to_scalar(
            xs in collection::vec(-100.0f32..100.0, 8..9),
            ys in collection::vec(-100.0f32..100.0, 8..9),
        ) {
            let (a, b) = (pack(&xs), pack(&ys));
            for i in 0..LANES8 {
                let (x, y) = (xs[i], ys[i]);
                prop_assert_eq!((a + b).lane(i).to_bits(), (x + y).to_bits());
                prop_assert_eq!((a - b).lane(i).to_bits(), (x - y).to_bits());
                prop_assert_eq!((a * b).lane(i).to_bits(), (x * y).to_bits());
                prop_assert_eq!((a / b).lane(i).to_bits(), (x / y).to_bits());
                prop_assert_eq!((-a).lane(i).to_bits(), (-x).to_bits());
            }
        }

        #[test]
        fn f32x8_scalar_broadcast_is_bit_identical_to_scalar(
            xs in collection::vec(-100.0f32..100.0, 8..9),
            s in -10.0f32..10.0,
        ) {
            let a = pack(&xs);
            for (i, &x) in xs.iter().enumerate() {
                prop_assert_eq!((a + s).lane(i).to_bits(), (x + s).to_bits());
                prop_assert_eq!((a - s).lane(i).to_bits(), (x - s).to_bits());
                prop_assert_eq!((a * s).lane(i).to_bits(), (x * s).to_bits());
                prop_assert_eq!((a / s).lane(i).to_bits(), (x / s).to_bits());
            }
        }

        #[test]
        fn f32x8_unary_helpers_are_bit_identical_to_scalar(
            xs in collection::vec(-100.0f32..100.0, 8..9),
            lo in -5.0f32..0.0,
            span in 0.0f32..10.0,
        ) {
            let a = pack(&xs);
            let hi = lo + span;
            for (i, &x) in xs.iter().enumerate() {
                prop_assert_eq!(a.abs().lane(i).to_bits(), x.abs().to_bits());
                // Negative lanes take the NaN branch in both paths.
                prop_assert_eq!(a.sqrt().lane(i).to_bits(), x.sqrt().to_bits());
                prop_assert_eq!(a.sin().lane(i).to_bits(), x.sin().to_bits());
                prop_assert_eq!(a.clamp(lo, hi).lane(i).to_bits(), x.clamp(lo, hi).to_bits());
            }
        }

        #[test]
        fn f32x8_comparisons_and_select_match_scalar(
            xs in collection::vec(-100.0f32..100.0, 8..9),
            ys in collection::vec(-100.0f32..100.0, 8..9),
        ) {
            let (a, b) = (pack(&xs), pack(&ys));
            for i in 0..LANES8 {
                let (x, y) = (xs[i], ys[i]);
                prop_assert_eq!(a.lt(b).lane(i), x < y);
                prop_assert_eq!(a.le(b).lane(i), x <= y);
                prop_assert_eq!(a.gt(b).lane(i), x > y);
                prop_assert_eq!(a.min(b).lane(i).to_bits(), x.min(y).to_bits());
                prop_assert_eq!(a.max(b).lane(i).to_bits(), x.max(y).to_bits());
                let sel = a.select(b, a.lt(b));
                prop_assert_eq!(sel.lane(i).to_bits(), if x < y { x } else { y }.to_bits());
            }
        }

        #[test]
        fn vec3x8_compound_helpers_are_bit_identical_to_scalar(
            xs in collection::vec(-10.0f32..10.0, 24..25),
            ys in collection::vec(-10.0f32..10.0, 24..25),
        ) {
            let (va, vb) = (vec_lanes(&xs), vec_lanes(&ys));
            let (pa, pb) = (Vec3x8::from_lanes(va), Vec3x8::from_lanes(vb));
            let dot = pa.dot(pb);
            let len = pa.length();
            let maxc = pa.max_component();
            let norm = pa.normalized();
            let sum = pa + pb;
            let diff = pa - pb;
            for i in 0..LANES8 {
                prop_assert_eq!(dot.lane(i).to_bits(), va[i].dot(vb[i]).to_bits());
                prop_assert_eq!(len.lane(i).to_bits(), va[i].length().to_bits());
                prop_assert_eq!(maxc.lane(i).to_bits(), va[i].max_component().to_bits());
                let n = va[i].normalized();
                prop_assert_eq!(norm.lane(i).x.to_bits(), n.x.to_bits());
                prop_assert_eq!(norm.lane(i).y.to_bits(), n.y.to_bits());
                prop_assert_eq!(norm.lane(i).z.to_bits(), n.z.to_bits());
                prop_assert_eq!(sum.lane(i), va[i] + vb[i]);
                prop_assert_eq!(diff.lane(i), va[i] - vb[i]);
            }
        }

        #[test]
        fn vec3x8_bound_clamps_are_bit_identical_to_scalar(
            xs in collection::vec(-10.0f32..10.0, 24..25),
            bound in collection::vec(-5.0f32..5.0, 3..4),
        ) {
            let va = vec_lanes(&xs);
            let pa = Vec3x8::from_lanes(va);
            let b = Vec3::new(bound[0], bound[1], bound[2]);
            let lo = pa.min_vec(b);
            let hi = pa.max_vec(b);
            for (i, v) in va.iter().enumerate() {
                prop_assert_eq!(lo.lane(i).x.to_bits(), v.x.min(b.x).to_bits());
                prop_assert_eq!(lo.lane(i).y.to_bits(), v.y.min(b.y).to_bits());
                prop_assert_eq!(lo.lane(i).z.to_bits(), v.z.min(b.z).to_bits());
                prop_assert_eq!(hi.lane(i).x.to_bits(), v.x.max(b.x).to_bits());
                prop_assert_eq!(hi.lane(i).y.to_bits(), v.y.max(b.y).to_bits());
                prop_assert_eq!(hi.lane(i).z.to_bits(), v.z.max(b.z).to_bits());
            }
        }
    }
}
