//! Summary statistics and least-squares helpers (in `f64`).
//!
//! The profiler (`nerflex-profile`) fits its white-box models with the
//! Gauss–Newton routine built on [`solve_normal_equations`]; the evaluation
//! harness reports means / standard deviations of prediction errors with
//! [`Summary`].

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice; `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Returns `0.0` when either input has zero variance or the slices are empty
/// or of different lengths.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Five-number style summary (count, mean, standard deviation, min, max) of a
/// sample — used for the profiler error analysis reported in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `xs` (all fields zero for an empty slice).
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        Self {
            count: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Ordinary least squares for the simple linear model `y = a + b·x`.
///
/// Returns `(a, b)`; when `x` has zero variance the slope is `0` and the
/// intercept is the mean of `y`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "linear_fit requires equal-length inputs");
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den.abs() < 1e-15 {
        return (my, 0.0);
    }
    let b = num / den;
    (my - b * mx, b)
}

/// Solves the `n×n` linear system `A·x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` when `A` is singular.
///
/// `a` is row-major and is consumed (it is used as scratch space).
// Index-based loops keep the elimination readable next to its textbook form
// (iterator rewrites would need split borrows of the pivot row).
#[allow(clippy::needless_range_loop)]
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|row| row.len() == n), "matrix shape mismatch");
    for col in 0..n {
        let pivot_row =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Solves the least-squares problem `min ‖J·δ − r‖²` through the normal
/// equations `(JᵀJ + λI)·δ = Jᵀr`.
///
/// `jacobian` has one row per residual; `lambda` is an optional
/// Levenberg–Marquardt damping term (pass `0.0` for plain Gauss–Newton).
/// Returns `None` when the normal matrix is singular.
pub fn solve_normal_equations(
    jacobian: &[Vec<f64>],
    residuals: &[f64],
    lambda: f64,
) -> Option<Vec<f64>> {
    let rows = jacobian.len();
    if rows == 0 || rows != residuals.len() {
        return None;
    }
    let cols = jacobian[0].len();
    let mut jtj = vec![vec![0.0; cols]; cols];
    let mut jtr = vec![0.0; cols];
    for (row, &r) in jacobian.iter().zip(residuals) {
        debug_assert_eq!(row.len(), cols);
        for i in 0..cols {
            jtr[i] += row[i] * r;
            for j in 0..cols {
                jtj[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in jtj.iter_mut().enumerate() {
        row[i] += lambda;
    }
    solve_linear_system(jtj, jtr)
}

/// Root-mean-square error between predictions and targets.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "rmse requires equal-length inputs");
    if predicted.is_empty() {
        return 0.0;
    }
    let sum: f64 = predicted.iter().zip(actual).map(|(p, a)| (p - a) * (p - a)).sum();
    (sum / predicted.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn correlation_of_linear_data_is_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-9);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-9);
        assert_eq!(correlation(&xs, &vec![1.0; 50]), 0.0);
    }

    #[test]
    fn summary_reports_extrema() {
        let s = Summary::of(&[1.0, -2.0, 5.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 5.0);
        assert!(format!("{s}").contains("n=3"));
    }

    #[test]
    fn linear_fit_recovers_coefficients() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x + 1.25).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 1.25).abs() < 1e-9);
        assert!((b - 2.5).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_x() {
        let (a, b) = linear_fit(&[2.0, 2.0, 2.0], &[1.0, 3.0, 5.0]);
        assert_eq!(b, 0.0);
        assert_eq!(a, 3.0);
    }

    #[test]
    fn solves_small_linear_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear_system(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn normal_equations_solve_overdetermined_fit() {
        // Fit y = c0 + c1*x to noisy-free data with 5 rows and 2 unknowns.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let jacobian: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let residuals: Vec<f64> = xs.iter().map(|&x| 4.0 - 0.5 * x).collect();
        let delta = solve_normal_equations(&jacobian, &residuals, 0.0).unwrap();
        assert!((delta[0] - 4.0).abs() < 1e-9);
        assert!((delta[1] + 0.5).abs() < 1e-9);
    }

    #[test]
    fn rmse_zero_for_identical_inputs() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-100f64..100.0, 0..40)) {
            prop_assert!(variance(&xs) >= 0.0);
        }

        #[test]
        fn prop_linear_fit_interpolates_two_points(x0 in -10f64..10.0, x1 in -10f64..10.0,
                                                   y0 in -10f64..10.0, y1 in -10f64..10.0) {
            prop_assume!((x0 - x1).abs() > 1e-3);
            let (a, b) = linear_fit(&[x0, x1], &[y0, y1]);
            prop_assert!((a + b * x0 - y0).abs() < 1e-6);
            prop_assert!((a + b * x1 - y1).abs() < 1e-6);
        }
    }
}
