//! Axis-aligned bounding boxes.

use crate::ray::Ray;
use crate::vec::Vec3;

/// An axis-aligned bounding box described by its minimum and maximum corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Default for Aabb {
    /// The "empty" box: min = +∞, max = −∞, which is the identity for
    /// [`Aabb::union`] / [`Aabb::expand_point`].
    fn default() -> Self {
        Self { min: Vec3::splat(f32::INFINITY), max: Vec3::splat(f32::NEG_INFINITY) }
    }
}

impl Aabb {
    /// Creates a box from two corners (components are sorted per axis).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Self { min: a.min(b), max: a.max(b) }
    }

    /// The empty box (identity for unions).
    pub fn empty() -> Self {
        Self::default()
    }

    /// `true` when the box contains no points (any max < min).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Geometric centre.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent (max − min).
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the diagonal.
    pub fn diagonal(&self) -> f32 {
        self.extent().length()
    }

    /// Volume (zero for empty boxes).
    pub fn volume(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// `true` when the point lies inside (inclusive of boundary).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Smallest box containing both operands.
    pub fn union(&self, other: &Self) -> Self {
        Self { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Grows the box to contain `p`.
    pub fn expand_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns the box grown by `margin` on every side.
    pub fn inflate(&self, margin: f32) -> Self {
        Self { min: self.min - Vec3::splat(margin), max: self.max + Vec3::splat(margin) }
    }

    /// Slab-test ray intersection.
    ///
    /// Returns `(t_near, t_far)` when the ray hits the box with `t_far ≥ 0`,
    /// clamping `t_near` to zero when the origin is inside.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t_near = 0.0f32;
        let mut t_far = f32::INFINITY;
        for axis in 0..3 {
            let origin = ray.origin[axis];
            let dir = ray.direction[axis];
            let (lo, hi) = (self.min[axis], self.max[axis]);
            if dir.abs() < 1e-12 {
                if origin < lo || origin > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / dir;
                let (mut t0, mut t1) = ((lo - origin) * inv, (hi - origin) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_near = t_near.max(t0);
                t_far = t_far.min(t1);
                if t_near > t_far {
                    return None;
                }
            }
        }
        Some((t_near, t_far))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_sorts_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 2.0), Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 2.0));
    }

    #[test]
    fn empty_box_properties() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let unit = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(e.union(&unit), unit);
    }

    #[test]
    fn contains_and_center() {
        let b = Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(2.0)));
        assert!(!b.contains(Vec3::splat(2.1)));
        assert_eq!(b.center(), Vec3::ZERO);
        assert_eq!(b.volume(), 64.0);
    }

    #[test]
    fn ray_hits_from_outside_and_inside() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let outside = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let (tn, tf) = b.intersect_ray(&outside).unwrap();
        assert!((tn - 4.0).abs() < 1e-5 && (tf - 6.0).abs() < 1e-5);

        let inside = Ray::new(Vec3::ZERO, Vec3::X);
        let (tn, tf) = b.intersect_ray(&inside).unwrap();
        assert_eq!(tn, 0.0);
        assert!((tf - 1.0).abs() < 1e-5);

        let miss = Ray::new(Vec3::new(0.0, 5.0, -5.0), Vec3::Z);
        assert!(b.intersect_ray(&miss).is_none());
    }

    #[test]
    fn axis_parallel_ray_outside_slab_misses() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let r = Ray::new(Vec3::new(2.0, 0.0, -5.0), Vec3::Z);
        assert!(b.intersect_ray(&r).is_none());
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(ax in -5f32..5.0, ay in -5f32..5.0, az in -5f32..5.0,
                                    bx in -5f32..5.0, by in -5f32..5.0, bz in -5f32..5.0) {
            let a = Aabb::new(Vec3::ZERO, Vec3::new(ax, ay, az));
            let b = Aabb::new(Vec3::ZERO, Vec3::new(bx, by, bz));
            let u = a.union(&b);
            prop_assert!(u.contains(a.min) && u.contains(a.max));
            prop_assert!(u.contains(b.min) && u.contains(b.max));
        }

        #[test]
        fn prop_expand_point_contains_point(px in -10f32..10.0, py in -10f32..10.0, pz in -10f32..10.0) {
            let mut b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
            let p = Vec3::new(px, py, pz);
            b.expand_point(p);
            prop_assert!(b.contains(p));
        }
    }
}
