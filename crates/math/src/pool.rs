//! The shared worker-pool primitive used by every parallel stage (tiled
//! ground-truth rendering here in the geometry substrate, scene baking,
//! profiling and final baking in the pipeline engine).
//!
//! The pool lives in `nerflex-math` — the bottom of the crate graph — so
//! both the scene renderer (which `nerflex-bake` depends on) and the higher
//! pipeline stages can fan work over the same primitive without a
//! dependency cycle. `nerflex_bake::pool` re-exports it under its original
//! path.
//!
//! Since the persistent-pool rework, [`parallel_map`] no longer spawns
//! scoped threads per call: every dispatch runs on one process-wide
//! [`WorkerPool`] of long-lived threads ([`WorkerPool::shared`]), and
//! results are written into disjoint per-job slots instead of a global
//! mutex. The scheduling contract is unchanged and documented in
//! `docs/pool.md` and `docs/determinism.md`: jobs are claimed from an
//! atomic queue, results are collected **in job order**, worker counts
//! never change output bits, and `workers <= 1` (or a single job) runs
//! sequentially on the calling thread — the bit-for-bit sequential path.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Counters describing how much work a [`WorkerPool`] has dispatched.
///
/// `dispatches` counts every batch entry (including sequential inline runs);
/// `jobs` counts the individual closures executed through them. The pipeline
/// engine snapshots these around its profiling stage so the whole-profile
/// batching win (fewer dispatches for the same jobs) is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total dispatches (batches) entered, including inline sequential runs.
    pub dispatches: u64,
    /// Total jobs executed across all dispatches.
    pub jobs: u64,
}

/// Type-erased pointer to a dispatch's per-worker body closure.
///
/// Validity: the dispatching call stores this in a [`Batch`] that is only
/// reachable from the pool's batch list, publishes it before running the
/// body itself, and does not return until the batch has been removed from
/// the list **and** its executor count has dropped to zero — so every
/// dereference happens while the closure (on the dispatcher's stack) is
/// still alive.
#[derive(Clone, Copy)]
struct RawBody(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer is only dereferenced within the dispatch lifetime
// documented above.
unsafe impl Send for RawBody {}
unsafe impl Sync for RawBody {}

/// One in-flight dispatch on the pool's batch list.
struct Batch {
    /// Per-worker body; set (under the mutex) before the batch is published.
    body: Mutex<Option<RawBody>>,
    /// Number of jobs in the batch.
    jobs: usize,
    /// How many pool threads may join (the dispatcher itself is one worker
    /// on top of this).
    extra_limit: usize,
    /// Pool threads currently inside the body (modified under the pool
    /// mutex so the dispatcher can wait for zero without missed wakeups).
    executors: AtomicUsize,
    /// Next unclaimed job index.
    next: AtomicUsize,
    /// Set when a job panicked; stops further claims.
    panicked: AtomicBool,
    /// First panic payload, re-raised on the dispatching thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    fn new(jobs: usize, workers: usize) -> Self {
        Self {
            body: Mutex::new(None),
            jobs,
            extra_limit: workers.saturating_sub(1),
            executors: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    /// Whether an idle pool thread should join this batch. Only evaluated
    /// under the pool mutex.
    fn wants_executor(&self) -> bool {
        self.executors.load(Ordering::Relaxed) < self.extra_limit
            && !self.panicked.load(Ordering::Relaxed)
            && self.next.load(Ordering::Relaxed) < self.jobs
    }
}

struct PoolInner {
    batches: Vec<Arc<Batch>>,
    shutdown: bool,
}

struct PoolShared {
    inner: Mutex<PoolInner>,
    /// Signals workers: a batch was published or shutdown requested.
    work: Condvar,
    /// Signals dispatchers: a batch's executor count changed.
    done: Condvar,
    dispatches: AtomicU64,
    jobs_run: AtomicU64,
}

/// A persistent pool of long-lived worker threads.
///
/// Dispatches are *batches*: a set of `jobs` index-addressed closures
/// claimed from an atomic queue by up to `workers` threads (the dispatching
/// thread participates, so a pool with `N` background threads supports up
/// to `N + 1` workers). Results are written into disjoint per-job slots —
/// no lock on the hot path — and returned in job order.
///
/// Dispatches are re-entrant: a job may itself dispatch on the same pool
/// (the pipeline's object → sample → tile nesting does). The dispatching
/// thread always drives its own batch to completion, so nesting cannot
/// deadlock even when every background thread is busy.
///
/// Determinism: scheduling never changes output bits. Jobs are pure
/// functions of their index, results are stitched in job order, and
/// `workers <= 1` (or `jobs <= 1`) bypasses the pool entirely and runs
/// sequentially on the caller — bit-for-bit the sequential path.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads).finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` background threads (plus the
    /// dispatching thread, so up to `threads + 1` workers per batch).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            inner: Mutex::new(PoolInner { batches: Vec::new(), shutdown: false }),
            work: Condvar::new(),
            done: Condvar::new(),
            dispatches: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, handles: Mutex::new(handles), threads }
    }

    /// The process-wide shared pool used by [`parallel_map`] and as the
    /// default [`WorkerPool`] handle in pipeline options.
    ///
    /// Sized from `NERFLEX_WORKERS` when set, otherwise the available
    /// parallelism, with a floor of three background threads so explicit
    /// multi-worker dispatches exercise real concurrency even on small
    /// machines. The floor never affects results (worker counts never
    /// change output bits) nor default fan-out widths ([`default_workers`]
    /// does not apply the floor).
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| {
            let configured = env_workers()
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
            WorkerPool::new(configured.max(4) - 1)
        })
    }

    /// Number of background threads (capacity is `threads + 1` workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the dispatch/job counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            dispatches: self.shared.dispatches.load(Ordering::Relaxed),
            jobs: self.shared.jobs_run.load(Ordering::Relaxed),
        }
    }

    /// Runs `jobs` closures on up to `workers` threads and collects results
    /// in job order. See [`WorkerPool`] for the scheduling contract.
    pub fn run<T, F>(&self, jobs: usize, workers: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_scratch(jobs, workers, || (), |(), idx| job(idx))
    }

    /// Executes jobs from one in-flight batch on the calling thread, if any
    /// batch currently wants another executor. Returns `true` if it helped.
    ///
    /// This is the building block that lets a thread *wait on someone
    /// else's in-flight computation without going idle*: instead of
    /// blocking, it joins whatever batch is running — possibly the very
    /// dispatch it is waiting for — and drains jobs until that batch no
    /// longer wants it. Joining a batch never changes output bits (results
    /// land in disjoint per-job slots, stitched in job order), so helping
    /// is always safe under the determinism contract.
    pub fn try_help(&self) -> bool {
        let mut inner = self.shared.inner.lock().expect("pool poisoned");
        let candidate = inner.batches.iter().find(|b| b.wants_executor()).map(Arc::clone);
        let Some(batch) = candidate else {
            return false;
        };
        batch.executors.fetch_add(1, Ordering::Relaxed);
        let raw = batch.body.lock().expect("body slot poisoned").expect("published batch");
        drop(inner);
        // A panic cannot escape the body (jobs are caught inside); the
        // defensive catch mirrors `worker_loop`.
        // SAFETY: see `RawBody` — the dispatcher keeps the closure alive
        // until this executor is counted back out.
        let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (*raw.0)() }));
        inner = self.shared.inner.lock().expect("pool poisoned");
        batch.executors.fetch_sub(1, Ordering::Relaxed);
        drop(inner);
        self.shared.done.notify_all();
        true
    }

    /// Blocks the calling thread until `ready()` returns `true`,
    /// contributing to in-flight batches via [`WorkerPool::try_help`]
    /// instead of sleeping whenever there is work to steal.
    ///
    /// This is how a deployment-service request waits on another request's
    /// in-flight shared-stage computation without deadlocking nested
    /// dispatch: the waiting thread either makes the awaited work finish
    /// faster (by executing its jobs) or parks briefly and re-checks. The
    /// pool's own guarantee — a dispatcher always drives its own batch to
    /// completion — means the awaited computation progresses even if every
    /// waiter parks, so this loop always terminates once the builder does.
    pub fn wait_until(&self, ready: impl Fn() -> bool) {
        while !ready() {
            if !self.try_help() {
                std::thread::park_timeout(std::time::Duration::from_micros(200));
            }
        }
    }

    /// Bounded [`WorkerPool::wait_until`]: helps and re-checks like the
    /// unbounded form, but gives up once `timeout` elapses. Returns `true`
    /// when `ready()` became true, `false` on timeout.
    ///
    /// This is the primitive behind the deployment service's stall
    /// watchdog: a consumer waits on in-flight work *for a while*, then
    /// regains control to check whether an executor has stopped making
    /// progress — instead of blocking forever on work that will never
    /// finish.
    pub fn wait_until_for(&self, ready: impl Fn() -> bool, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while !ready() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            if !self.try_help() {
                std::thread::park_timeout(std::time::Duration::from_micros(200));
            }
        }
        true
    }

    /// Like [`WorkerPool::run`], but each participating worker builds one
    /// `scratch` value per dispatch (lazily, on its first claimed job) and
    /// reuses it across all the jobs it executes — the allocation-churn
    /// killer for whole-profile batched measurement. `scratch` must not
    /// influence results (worker counts, and therefore scratch reuse
    /// patterns, never change output bits).
    pub fn run_scratch<T, S, I, F>(&self, jobs: usize, workers: usize, init: I, job: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        self.shared.jobs_run.fetch_add(jobs as u64, Ordering::Relaxed);
        let workers = workers.min(jobs).min(self.threads + 1);
        if workers <= 1 || jobs <= 1 {
            // The bit-for-bit sequential path: no pool, no extra threads.
            let mut scratch = init();
            return (0..jobs).map(|idx| job(&mut scratch, idx)).collect();
        }

        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        let slot_ptr = SlotPtr(slots.as_mut_ptr());
        let batch = Arc::new(Batch::new(jobs, workers));

        // The per-worker body: claim indices until the queue drains, writing
        // each result into its disjoint slot. Scratch is built on the first
        // claim so workers that never get a job never pay for it.
        let body = || {
            let mut scratch: Option<S> = None;
            loop {
                if batch.panicked.load(Ordering::Acquire) {
                    break;
                }
                let idx = batch.next.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs {
                    break;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let scratch = scratch.get_or_insert_with(&init);
                    job(scratch, idx)
                }));
                match outcome {
                    // SAFETY: `idx` was claimed by exactly one worker, and
                    // the slot vector outlives the dispatch (the dispatcher
                    // blocks until every executor has exited the body).
                    Ok(value) => unsafe { slot_ptr.write(idx, value) },
                    Err(payload) => {
                        let mut slot = batch.panic.lock().expect("panic slot poisoned");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        batch.panicked.store(true, Ordering::Release);
                        break;
                    }
                }
            }
        };

        // Publish the batch, then work on it from this thread too.
        {
            let body_ref: &(dyn Fn() + Sync) = &body;
            // SAFETY: lifetime erasure only — the raw pointer is dropped from
            // the batch list and all executors are joined before `body` goes
            // out of scope (see `RawBody`).
            let raw: RawBody = unsafe {
                RawBody(std::mem::transmute::<
                    *const (dyn Fn() + Sync),
                    *const (dyn Fn() + Sync + 'static),
                >(body_ref))
            };
            *batch.body.lock().expect("body slot poisoned") = Some(raw);
            let mut inner = self.shared.inner.lock().expect("pool poisoned");
            inner.batches.push(Arc::clone(&batch));
        }
        self.shared.work.notify_all();
        body();

        // Close the batch (no new executors may join) and wait for the ones
        // already inside the body to leave; after this no thread holds a
        // reference to `body` or the slot vector.
        {
            let mut inner = self.shared.inner.lock().expect("pool poisoned");
            inner.batches.retain(|b| !Arc::ptr_eq(b, &batch));
            while batch.executors.load(Ordering::Relaxed) > 0 {
                inner = self.shared.done.wait(inner).expect("pool poisoned");
            }
        }

        if let Some(payload) = batch.panic.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
        slots.into_iter().map(|r| r.expect("every job ran")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut inner = self.shared.inner.lock().expect("pool poisoned");
            inner.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.lock().expect("pool poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Raw pointer to the result slots; writes go to disjoint indices (each
/// claimed by exactly one worker), so no synchronisation is needed beyond
/// the dispatch join.
struct SlotPtr<T>(*mut Option<T>);

impl<T> Clone for SlotPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotPtr<T> {}

// SAFETY: `T: Send` results cross threads; disjoint-index writes are the
// only access until the dispatcher reclaims the vector after the join.
unsafe impl<T: Send> Send for SlotPtr<T> {}
unsafe impl<T: Send> Sync for SlotPtr<T> {}

impl<T> SlotPtr<T> {
    /// # Safety
    /// `idx` must be in bounds, claimed by exactly one worker, and the slot
    /// vector must outlive the write (the dispatch join guarantees it).
    unsafe fn write(self, idx: usize, value: T) {
        *self.0.add(idx) = Some(value);
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut inner = shared.inner.lock().expect("pool poisoned");
    loop {
        if inner.shutdown {
            return;
        }
        let candidate = inner.batches.iter().find(|b| b.wants_executor()).map(Arc::clone);
        match candidate {
            Some(batch) => {
                batch.executors.fetch_add(1, Ordering::Relaxed);
                let raw = batch.body.lock().expect("body slot poisoned").expect("published batch");
                drop(inner);
                // A panic cannot escape the body (jobs are caught inside),
                // but a defensive catch keeps the pool thread alive anyway.
                // SAFETY: see `RawBody` — the dispatcher keeps the closure
                // alive until this executor is counted back out.
                let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (*raw.0)() }));
                inner = shared.inner.lock().expect("pool poisoned");
                batch.executors.fetch_sub(1, Ordering::Relaxed);
                shared.done.notify_all();
            }
            None => {
                inner = shared.work.wait(inner).expect("pool poisoned");
            }
        }
    }
}

/// Runs `jobs` closures on up to `workers` threads of the process-wide
/// [`WorkerPool::shared`] pool and collects their results in job order
/// (deterministic regardless of scheduling). With one worker — or one job —
/// the closures run sequentially on the calling thread, which is the
/// bit-for-bit sequential path.
///
/// A panicking job propagates: the dispatch drains, then re-raises the
/// first panic payload on the calling thread.
pub fn parallel_map<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    WorkerPool::shared().run(jobs, workers, job)
}

/// The `NERFLEX_WORKERS` override: a positive integer pins the default
/// worker count (and sizes the shared pool) without code changes.
pub fn env_workers() -> Option<usize> {
    std::env::var("NERFLEX_WORKERS").ok()?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// One worker per available core — or the `NERFLEX_WORKERS` override when
/// set — capped by the job count.
pub fn default_workers(jobs: usize) -> usize {
    env_workers()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(jobs.max(1))
}

/// Folds `items` with a fixed pairwise reduction tree: neighbours combine
/// first (`0⊕1`, `2⊕3`, …), then the survivors pairwise again, until one
/// value remains. The association order depends only on `items.len()` —
/// never on worker counts or scheduling — so reducing per-tile partials
/// produced by [`parallel_map`] (which returns them in job order) yields
/// bit-identical floating-point results for every worker count. Returns
/// `None` for an empty input.
pub fn tree_reduce<T>(mut items: Vec<T>, combine: impl Fn(T, T) -> T) -> Option<T> {
    if items.is_empty() {
        return None;
    }
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut iter = items.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let out = parallel_map(64, 8, |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = parallel_map(10, 1, |i| i * i);
        let par = parallel_map(10, 4, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn default_workers_is_capped_by_jobs() {
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1000) >= 1);
    }

    #[test]
    fn panicking_job_propagates_after_the_batch_drains() {
        let observed = std::panic::catch_unwind(|| {
            parallel_map(16, 4, |i| {
                if i == 5 {
                    panic!("job five exploded");
                }
                i
            })
        });
        let payload = observed.expect_err("panic must propagate");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "job five exploded");
        // The pool survives a panicking dispatch.
        assert_eq!(parallel_map(4, 4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        // object → sample → tile nesting: every level fans on the same pool.
        let out = parallel_map(4, 4, |i| {
            parallel_map(4, 4, |j| parallel_map(3, 4, |k| i * 100 + j * 10 + k))
                .into_iter()
                .flatten()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..4)
            .map(|i| (0..4).flat_map(|j| (0..3).map(move |k| i * 100 + j * 10 + k)).sum::<usize>())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn owned_pool_counts_dispatches_and_jobs() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.stats(), PoolStats::default());
        let out = pool.run(8, 3, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        let _ = pool.run(5, 1, |i| i);
        let stats = pool.stats();
        assert_eq!(stats.dispatches, 2);
        assert_eq!(stats.jobs, 13);
    }

    #[test]
    fn scratch_is_reused_within_a_worker_and_bounded_by_workers() {
        let pool = WorkerPool::new(3);
        let inits = AtomicUsize::new(0);
        let out = pool.run_scratch(
            64,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, idx| {
                scratch.push(idx);
                idx * 3
            },
        );
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        let built = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&built), "one scratch per participating worker, got {built}");
    }

    #[test]
    fn env_override_pins_default_workers() {
        // Single test touching the variable; tests in this binary that read
        // it race-free because none of them set it.
        std::env::set_var("NERFLEX_WORKERS", "3");
        assert_eq!(env_workers(), Some(3));
        assert_eq!(default_workers(10), 3);
        assert_eq!(default_workers(2), 2);
        std::env::set_var("NERFLEX_WORKERS", "not a number");
        assert_eq!(env_workers(), None);
        std::env::remove_var("NERFLEX_WORKERS");
        assert_eq!(env_workers(), None);
    }

    #[test]
    fn try_help_without_work_returns_false() {
        let pool = WorkerPool::new(2);
        assert!(!pool.try_help());
    }

    #[test]
    fn wait_until_observes_progress_made_elsewhere() {
        // A waiter on one thread, a dispatch on another: the waiter must
        // return once the flag flips, whether it helped or parked.
        let pool = Arc::new(WorkerPool::new(2));
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (pool, flag) = (Arc::clone(&pool), Arc::clone(&flag));
            std::thread::spawn(move || pool.wait_until(|| flag.load(Ordering::Acquire)))
        };
        let out = pool.run(64, 3, |i| i);
        assert_eq!(out.len(), 64);
        flag.store(true, Ordering::Release);
        waiter.join().expect("waiter exits once ready() holds");
    }

    #[test]
    fn wait_until_for_times_out_without_progress_and_returns_early_with_it() {
        let pool = WorkerPool::new(2);
        // Nothing ever flips the flag: the bounded wait must come back.
        let start = std::time::Instant::now();
        assert!(!pool.wait_until_for(|| false, std::time::Duration::from_millis(5)));
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
        // An already-true predicate returns immediately with `true`.
        assert!(pool.wait_until_for(|| true, std::time::Duration::ZERO));
    }

    #[test]
    fn helping_does_not_change_output_bits() {
        let pool = Arc::new(WorkerPool::new(3));
        let reference: Vec<f64> = (0..256).map(|i| (i as f64 * 0.37).sin()).collect();
        // Run the dispatch while an extra thread aggressively helps.
        let stop = Arc::new(AtomicBool::new(false));
        let helper = {
            let (pool, stop) = (Arc::clone(&pool), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    pool.try_help();
                }
            })
        };
        let helped = pool.run(256, 4, |i| (i as f64 * 0.37).sin());
        stop.store(true, Ordering::Release);
        helper.join().expect("helper exits");
        for (a, b) in reference.iter().zip(&helped) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tree_reduce_covers_every_item_once() {
        assert_eq!(tree_reduce(Vec::<u32>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7u32], |a, b| a + b), Some(7));
        for n in 2..20usize {
            let sum = tree_reduce((1..=n).collect(), |a, b| a + b);
            assert_eq!(sum, Some(n * (n + 1) / 2));
        }
    }

    #[test]
    fn tree_reduce_association_is_fixed_by_length() {
        // Record the association as nested strings: the shape must depend on
        // the item count alone (the determinism contract callers build on).
        let shape = |n: usize| {
            tree_reduce((0..n).map(|i| i.to_string()).collect::<Vec<_>>(), |a, b| {
                format!("({a}+{b})")
            })
            .unwrap()
        };
        assert_eq!(shape(4), "((0+1)+(2+3))");
        assert_eq!(shape(5), "(((0+1)+(2+3))+4)");
    }
}
