//! The shared worker-pool primitive used by every parallel stage (tiled
//! ground-truth rendering here in the geometry substrate, scene baking,
//! profiling and final baking in the pipeline engine).
//!
//! The pool lives in `nerflex-math` — the bottom of the crate graph — so
//! both the scene renderer (which `nerflex-bake` depends on) and the higher
//! pipeline stages can fan work over the same primitive without a
//! dependency cycle. `nerflex_bake::pool` re-exports it under its original
//! path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` closures on a pool of `workers` scoped threads and collects
/// their results in job order (deterministic regardless of scheduling). With
/// one worker — or one job — the closures run sequentially on the calling
/// thread, which is the bit-for-bit sequential path.
///
/// A panicking job propagates: the scope joins all workers and re-raises.
pub fn parallel_map<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(jobs) {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= jobs {
                    break;
                }
                let result = job(idx);
                results.lock().expect("worker poisoned")[idx] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("worker poisoned")
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

/// One worker per available core, capped by the job count.
pub fn default_workers(jobs: usize) -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(jobs.max(1))
}

/// Folds `items` with a fixed pairwise reduction tree: neighbours combine
/// first (`0⊕1`, `2⊕3`, …), then the survivors pairwise again, until one
/// value remains. The association order depends only on `items.len()` —
/// never on worker counts or scheduling — so reducing per-tile partials
/// produced by [`parallel_map`] (which returns them in job order) yields
/// bit-identical floating-point results for every worker count. Returns
/// `None` for an empty input.
pub fn tree_reduce<T>(mut items: Vec<T>, combine: impl Fn(T, T) -> T) -> Option<T> {
    if items.is_empty() {
        return None;
    }
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut iter = items.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let out = parallel_map(64, 8, |i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = parallel_map(10, 1, |i| i * i);
        let par = parallel_map(10, 4, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn default_workers_is_capped_by_jobs() {
        assert_eq!(default_workers(1), 1);
        assert!(default_workers(1000) >= 1);
    }

    #[test]
    fn tree_reduce_covers_every_item_once() {
        assert_eq!(tree_reduce(Vec::<u32>::new(), |a, b| a + b), None);
        assert_eq!(tree_reduce(vec![7u32], |a, b| a + b), Some(7));
        for n in 2..20usize {
            let sum = tree_reduce((1..=n).collect(), |a, b| a + b);
            assert_eq!(sum, Some(n * (n + 1) / 2));
        }
    }

    #[test]
    fn tree_reduce_association_is_fixed_by_length() {
        // Record the association as nested strings: the shape must depend on
        // the item count alone (the determinism contract callers build on).
        let shape = |n: usize| {
            tree_reduce((0..n).map(|i| i.to_string()).collect::<Vec<_>>(), |a, b| {
                format!("({a}+{b})")
            })
            .unwrap()
        };
        assert_eq!(shape(4), "((0+1)+(2+3))");
        assert_eq!(shape(5), "(((0+1)+(2+3))+4)");
    }
}
