//! Rays and ray–primitive intersection helpers.

use crate::vec::Vec3;

/// A half-line with an origin and a (unit) direction.
///
/// Construction normalises the direction so that the parametric distance `t`
/// returned by intersection routines is a Euclidean distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Unit direction.
    pub direction: Vec3,
}

impl Ray {
    /// Creates a ray; `direction` is normalised.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Self { origin, direction: direction.normalized() }
    }

    /// The point at parametric distance `t` along the ray.
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Intersects the ray with the plane through `point` with normal `normal`.
    ///
    /// Returns the parametric distance, or `None` when the ray is (nearly)
    /// parallel to the plane or the intersection lies behind the origin.
    pub fn intersect_plane(&self, point: Vec3, normal: Vec3) -> Option<f32> {
        let denom = self.direction.dot(normal);
        if denom.abs() < 1e-8 {
            return None;
        }
        let t = (point - self.origin).dot(normal) / denom;
        (t >= 0.0).then_some(t)
    }

    /// Intersects the ray with a sphere, returning the nearest non-negative
    /// parametric distance.
    pub fn intersect_sphere(&self, center: Vec3, radius: f32) -> Option<f32> {
        let oc = self.origin - center;
        let b = oc.dot(self.direction);
        let c = oc.length_squared() - radius * radius;
        let disc = b * b - c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_disc = disc.sqrt();
        let t0 = -b - sqrt_disc;
        let t1 = -b + sqrt_disc;
        if t0 >= 0.0 {
            Some(t0)
        } else if t1 >= 0.0 {
            Some(t1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
        assert_eq!(r.at(3.0), Vec3::new(0.0, 0.0, 3.0));
    }

    #[test]
    fn plane_intersection() {
        let r = Ray::new(Vec3::new(0.0, 5.0, 0.0), Vec3::new(0.0, -1.0, 0.0));
        let t = r.intersect_plane(Vec3::ZERO, Vec3::Y).unwrap();
        assert!((t - 5.0).abs() < 1e-6);
        // Parallel ray misses.
        let parallel = Ray::new(Vec3::new(0.0, 5.0, 0.0), Vec3::X);
        assert!(parallel.intersect_plane(Vec3::ZERO, Vec3::Y).is_none());
    }

    #[test]
    fn sphere_intersection_front_and_inside() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let t = r.intersect_sphere(Vec3::ZERO, 1.0).unwrap();
        assert!((t - 4.0).abs() < 1e-5);
        // Origin inside the sphere still reports the exit point.
        let inside = Ray::new(Vec3::ZERO, Vec3::Z);
        let t = inside.intersect_sphere(Vec3::ZERO, 1.0).unwrap();
        assert!((t - 1.0).abs() < 1e-5);
        // Sphere behind the origin is missed.
        let behind = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::Z);
        assert!(behind.intersect_sphere(Vec3::ZERO, 1.0).is_none());
    }
}
