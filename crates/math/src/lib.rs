//! # nerflex-math
//!
//! Linear-algebra, geometry and statistics substrate for the NeRFlex
//! reproduction.
//!
//! The crate is intentionally dependency-free: it provides exactly the
//! primitives the rest of the workspace needs — small fixed-size vectors and
//! matrices ([`Vec2`], [`Vec3`], [`Vec4`], [`Mat3`], [`Mat4`]), rays and
//! axis-aligned bounding boxes ([`Ray`], [`Aabb`]), camera/viewing transforms
//! ([`transform`]), low-discrepancy and spherical sampling ([`sampling`]) and
//! summary statistics / least-squares helpers ([`stats`]).
//!
//! Geometry uses `f32` (it feeds the software rasteriser and the ray
//! marcher); statistics and fitting use `f64` (they feed the profiler and the
//! configuration solver where conditioning matters).
//!
//! ```
//! use nerflex_math::{Vec3, Ray, Aabb};
//!
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
//! let cube = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
//! let hit = cube.intersect_ray(&ray).expect("ray points at the cube");
//! assert!((hit.0 - 4.0).abs() < 1e-6);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aabb;
pub mod mat;
pub mod pool;
pub mod ray;
pub mod sampling;
pub mod simd;
pub mod stats;
pub mod transform;
pub mod vec;

pub use aabb::Aabb;
pub use mat::{Mat3, Mat4};
pub use pool::{PoolStats, WorkerPool};
pub use ray::Ray;
pub use simd::{F32x4, F32x8, LaneWidth, Mask4, Mask8, Vec3x4, Vec3x8};
pub use vec::{Vec2, Vec3, Vec4};

/// Clamps `x` into `[lo, hi]`.
///
/// Unlike [`f32::clamp`] this never panics: if `lo > hi` the bounds are
/// swapped first, which is convenient when the interval is derived from data.
///
/// ```
/// assert_eq!(nerflex_math::clamp(5.0, 0.0, 1.0), 1.0);
/// assert_eq!(nerflex_math::clamp(5.0, 1.0, 0.0), 1.0);
/// ```
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    x.max(lo).min(hi)
}

/// Linear interpolation between `a` and `b` by factor `t` in `[0, 1]`.
///
/// ```
/// assert_eq!(nerflex_math::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Smoothstep interpolation (C¹ continuous) of `x` between `edge0` and `edge1`.
///
/// ```
/// assert_eq!(nerflex_math::smoothstep(0.0, 1.0, 0.5), 0.5);
/// assert_eq!(nerflex_math::smoothstep(0.0, 1.0, -1.0), 0.0);
/// ```
pub fn smoothstep(edge0: f32, edge1: f32, x: f32) -> f32 {
    let t = clamp((x - edge0) / (edge1 - edge0), 0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_orders_bounds() {
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp(-3.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(-3.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(1.0, 9.0, 0.0), 1.0);
        assert_eq!(lerp(1.0, 9.0, 1.0), 9.0);
    }

    #[test]
    fn smoothstep_monotone() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let v = smoothstep(0.0, 1.0, i as f32 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }
}
