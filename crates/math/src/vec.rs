//! Small fixed-size vectors (`Vec2`, `Vec3`, `Vec4`) over `f32`.
//!
//! These are plain `Copy` value types with the usual component-wise
//! arithmetic, dot/cross products and normalisation helpers. They are used by
//! every geometric subsystem (SDF evaluation, ray marching, rasterisation).

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-component `f32` vector (texture coordinates, image positions).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// A 3-component `f32` vector (positions, directions, colours).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component `f32` vector (homogeneous coordinates, RGBA).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

macro_rules! impl_binops {
    ($ty:ident, $($f:ident),+) => {
        impl Add for $ty {
            type Output = Self;
            fn add(self, o: Self) -> Self { Self { $($f: self.$f + o.$f),+ } }
        }
        impl Sub for $ty {
            type Output = Self;
            fn sub(self, o: Self) -> Self { Self { $($f: self.$f - o.$f),+ } }
        }
        impl Mul for $ty {
            type Output = Self;
            fn mul(self, o: Self) -> Self { Self { $($f: self.$f * o.$f),+ } }
        }
        impl Mul<f32> for $ty {
            type Output = Self;
            fn mul(self, s: f32) -> Self { Self { $($f: self.$f * s),+ } }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            fn mul(self, v: $ty) -> $ty { v * self }
        }
        impl Div<f32> for $ty {
            type Output = Self;
            fn div(self, s: f32) -> Self { Self { $($f: self.$f / s),+ } }
        }
        impl Neg for $ty {
            type Output = Self;
            fn neg(self) -> Self { Self { $($f: -self.$f),+ } }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, o: Self) { *self = *self + o; }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, o: Self) { *self = *self - o; }
        }
        impl MulAssign<f32> for $ty {
            fn mul_assign(&mut self, s: f32) { *self = *self * s; }
        }
        impl DivAssign<f32> for $ty {
            fn div_assign(&mut self, s: f32) { *self = *self / s; }
        }
        impl $ty {
            /// Component-wise minimum.
            pub fn min(self, o: Self) -> Self { Self { $($f: self.$f.min(o.$f)),+ } }
            /// Component-wise maximum.
            pub fn max(self, o: Self) -> Self { Self { $($f: self.$f.max(o.$f)),+ } }
            /// Component-wise absolute value.
            pub fn abs(self) -> Self { Self { $($f: self.$f.abs()),+ } }
            /// Dot product.
            pub fn dot(self, o: Self) -> f32 { 0.0 $(+ self.$f * o.$f)+ }
            /// Squared Euclidean length.
            pub fn length_squared(self) -> f32 { self.dot(self) }
            /// Euclidean length.
            pub fn length(self) -> f32 { self.length_squared().sqrt() }
            /// Euclidean distance to `o`.
            pub fn distance(self, o: Self) -> f32 { (self - o).length() }
            /// Returns the unit vector in the same direction, or `self`
            /// unchanged when the length is (near) zero.
            pub fn normalized(self) -> Self {
                let len = self.length();
                if len > 1e-12 { self / len } else { self }
            }
            /// Linear interpolation between `self` and `o`.
            pub fn lerp(self, o: Self, t: f32) -> Self { self + (o - self) * t }
            /// The largest component.
            pub fn max_component(self) -> f32 {
                let mut m = f32::NEG_INFINITY;
                $( m = m.max(self.$f); )+
                m
            }
            /// The smallest component.
            pub fn min_component(self) -> f32 {
                let mut m = f32::INFINITY;
                $( m = m.min(self.$f); )+
                m
            }
            /// `true` when every component is finite.
            pub fn is_finite(self) -> bool { true $(&& self.$f.is_finite())+ }
        }
    };
}

impl_binops!(Vec2, x, y);
impl_binops!(Vec3, x, y, z);
impl_binops!(Vec4, x, y, z, w);

impl Vec2 {
    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Creates a vector with every component equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::splat(0.0);
    /// The one vector.
    pub const ONE: Self = Self::splat(1.0);

    /// 2-D "cross product" (z component of the 3-D cross of the embedded
    /// vectors); its sign gives the winding of a triangle.
    pub fn perp_dot(self, o: Self) -> f32 {
        self.x * o.y - self.y * o.x
    }
}

impl Vec3 {
    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with every component equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::splat(0.0);
    /// The one vector.
    pub const ONE: Self = Self::splat(1.0);
    /// Unit X axis.
    pub const X: Self = Self::new(1.0, 0.0, 0.0);
    /// Unit Y axis.
    pub const Y: Self = Self::new(0.0, 1.0, 0.0);
    /// Unit Z axis.
    pub const Z: Self = Self::new(0.0, 0.0, 1.0);

    /// Cross product.
    pub fn cross(self, o: Self) -> Self {
        Self {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Extends to homogeneous coordinates with the given `w`.
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Drops the `z` component.
    pub fn truncate(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Reflects `self` around the (unit) normal `n`.
    pub fn reflect(self, n: Self) -> Self {
        self - n * (2.0 * self.dot(n))
    }
}

impl Vec4 {
    /// Creates a vector from components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Creates a vector with every component equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v, w: v }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::splat(0.0);

    /// Drops the `w` component.
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division: divides the spatial components by `w`.
    ///
    /// # Panics
    ///
    /// Does not panic; when `w` is zero the result contains infinities which
    /// callers (the rasteriser clip stage) reject explicitly.
    pub fn perspective_divide(self) -> Vec3 {
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

impl From<(f32, f32)> for Vec2 {
    fn from(v: (f32, f32)) -> Self {
        Self::new(v.0, v.1)
    }
}

impl From<(f32, f32, f32)> for Vec3 {
    fn from(v: (f32, f32, f32)) -> Self {
        Self::new(v.0, v.1, v.2)
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(v: [f32; 3]) -> Self {
        Self::new(v[0], v[1], v[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn dot_and_cross_are_consistent() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(a.dot(b), 0.0);
        assert!(close(a.cross(b).dot(a), 0.0));
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        assert!(close(v.normalized().length(), 1.0));
        // Degenerate input is passed through unchanged rather than producing NaN.
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn reflect_preserves_length() {
        let v = Vec3::new(1.0, -1.0, 0.0);
        let r = v.reflect(Vec3::Y);
        assert!(close(r.length(), v.length()));
        assert!(close(r.y, 1.0));
    }

    #[test]
    fn perspective_divide() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.perspective_divide(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn component_extrema() {
        let v = Vec3::new(-2.0, 7.0, 0.0);
        assert_eq!(v.max_component(), 7.0);
        assert_eq!(v.min_component(), -2.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    proptest! {
        #[test]
        fn prop_dot_is_commutative(ax in -10f32..10.0, ay in -10f32..10.0, az in -10f32..10.0,
                                   bx in -10f32..10.0, by in -10f32..10.0, bz in -10f32..10.0) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-4);
        }

        #[test]
        fn prop_cross_is_orthogonal(ax in -10f32..10.0, ay in -10f32..10.0, az in -10f32..10.0,
                                    bx in -10f32..10.0, by in -10f32..10.0, bz in -10f32..10.0) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            // |a·(a×b)| scales with |a||b||a| so normalise the tolerance.
            let scale = 1.0 + a.length() * b.length() * (a.length() + b.length());
            prop_assert!(c.dot(a).abs() / scale < 1e-3);
            prop_assert!(c.dot(b).abs() / scale < 1e-3);
        }

        #[test]
        fn prop_lerp_stays_in_segment(t in 0f32..1.0, ax in -5f32..5.0, bx in -5f32..5.0) {
            let a = Vec3::splat(ax);
            let b = Vec3::splat(bx);
            let l = a.lerp(b, t).x;
            let (lo, hi) = if ax < bx { (ax, bx) } else { (bx, ax) };
            prop_assert!(l >= lo - 1e-4 && l <= hi + 1e-4);
        }
    }
}
