//! Camera and viewing transforms (look-at, perspective, viewport).
//!
//! These mirror the conventions used by WebGL (the paper's rendering engine):
//! right-handed world space, camera looking down −Z in view space, clip space
//! in `[-1, 1]³` and a top-left-origin viewport.

use crate::mat::{Mat3, Mat4};
use crate::vec::{Vec2, Vec3, Vec4};

/// Builds a right-handed look-at *view* matrix (world → view).
///
/// `eye` is the camera position, `target` the point looked at and `up` the
/// approximate up direction (it does not need to be orthogonal to the view
/// direction).
pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
    let forward = (target - eye).normalized();
    let right = forward.cross(up).normalized();
    let true_up = right.cross(forward);
    // Rows of the rotation part are the camera basis vectors.
    let rotation = Mat3::from_cols(right, true_up, -forward).transpose();
    let translated_eye = rotation.mul_vec3(eye);
    let mut view = Mat4::from_mat3(rotation);
    view.cols[3] = (-translated_eye).extend(1.0);
    view
}

/// Builds the camera-to-world matrix for a camera at `eye` looking at
/// `target` — the inverse of [`look_at`], convenient for generating rays.
pub fn camera_to_world(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
    look_at(eye, target, up).inverse_rigid()
}

/// Builds a perspective projection matrix (view → clip).
///
/// `fov_y` is the full vertical field of view in radians, `aspect` the
/// width/height ratio, and `near`/`far` the positive clip distances.
///
/// # Panics
///
/// Panics if `near <= 0`, `far <= near` or `fov_y` is not in `(0, π)`.
pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
    assert!(near > 0.0 && far > near, "invalid near/far planes");
    assert!(fov_y > 0.0 && fov_y < std::f32::consts::PI, "invalid field of view");
    let f = 1.0 / (fov_y * 0.5).tan();
    let range_inv = 1.0 / (near - far);
    Mat4::from_cols(
        Vec4::new(f / aspect, 0.0, 0.0, 0.0),
        Vec4::new(0.0, f, 0.0, 0.0),
        Vec4::new(0.0, 0.0, (near + far) * range_inv, -1.0),
        Vec4::new(0.0, 0.0, 2.0 * near * far * range_inv, 0.0),
    )
}

/// Maps a clip-space point (after perspective division) to pixel coordinates
/// in a `width`×`height` viewport with the origin at the top-left corner.
pub fn ndc_to_viewport(ndc: Vec3, width: usize, height: usize) -> Vec2 {
    Vec2::new((ndc.x * 0.5 + 0.5) * width as f32, (1.0 - (ndc.y * 0.5 + 0.5)) * height as f32)
}

/// Spherical coordinates helper: a point on the sphere of radius `r` centred
/// at `center`, at `azimuth` (radians around +Y, from +Z) and `elevation`
/// (radians above the XZ plane).
pub fn orbit_position(center: Vec3, r: f32, azimuth: f32, elevation: f32) -> Vec3 {
    let (sa, ca) = azimuth.sin_cos();
    let (se, ce) = elevation.sin_cos();
    center + Vec3::new(r * ce * sa, r * se, r * ce * ca)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, FRAC_PI_3};

    fn close(a: f32, b: f32, eps: f32) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn look_at_puts_target_on_negative_z() {
        let view = look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let t = view.transform_point(Vec3::ZERO);
        assert!(close(t.x, 0.0, 1e-5) && close(t.y, 0.0, 1e-5));
        assert!(close(t.z, -5.0, 1e-5));
        // The eye maps to the view-space origin.
        let e = view.transform_point(Vec3::new(0.0, 0.0, 5.0));
        assert!(e.length() < 1e-5);
    }

    #[test]
    fn camera_to_world_is_inverse_of_look_at() {
        let eye = Vec3::new(3.0, 2.0, 1.0);
        let view = look_at(eye, Vec3::ZERO, Vec3::Y);
        let cam = camera_to_world(eye, Vec3::ZERO, Vec3::Y);
        let p = Vec3::new(0.4, -0.2, 0.9);
        let roundtrip = cam.transform_point(view.transform_point(p));
        assert!((roundtrip - p).length() < 1e-4);
    }

    #[test]
    fn perspective_maps_near_and_far_to_clip_bounds() {
        let proj = perspective(FRAC_PI_3, 1.0, 0.1, 100.0);
        let near_clip = proj.mul_vec4(Vec3::new(0.0, 0.0, -0.1).extend(1.0)).perspective_divide();
        let far_clip = proj.mul_vec4(Vec3::new(0.0, 0.0, -100.0).extend(1.0)).perspective_divide();
        assert!(close(near_clip.z, -1.0, 1e-4));
        assert!(close(far_clip.z, 1.0, 1e-4));
    }

    #[test]
    #[should_panic(expected = "invalid near/far")]
    fn perspective_rejects_bad_planes() {
        let _ = perspective(FRAC_PI_2, 1.0, 1.0, 0.5);
    }

    #[test]
    fn viewport_mapping_corners() {
        let top_left = ndc_to_viewport(Vec3::new(-1.0, 1.0, 0.0), 640, 480);
        assert_eq!(top_left, Vec2::new(0.0, 0.0));
        let bottom_right = ndc_to_viewport(Vec3::new(1.0, -1.0, 0.0), 640, 480);
        assert_eq!(bottom_right, Vec2::new(640.0, 480.0));
        let center = ndc_to_viewport(Vec3::ZERO, 640, 480);
        assert_eq!(center, Vec2::new(320.0, 240.0));
    }

    #[test]
    fn orbit_position_radius_is_preserved() {
        for i in 0..16 {
            let az = i as f32 * 0.4;
            let p = orbit_position(Vec3::ZERO, 3.0, az, 0.5);
            assert!(close(p.length(), 3.0, 1e-4));
        }
        // Zero elevation and azimuth sits on +Z.
        let p = orbit_position(Vec3::ZERO, 2.0, 0.0, 0.0);
        assert!((p - Vec3::new(0.0, 0.0, 2.0)).length() < 1e-5);
    }
}
