//! Small square matrices (`Mat3`, `Mat4`) in column-major order.
//!
//! `Mat4` carries the camera view/projection transforms used by the software
//! rasteriser; `Mat3` is used for normal transforms and 2-D homogeneous image
//! warps in the segmentation module.

use crate::vec::{Vec3, Vec4};
use std::ops::Mul;

/// A 3×3 matrix stored column-major (`cols[c]` is column `c`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// The three columns.
    pub cols: [Vec3; 3],
}

/// A 4×4 matrix stored column-major (`cols[c]` is column `c`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// The four columns.
    pub cols: [Vec4; 4],
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 0.0, 1.0)],
    };

    /// Builds a matrix from three columns.
    pub const fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Self { cols: [c0, c1, c2] }
    }

    /// Builds a rotation of `angle` radians around the (unit) `axis`
    /// (Rodrigues' formula).
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let a = axis.normalized();
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        Self::from_cols(
            Vec3::new(t * a.x * a.x + c, t * a.x * a.y + s * a.z, t * a.x * a.z - s * a.y),
            Vec3::new(t * a.x * a.y - s * a.z, t * a.y * a.y + c, t * a.y * a.z + s * a.x),
            Vec3::new(t * a.x * a.z + s * a.y, t * a.y * a.z - s * a.x, t * a.z * a.z + c),
        )
    }

    /// Multiplies the matrix by a column vector.
    pub fn mul_vec3(&self, v: Vec3) -> Vec3 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_cols(
            Vec3::new(self.cols[0].x, self.cols[1].x, self.cols[2].x),
            Vec3::new(self.cols[0].y, self.cols[1].y, self.cols[2].y),
            Vec3::new(self.cols[0].z, self.cols[1].z, self.cols[2].z),
        )
    }

    /// The determinant.
    pub fn determinant(&self) -> f32 {
        self.cols[0].dot(self.cols[1].cross(self.cols[2]))
    }

    /// The inverse, or `None` when the matrix is singular.
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let c0 = self.cols[1].cross(self.cols[2]) * inv_det;
        let c1 = self.cols[2].cross(self.cols[0]) * inv_det;
        let c2 = self.cols[0].cross(self.cols[1]) * inv_det;
        // The cross-product columns form the rows of the inverse.
        Some(Self::from_cols(c0, c1, c2).transpose())
    }
}

impl Mul for Mat3 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        Self::from_cols(
            self.mul_vec3(rhs.cols[0]),
            self.mul_vec3(rhs.cols[1]),
            self.mul_vec3(rhs.cols[2]),
        )
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from four columns.
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self { cols: [c0, c1, c2, c3] }
    }

    /// A pure translation.
    pub fn from_translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = t.extend(1.0);
        m
    }

    /// A uniform or per-axis scale.
    pub fn from_scale(s: Vec3) -> Self {
        Self::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Embeds a 3×3 rotation into a 4×4 transform.
    pub fn from_mat3(m: Mat3) -> Self {
        Self::from_cols(
            m.cols[0].extend(0.0),
            m.cols[1].extend(0.0),
            m.cols[2].extend(0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Multiplies the matrix by a homogeneous column vector.
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Transforms a point (w = 1), returning the perspective-divided result.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let h = self.mul_vec4(p.extend(1.0));
        if (h.w - 1.0).abs() < 1e-7 {
            h.truncate()
        } else {
            h.perspective_divide()
        }
    }

    /// Transforms a direction (w = 0); translation is ignored.
    pub fn transform_direction(&self, d: Vec3) -> Vec3 {
        self.mul_vec4(d.extend(0.0)).truncate()
    }

    /// The upper-left 3×3 block.
    pub fn to_mat3(&self) -> Mat3 {
        Mat3::from_cols(self.cols[0].truncate(), self.cols[1].truncate(), self.cols[2].truncate())
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        let c = &self.cols;
        Self::from_cols(
            Vec4::new(c[0].x, c[1].x, c[2].x, c[3].x),
            Vec4::new(c[0].y, c[1].y, c[2].y, c[3].y),
            Vec4::new(c[0].z, c[1].z, c[2].z, c[3].z),
            Vec4::new(c[0].w, c[1].w, c[2].w, c[3].w),
        )
    }

    /// Inverts a rigid transform (rotation + translation only).
    ///
    /// This is exact for the camera poses used in the renderer and avoids a
    /// general 4×4 inversion. For general matrices use [`Mat4::inverse`].
    pub fn inverse_rigid(&self) -> Self {
        let r = self.to_mat3().transpose();
        let t = self.cols[3].truncate();
        let new_t = -(r.mul_vec3(t));
        let mut m = Self::from_mat3(r);
        m.cols[3] = new_t.extend(1.0);
        m
    }

    /// General inverse via Gauss–Jordan elimination, or `None` when singular.
    // Index-based loops keep the elimination readable next to its textbook
    // form (iterator rewrites would need split borrows of the pivot row).
    #[allow(clippy::needless_range_loop)]
    pub fn inverse(&self) -> Option<Self> {
        // Work on a row-major 4x8 augmented matrix for clarity.
        let mut a = [[0.0f64; 8]; 4];
        for r in 0..4 {
            for c in 0..4 {
                a[r][c] = self.get(r, c) as f64;
            }
            a[r][4 + r] = 1.0;
        }
        for col in 0..4 {
            // Partial pivoting.
            let pivot_row = (col..4)
                .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
                .unwrap();
            if a[pivot_row][col].abs() < 1e-12 {
                return None;
            }
            a.swap(col, pivot_row);
            let pivot = a[col][col];
            for c in 0..8 {
                a[col][c] /= pivot;
            }
            for r in 0..4 {
                if r != col {
                    let factor = a[r][col];
                    for c in 0..8 {
                        a[r][c] -= factor * a[col][c];
                    }
                }
            }
        }
        let mut out = Self::IDENTITY;
        for r in 0..4 {
            for c in 0..4 {
                out.set(r, c, a[r][4 + c] as f32);
            }
        }
        Some(out)
    }

    /// Element at `row`, `col`.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        let v = &self.cols[col];
        match row {
            0 => v.x,
            1 => v.y,
            2 => v.z,
            3 => v.w,
            _ => panic!("Mat4 row out of range: {row}"),
        }
    }

    /// Sets the element at `row`, `col`.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        let v = &mut self.cols[col];
        match row {
            0 => v.x = value,
            1 => v.y = value,
            2 => v.z = value,
            3 => v.w = value,
            _ => panic!("Mat4 row out of range: {row}"),
        }
    }
}

impl Mul for Mat4 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        Self::from_cols(
            self.mul_vec4(rhs.cols[0]),
            self.mul_vec4(rhs.cols[1]),
            self.mul_vec4(rhs.cols[2]),
            self.mul_vec4(rhs.cols[3]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    fn vec_close(a: Vec3, b: Vec3, eps: f32) -> bool {
        (a - b).length() < eps
    }

    #[test]
    fn mat3_identity_is_neutral() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY.mul_vec3(v), v);
    }

    #[test]
    fn mat3_rotation_about_z_maps_x_to_y() {
        let r = Mat3::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(vec_close(r.mul_vec3(Vec3::X), Vec3::Y, 1e-5));
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let r = Mat3::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 0.73);
        let inv = r.inverse().unwrap();
        let v = Vec3::new(0.3, -1.1, 2.2);
        assert!(vec_close(inv.mul_vec3(r.mul_vec3(v)), v, 1e-4));
    }

    #[test]
    fn mat3_singular_has_no_inverse() {
        let m = Mat3::from_cols(Vec3::X, Vec3::X, Vec3::Y);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mat4_translation_moves_points_not_directions() {
        let t = Mat4::from_translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_direction(Vec3::X), Vec3::X);
    }

    #[test]
    fn mat4_rigid_inverse_roundtrip() {
        let m = Mat4::from_translation(Vec3::new(0.5, -1.0, 2.0))
            * Mat4::from_mat3(Mat3::from_axis_angle(Vec3::Y, 1.1));
        let inv = m.inverse_rigid();
        let p = Vec3::new(3.0, 4.0, -5.0);
        assert!(vec_close(inv.transform_point(m.transform_point(p)), p, 1e-4));
    }

    #[test]
    fn mat4_general_inverse_roundtrip() {
        let m = Mat4::from_scale(Vec3::new(2.0, 3.0, 0.5))
            * Mat4::from_translation(Vec3::new(1.0, 0.0, -4.0));
        let inv = m.inverse().unwrap();
        let id = m * inv;
        for r in 0..4 {
            for c in 0..4 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((id.get(r, c) - expect).abs() < 1e-5, "({r},{c})");
            }
        }
    }

    #[test]
    fn mat4_singular_has_no_inverse() {
        let m = Mat4::from_scale(Vec3::new(1.0, 0.0, 1.0));
        assert!(m.inverse().is_none());
    }

    #[test]
    fn matrix_multiplication_is_associative() {
        let a = Mat4::from_translation(Vec3::new(1.0, 2.0, 3.0));
        let b = Mat4::from_mat3(Mat3::from_axis_angle(Vec3::X, 0.4));
        let c = Mat4::from_scale(Vec3::splat(2.0));
        let p = Vec3::new(0.1, 0.2, 0.3);
        let lhs = ((a * b) * c).transform_point(p);
        let rhs = (a * (b * c)).transform_point(p);
        assert!(vec_close(lhs, rhs, 1e-4));
    }
}
