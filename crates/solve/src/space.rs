//! The per-object configuration space Cᵢ.

use nerflex_bake::BakeConfig;
use serde::{Deserialize, Serialize};

/// A discrete configuration space: the cross product of candidate mesh
/// granularities and patch sizes, optionally widened with a splat-family
/// axis (candidate splat counts at a fixed extraction grid).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Candidate mesh granularities.
    pub g_values: Vec<u32>,
    /// Candidate patch sizes.
    pub p_values: Vec<u32>,
    /// Extraction grid for the splat-family candidates (unused when
    /// `splat_counts` is empty).
    pub splat_grid: u32,
    /// Candidate splat counts. Empty (the default, including
    /// [`ConfigSpace::quick`] and [`ConfigSpace::paper_default`]) means the
    /// space is mesh-only; widen it with [`ConfigSpace::with_splats`].
    pub splat_counts: Vec<u32>,
}

impl ConfigSpace {
    /// Creates a mesh-only space from explicit candidate lists.
    ///
    /// # Panics
    ///
    /// Panics when either list is empty or contains zero.
    pub fn new(g_values: Vec<u32>, p_values: Vec<u32>) -> Self {
        assert!(
            !g_values.is_empty() && !p_values.is_empty(),
            "configuration space must be non-empty"
        );
        assert!(
            g_values.iter().chain(&p_values).all(|&v| v > 0),
            "configuration knobs must be positive"
        );
        Self { g_values, p_values, splat_grid: 32, splat_counts: Vec::new() }
    }

    /// Widens the space with splat-family candidates: one configuration per
    /// count, all extracted at `grid`. Selectors mix families per object —
    /// a splat candidate competes against every mesh candidate on predicted
    /// size and quality.
    ///
    /// # Panics
    ///
    /// Panics when `grid` is zero or any count is zero.
    pub fn with_splats(mut self, grid: u32, counts: Vec<u32>) -> Self {
        assert!(grid > 0 && counts.iter().all(|&c| c > 0), "configuration knobs must be positive");
        self.splat_grid = grid;
        self.splat_counts = counts;
        self
    }

    /// The space used by the full-scale experiments: granularities 16…128 in
    /// steps of 16 and patch sizes 3…45 in steps of 7 (the MobileNeRF default
    /// (128, 17) is included).
    pub fn paper_default() -> Self {
        Self::new((1..=8).map(|i| i * 16).collect(), (0..=6).map(|i| 3 + i * 7).collect())
    }

    /// A reduced space for tests and quick examples.
    pub fn quick() -> Self {
        Self::new(vec![10, 20, 30, 40], vec![3, 6, 9])
    }

    /// All configurations in the space: the mesh cross product (row-major
    /// over g then p) followed by the splat candidates in count order. Mesh
    /// before splat matches the selector's cross-family tie-break
    /// (`docs/determinism.md`).
    pub fn configurations(&self) -> Vec<BakeConfig> {
        self.g_values
            .iter()
            .flat_map(|&g| self.p_values.iter().map(move |&p| BakeConfig::new(g, p)))
            .chain(self.splat_counts.iter().map(|&c| BakeConfig::splat(self.splat_grid, c)))
            .collect()
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.g_values.len() * self.p_values.len() + self.splat_counts.len()
    }

    /// `true` when the space is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configuration in the space nearest to the continuous point
    /// `(g, p)` (Euclidean distance in knob space) — used when rounding the
    /// SLSQP relaxation back onto the grid. The relaxation is over the mesh
    /// knobs only, so splat candidates are never returned here.
    pub fn nearest(&self, g: f64, p: f64) -> BakeConfig {
        let nearest_g = *self
            .g_values
            .iter()
            .min_by(|&&a, &&b| {
                (a as f64 - g).abs().partial_cmp(&(b as f64 - g).abs()).expect("finite")
            })
            .expect("non-empty");
        let nearest_p = *self
            .p_values
            .iter()
            .min_by(|&&a, &&b| {
                (a as f64 - p).abs().partial_cmp(&(b as f64 - p).abs()).expect("finite")
            })
            .expect("non-empty");
        BakeConfig::new(nearest_g, nearest_p)
    }

    /// Bounds of the space as `(g_min, g_max, p_min, p_max)`.
    pub fn bounds(&self) -> (u32, u32, u32, u32) {
        (
            *self.g_values.iter().min().expect("non-empty"),
            *self.g_values.iter().max().expect("non-empty"),
            *self.p_values.iter().min().expect("non-empty"),
            *self.p_values.iter().max().expect("non-empty"),
        )
    }
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_contains_the_mobilenerf_config() {
        let space = ConfigSpace::paper_default();
        assert!(space.configurations().contains(&BakeConfig::MOBILENERF_DEFAULT));
        assert_eq!(space.len(), 8 * 7);
        assert!(!space.is_empty());
    }

    #[test]
    fn bounds_and_nearest() {
        let space = ConfigSpace::quick();
        assert_eq!(space.bounds(), (10, 40, 3, 9));
        assert_eq!(space.nearest(22.0, 7.2), BakeConfig::new(20, 6));
        assert_eq!(space.nearest(1000.0, -5.0), BakeConfig::new(40, 3));
    }

    #[test]
    fn configurations_enumerate_the_cross_product() {
        let space = ConfigSpace::new(vec![8, 16], vec![3, 5, 7]);
        let configs = space.configurations();
        assert_eq!(configs.len(), 6);
        assert_eq!(configs[0], BakeConfig::new(8, 3));
        assert_eq!(configs[5], BakeConfig::new(16, 7));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_panics() {
        let _ = ConfigSpace::new(vec![], vec![3]);
    }

    #[test]
    fn default_spaces_are_mesh_only() {
        assert!(ConfigSpace::quick().splat_counts.is_empty());
        assert!(ConfigSpace::paper_default().splat_counts.is_empty());
        assert!(ConfigSpace::quick().configurations().iter().all(|c| c.splat_count().is_none()));
    }

    #[test]
    fn with_splats_appends_splat_candidates_after_the_mesh_block() {
        let space = ConfigSpace::quick().with_splats(24, vec![256, 1024, 4096]);
        assert_eq!(space.len(), 4 * 3 + 3);
        let configs = space.configurations();
        assert_eq!(configs.len(), space.len());
        // The mesh cross product comes first, then splats in count order.
        assert!(configs[..12].iter().all(|c| c.splat_count().is_none()));
        assert_eq!(configs[12], BakeConfig::splat(24, 256));
        assert_eq!(configs[14], BakeConfig::splat(24, 4096));
        // Mesh-only queries are unaffected by the splat axis.
        assert_eq!(space.bounds(), (10, 40, 3, 9));
        assert_eq!(space.nearest(22.0, 7.2), BakeConfig::new(20, 6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_splat_count_panics() {
        let _ = ConfigSpace::quick().with_splats(24, vec![256, 0]);
    }
}
