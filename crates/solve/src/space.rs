//! The per-object configuration space Cᵢ.

use nerflex_bake::BakeConfig;
use serde::{Deserialize, Serialize};

/// A discrete configuration space: the cross product of candidate mesh
/// granularities and patch sizes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Candidate mesh granularities.
    pub g_values: Vec<u32>,
    /// Candidate patch sizes.
    pub p_values: Vec<u32>,
}

impl ConfigSpace {
    /// Creates a space from explicit candidate lists.
    ///
    /// # Panics
    ///
    /// Panics when either list is empty or contains zero.
    pub fn new(g_values: Vec<u32>, p_values: Vec<u32>) -> Self {
        assert!(
            !g_values.is_empty() && !p_values.is_empty(),
            "configuration space must be non-empty"
        );
        assert!(
            g_values.iter().chain(&p_values).all(|&v| v > 0),
            "configuration knobs must be positive"
        );
        Self { g_values, p_values }
    }

    /// The space used by the full-scale experiments: granularities 16…128 in
    /// steps of 16 and patch sizes 3…45 in steps of 7 (the MobileNeRF default
    /// (128, 17) is included).
    pub fn paper_default() -> Self {
        Self::new((1..=8).map(|i| i * 16).collect(), (0..=6).map(|i| 3 + i * 7).collect())
    }

    /// A reduced space for tests and quick examples.
    pub fn quick() -> Self {
        Self::new(vec![10, 20, 30, 40], vec![3, 6, 9])
    }

    /// All configurations in the space (row-major over g then p).
    pub fn configurations(&self) -> Vec<BakeConfig> {
        self.g_values
            .iter()
            .flat_map(|&g| self.p_values.iter().map(move |&p| BakeConfig::new(g, p)))
            .collect()
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.g_values.len() * self.p_values.len()
    }

    /// `true` when the space is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configuration in the space nearest to the continuous point
    /// `(g, p)` (Euclidean distance in knob space) — used when rounding the
    /// SLSQP relaxation back onto the grid.
    pub fn nearest(&self, g: f64, p: f64) -> BakeConfig {
        let nearest_g = *self
            .g_values
            .iter()
            .min_by(|&&a, &&b| {
                (a as f64 - g).abs().partial_cmp(&(b as f64 - g).abs()).expect("finite")
            })
            .expect("non-empty");
        let nearest_p = *self
            .p_values
            .iter()
            .min_by(|&&a, &&b| {
                (a as f64 - p).abs().partial_cmp(&(b as f64 - p).abs()).expect("finite")
            })
            .expect("non-empty");
        BakeConfig::new(nearest_g, nearest_p)
    }

    /// Bounds of the space as `(g_min, g_max, p_min, p_max)`.
    pub fn bounds(&self) -> (u32, u32, u32, u32) {
        (
            *self.g_values.iter().min().expect("non-empty"),
            *self.g_values.iter().max().expect("non-empty"),
            *self.p_values.iter().min().expect("non-empty"),
            *self.p_values.iter().max().expect("non-empty"),
        )
    }
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_contains_the_mobilenerf_config() {
        let space = ConfigSpace::paper_default();
        assert!(space.configurations().contains(&BakeConfig::MOBILENERF_DEFAULT));
        assert_eq!(space.len(), 8 * 7);
        assert!(!space.is_empty());
    }

    #[test]
    fn bounds_and_nearest() {
        let space = ConfigSpace::quick();
        assert_eq!(space.bounds(), (10, 40, 3, 9));
        assert_eq!(space.nearest(22.0, 7.2), BakeConfig::new(20, 6));
        assert_eq!(space.nearest(1000.0, -5.0), BakeConfig::new(40, 3));
    }

    #[test]
    fn configurations_enumerate_the_cross_product() {
        let space = ConfigSpace::new(vec![8, 16], vec![3, 5, 7]);
        let configs = space.configurations();
        assert_eq!(configs.len(), 6);
        assert_eq!(configs[0], BakeConfig::new(8, 3));
        assert_eq!(configs[5], BakeConfig::new(16, 7));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_panics() {
        let _ = ConfigSpace::new(vec![], vec![3]);
    }
}
