//! # nerflex-solve
//!
//! The configuration selector (paper §III-C): choosing the baking
//! configuration θᵢ = (gᵢ, pᵢ) for every sub-scene NeRF so that total
//! predicted quality is maximised under the device memory budget `H` — a
//! multiple-choice knapsack (MCK) problem, NP-hard in general.
//!
//! Selectors provided:
//!
//! * [`DpSelector`] — the paper's Algorithm 1: a pseudo-polynomial dynamic
//!   program with per-configuration feasibility pruning (Eq. 3).
//! * [`FairnessSelector`] — equal memory split across objects (baseline).
//! * [`SlsqpSelector`] — sequential quadratic programming on the continuous
//!   relaxation, then rounding (baseline).
//! * [`GreedySelector`] — classic incremental-efficiency MCK greedy
//!   (extension baseline).
//! * [`ExhaustiveSelector`] — brute force, used to verify DP optimality on
//!   small instances.
//!
//! ```
//! use nerflex_solve::{ConfigSpace, DpSelector, ConfigSelector, SelectionProblem};
//! use nerflex_solve::selector::{CandidateConfig, ObjectChoices};
//! use nerflex_bake::BakeConfig;
//!
//! let options = vec![
//!     CandidateConfig { config: BakeConfig::new(16, 3), size_mb: 10.0, quality: 0.7 },
//!     CandidateConfig { config: BakeConfig::new(64, 17), size_mb: 60.0, quality: 0.9 },
//! ];
//! let problem = SelectionProblem {
//!     objects: vec![ObjectChoices { object_id: 0, name: "lego".into(), options, models: None }],
//!     budget_mb: 100.0,
//! };
//! let outcome = DpSelector::default().select(&problem);
//! assert!(outcome.feasible);
//! assert_eq!(outcome.assignments[0].config, BakeConfig::new(64, 17));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dp;
pub mod exhaustive;
pub mod fairness;
pub mod greedy;
pub mod selector;
pub mod slsqp;
pub mod space;

pub use dp::DpSelector;
pub use exhaustive::ExhaustiveSelector;
pub use fairness::FairnessSelector;
pub use greedy::GreedySelector;
pub use selector::{Assignment, ConfigSelector, SelectionOutcome, SelectionProblem};
pub use slsqp::SlsqpSelector;
pub use space::ConfigSpace;
