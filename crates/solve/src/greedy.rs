//! Greedy MCK baseline (incremental-efficiency upgrades).
//!
//! The classic greedy approach the paper cites as the common way to solve
//! MCK problems: start every object at its cheapest configuration and
//! repeatedly apply the upgrade with the best quality-per-MB ratio that still
//! fits the budget. Provided as an extension baseline for the ablation bench
//! (the paper argues greedy-style methods need the Eq. 3 precondition that
//! our DP enforces by construction).

use crate::selector::{
    cheapest_assignment, CandidateConfig, ConfigSelector, SelectionOutcome, SelectionProblem,
};

/// Greedy incremental-efficiency selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySelector;

impl ConfigSelector for GreedySelector {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn select(&self, problem: &SelectionProblem) -> SelectionOutcome {
        if problem.objects.is_empty() {
            return SelectionOutcome {
                selector: self.name().to_string(),
                feasible: true,
                ..Default::default()
            };
        }
        if !problem.is_feasible() {
            return cheapest_assignment(self.name(), problem);
        }
        // Start from the cheapest configuration of every object.
        let mut picks: Vec<CandidateConfig> = problem
            .objects
            .iter()
            .map(|o| *o.cheapest().expect("non-empty candidate list"))
            .collect();
        let mut used: f64 = picks.iter().map(|p| p.size_mb).sum();

        loop {
            // Best upgrade across all objects by Δquality / Δsize.
            let mut best: Option<(usize, CandidateConfig, f64)> = None;
            for (i, obj) in problem.objects.iter().enumerate() {
                for option in &obj.options {
                    let d_quality = option.quality - picks[i].quality;
                    let d_size = option.size_mb - picks[i].size_mb;
                    if d_quality <= 0.0 || d_size <= 0.0 {
                        continue;
                    }
                    if used - picks[i].size_mb + option.size_mb > problem.budget_mb {
                        continue;
                    }
                    let ratio = d_quality / d_size;
                    if best.as_ref().is_none_or(|(_, _, r)| ratio > *r) {
                        best = Some((i, *option, ratio));
                    }
                }
            }
            match best {
                Some((i, option, _)) => {
                    used = used - picks[i].size_mb + option.size_mb;
                    picks[i] = option;
                }
                None => break,
            }
        }
        SelectionOutcome::from_picks(self.name(), problem, &picks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpSelector;

    #[test]
    fn greedy_is_feasible_and_reasonable() {
        for budget in [50.0, 100.0, 150.0, 250.0] {
            let problem = crate::selector::tests::tiny_problem(budget);
            let outcome = GreedySelector.select(&problem);
            assert!(outcome.total_size_mb <= budget + 1e-9, "budget {budget}");
            let dp = DpSelector::default().select(&problem);
            // Greedy never beats the DP and stays within 20 % of it on these instances.
            assert!(outcome.total_quality <= dp.total_quality + 1e-9);
            assert!(outcome.total_quality >= dp.total_quality * 0.8, "budget {budget}");
        }
    }

    #[test]
    fn greedy_upgrades_from_the_cheapest_assignment() {
        let problem = crate::selector::tests::tiny_problem(200.0);
        let outcome = GreedySelector.select(&problem);
        // With 200 MB it should have upgraded beyond the all-cheapest 30 MB.
        assert!(outcome.total_size_mb > 30.0);
        assert!(outcome.feasible);
    }

    #[test]
    fn infeasible_budget_falls_back() {
        let outcome = GreedySelector.select(&crate::selector::tests::tiny_problem(5.0));
        assert!(!outcome.feasible);
    }
}
