//! The Fairness baseline: equal memory split across objects.
//!
//! "Rather than using our proposed DP algorithm to determine the
//! configuration, this baseline divides the total size limit equally and
//! allocates the same memory budget among the segmented objects. It then
//! uses performance profilers to select the optimal configuration pair for
//! each object, maximizing rendering quality within the allocated memory
//! budget." (paper §IV-C)

use crate::selector::{
    cheapest_assignment, CandidateConfig, ConfigSelector, SelectionOutcome, SelectionProblem,
};

/// Equal-share configuration selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairnessSelector;

impl ConfigSelector for FairnessSelector {
    fn name(&self) -> &'static str {
        "Fairness"
    }

    fn select(&self, problem: &SelectionProblem) -> SelectionOutcome {
        if problem.objects.is_empty() {
            return SelectionOutcome {
                selector: self.name().to_string(),
                feasible: true,
                ..Default::default()
            };
        }
        let share = problem.budget_mb / problem.objects.len() as f64;
        let picks: Vec<CandidateConfig> = problem
            .objects
            .iter()
            .map(|obj| {
                obj.options
                    .iter()
                    .filter(|c| c.size_mb <= share)
                    .max_by(|a, b| a.quality.partial_cmp(&b.quality).expect("finite quality"))
                    .copied()
                    // Nothing fits in the share: the best this baseline can do
                    // is the object's cheapest configuration.
                    .unwrap_or_else(|| *obj.cheapest().expect("non-empty candidate list"))
            })
            .collect();
        let outcome = SelectionOutcome::from_picks(self.name(), problem, &picks);
        if outcome.feasible {
            outcome
        } else {
            cheapest_assignment(self.name(), problem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpSelector;
    use crate::selector::{ObjectChoices, SelectionProblem};
    use nerflex_bake::BakeConfig;

    #[test]
    fn each_object_stays_within_its_share() {
        let problem = crate::selector::tests::tiny_problem(120.0);
        let outcome = FairnessSelector.select(&problem);
        // Share = 60 MB: object a picks the 30 MB option, object b the 55 MB one.
        assert_eq!(outcome.assignments[0].predicted_size_mb, 30.0);
        assert_eq!(outcome.assignments[1].predicted_size_mb, 55.0);
        assert!(outcome.feasible);
    }

    #[test]
    fn fairness_is_suboptimal_for_heterogeneous_objects() {
        // A complex object (steep quality gains from more memory) next to a
        // simple one (already saturated): the DP reallocates the simple
        // object's slack to the complex one, Fairness cannot — this is the
        // core claim of the paper's Fig. 8 analysis.
        let simple = ObjectChoices {
            object_id: 0,
            name: "hotdog".into(),
            options: vec![
                CandidateConfig { config: BakeConfig::new(16, 3), size_mb: 20.0, quality: 0.95 },
                CandidateConfig { config: BakeConfig::new(64, 17), size_mb: 70.0, quality: 0.96 },
            ],
            models: None,
        };
        let complex = ObjectChoices {
            object_id: 1,
            name: "lego".into(),
            options: vec![
                CandidateConfig { config: BakeConfig::new(16, 3), size_mb: 20.0, quality: 0.70 },
                CandidateConfig { config: BakeConfig::new(64, 17), size_mb: 65.0, quality: 0.85 },
                CandidateConfig { config: BakeConfig::new(128, 17), size_mb: 110.0, quality: 0.93 },
            ],
            models: None,
        };
        let problem = SelectionProblem { objects: vec![simple, complex], budget_mb: 140.0 };
        let fairness = FairnessSelector.select(&problem);
        let dp = DpSelector::default().select(&problem);
        assert!(dp.total_quality > fairness.total_quality);
        // Fairness gives each 70 MB, so the complex object is stuck at 0.85 ...
        assert_eq!(fairness.assignment_for(1).unwrap().predicted_quality, 0.85);
        // ... while the DP funds its 110 MB configuration.
        assert_eq!(dp.assignment_for(1).unwrap().predicted_quality, 0.93);
    }

    #[test]
    fn over_share_objects_fall_back_to_cheapest() {
        let problem = crate::selector::tests::tiny_problem(30.0);
        let outcome = FairnessSelector.select(&problem);
        // Share = 15 MB: object a picks 10 MB, object b has nothing ≤ 15 MB so
        // it falls back to its 20 MB cheapest option; the total (30) still fits.
        assert_eq!(outcome.total_size_mb, 30.0);
        assert!(outcome.feasible);
    }

    #[test]
    fn infeasible_budget_reports_infeasible() {
        let outcome = FairnessSelector.select(&crate::selector::tests::tiny_problem(12.0));
        assert!(!outcome.feasible);
    }
}
