//! Brute-force configuration selection (optimality oracle for tests).

use crate::selector::{
    cheapest_assignment, CandidateConfig, ConfigSelector, SelectionOutcome, SelectionProblem,
};

/// Exhaustive search over the full cross product of per-object options.
///
/// Exponential in the number of objects — usable only for verification on
/// small instances, which is exactly what the tests and the ablation bench
/// use it for.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveSelector {
    /// Upper bound on the number of combinations the search will enumerate.
    pub max_combinations: u64,
}

impl Default for ExhaustiveSelector {
    fn default() -> Self {
        Self { max_combinations: 5_000_000 }
    }
}

impl ConfigSelector for ExhaustiveSelector {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    /// # Panics
    ///
    /// Panics when the instance exceeds `max_combinations` combinations.
    fn select(&self, problem: &SelectionProblem) -> SelectionOutcome {
        if problem.objects.is_empty() {
            return SelectionOutcome {
                selector: self.name().to_string(),
                feasible: true,
                ..Default::default()
            };
        }
        let combos: u64 = problem.objects.iter().map(|o| o.options.len() as u64).product();
        assert!(
            combos <= self.max_combinations,
            "exhaustive search over {combos} combinations exceeds the configured limit"
        );
        if !problem.is_feasible() {
            return cheapest_assignment(self.name(), problem);
        }

        let n = problem.objects.len();
        let mut indices = vec![0usize; n];
        let mut best: Option<(f64, Vec<usize>)> = None;
        loop {
            let total_size: f64 = indices
                .iter()
                .enumerate()
                .map(|(i, &t)| problem.objects[i].options[t].size_mb)
                .sum();
            if total_size <= problem.budget_mb + 1e-9 {
                let total_quality: f64 = indices
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| problem.objects[i].options[t].quality)
                    .sum();
                if best.as_ref().is_none_or(|(q, _)| total_quality > *q) {
                    best = Some((total_quality, indices.clone()));
                }
            }
            // Advance the mixed-radix counter.
            let mut carry = 0;
            loop {
                indices[carry] += 1;
                if indices[carry] < problem.objects[carry].options.len() {
                    break;
                }
                indices[carry] = 0;
                carry += 1;
                if carry == n {
                    break;
                }
            }
            if carry == n {
                break;
            }
        }

        match best {
            Some((_, indices)) => {
                let picks: Vec<CandidateConfig> = indices
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| problem.objects[i].options[t])
                    .collect();
                SelectionOutcome::from_picks(self.name(), problem, &picks)
            }
            None => cheapest_assignment(self.name(), problem),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_bake::BakeConfig;

    #[test]
    fn finds_the_known_optimum() {
        let problem = crate::selector::tests::tiny_problem(100.0);
        let outcome = ExhaustiveSelector::default().select(&problem);
        assert!((outcome.total_quality - 1.73).abs() < 1e-9);
        assert_eq!(outcome.assignments[0].config, BakeConfig::new(32, 9));
        assert!(outcome.feasible);
    }

    #[test]
    fn respects_budget_strictly() {
        let problem = crate::selector::tests::tiny_problem(95.0);
        let outcome = ExhaustiveSelector::default().select(&problem);
        assert!(outcome.total_size_mb <= 95.0);
    }

    #[test]
    fn infeasible_instances_fall_back_to_cheapest() {
        let outcome =
            ExhaustiveSelector::default().select(&crate::selector::tests::tiny_problem(10.0));
        assert!(!outcome.feasible);
        assert_eq!(outcome.total_size_mb, 30.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the configured limit")]
    fn oversized_instances_panic() {
        let problem = crate::selector::tests::tiny_problem(100.0);
        let selector = ExhaustiveSelector { max_combinations: 2 };
        let _ = selector.select(&problem);
    }
}
