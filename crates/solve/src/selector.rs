//! Common types and the selector trait.

use crate::space::ConfigSpace;
use nerflex_bake::BakeConfig;
use nerflex_profile::model::ProfileModels;
use nerflex_profile::ObjectProfile;
use serde::{Deserialize, Serialize};

/// One candidate configuration for one object, with its predicted cost and
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// The configuration pair θ = (g, p).
    pub config: BakeConfig,
    /// Predicted baked-data size in MB (fₛ(θ)).
    pub size_mb: f64,
    /// Predicted rendering quality (f_q(θ)).
    pub quality: f64,
}

/// The per-object choice set Cᵢ with predictions attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectChoices {
    /// Instance id of the object.
    pub object_id: usize,
    /// Object name (for reporting).
    pub name: String,
    /// Candidate configurations with predicted size/quality.
    pub options: Vec<CandidateConfig>,
    /// The continuous profile models, when available (required by the
    /// continuous-relaxation selectors such as SLSQP).
    pub models: Option<ProfileModels>,
}

impl ObjectChoices {
    /// The smallest predicted size over the candidate set.
    pub fn min_size(&self) -> f64 {
        self.options.iter().map(|o| o.size_mb).fold(f64::INFINITY, f64::min)
    }

    /// The candidate with the smallest predicted size.
    pub fn cheapest(&self) -> Option<&CandidateConfig> {
        self.options.iter().min_by(|a, b| a.size_mb.partial_cmp(&b.size_mb).expect("finite sizes"))
    }
}

/// A configuration-selection problem instance (Eq. 2 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionProblem {
    /// One choice set per sub-scene / object.
    pub objects: Vec<ObjectChoices>,
    /// The device memory budget H in MB.
    pub budget_mb: f64,
}

impl SelectionProblem {
    /// Builds the problem from fitted profiles and a configuration space: the
    /// candidate list of every object is the whole space with that object's
    /// predicted size and quality attached. Predictions are family-aware:
    /// splat candidates are dropped for objects whose profile carries no
    /// splat models (the profiler never sampled that axis for them), so
    /// every retained candidate has a real prediction behind it.
    pub fn from_profiles(profiles: &[ObjectProfile], space: &ConfigSpace, budget_mb: f64) -> Self {
        let objects = profiles
            .iter()
            .map(|profile| {
                let options =
                    space
                        .configurations()
                        .into_iter()
                        .filter_map(|config| {
                            profile.predict_config(&config).map(|(size_mb, quality)| {
                                CandidateConfig { config, size_mb, quality }
                            })
                        })
                        .collect();
                ObjectChoices {
                    object_id: profile.object_id,
                    name: profile.name.clone(),
                    options,
                    models: Some(profile.models()),
                }
            })
            .collect();
        Self { objects, budget_mb }
    }

    /// Sum of per-object minimum sizes — the smallest memory any assignment
    /// can use. When this exceeds the budget the instance is infeasible.
    pub fn min_total_size(&self) -> f64 {
        self.objects.iter().map(ObjectChoices::min_size).sum()
    }

    /// `true` when at least one assignment fits in the budget.
    pub fn is_feasible(&self) -> bool {
        !self.objects.is_empty() && self.min_total_size() <= self.budget_mb + 1e-9
    }
}

/// One object's selected configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Instance id of the object.
    pub object_id: usize,
    /// Object name.
    pub name: String,
    /// The selected configuration.
    pub config: BakeConfig,
    /// Predicted size of the selection (MB).
    pub predicted_size_mb: f64,
    /// Predicted quality of the selection.
    pub predicted_quality: f64,
}

/// The result of running a selector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SelectionOutcome {
    /// Selector name that produced this outcome.
    pub selector: String,
    /// Per-object assignments (one per object, in problem order).
    pub assignments: Vec<Assignment>,
    /// Total predicted size (MB).
    pub total_size_mb: f64,
    /// Total predicted quality (the MCK objective ∑ f_qᵢ).
    pub total_quality: f64,
    /// Whether the assignment respects the budget.
    pub feasible: bool,
}

impl SelectionOutcome {
    /// Builds an outcome from per-object candidate picks.
    pub fn from_picks(
        selector: &str,
        problem: &SelectionProblem,
        picks: &[CandidateConfig],
    ) -> Self {
        assert_eq!(picks.len(), problem.objects.len(), "one pick per object required");
        let assignments: Vec<Assignment> = problem
            .objects
            .iter()
            .zip(picks)
            .map(|(obj, pick)| Assignment {
                object_id: obj.object_id,
                name: obj.name.clone(),
                config: pick.config,
                predicted_size_mb: pick.size_mb,
                predicted_quality: pick.quality,
            })
            .collect();
        let total_size_mb: f64 = assignments.iter().map(|a| a.predicted_size_mb).sum();
        let total_quality: f64 = assignments.iter().map(|a| a.predicted_quality).sum();
        Self {
            selector: selector.to_string(),
            feasible: total_size_mb <= problem.budget_mb + 1e-6,
            assignments,
            total_size_mb,
            total_quality,
        }
    }

    /// The assignment for a given object id.
    pub fn assignment_for(&self, object_id: usize) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.object_id == object_id)
    }

    /// Mean predicted quality per object (what Fig. 7 plots as scene SSIM).
    pub fn mean_quality(&self) -> f64 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        self.total_quality / self.assignments.len() as f64
    }
}

/// A configuration-selection algorithm.
pub trait ConfigSelector {
    /// Short human-readable name ("DP", "Fairness", "SLSQP", …).
    fn name(&self) -> &'static str;

    /// Solves the selection problem.
    fn select(&self, problem: &SelectionProblem) -> SelectionOutcome;
}

/// Helper shared by baselines: the fallback assignment that picks every
/// object's cheapest configuration (used when a strategy cannot find a
/// feasible answer; it is the least-memory assignment possible).
pub fn cheapest_assignment(selector: &str, problem: &SelectionProblem) -> SelectionOutcome {
    let picks: Vec<CandidateConfig> = problem
        .objects
        .iter()
        .map(|obj| *obj.cheapest().expect("non-empty candidate list"))
        .collect();
    SelectionOutcome::from_picks(selector, problem, &picks)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Shared two-object fixture reused by the other selectors' tests.
    pub(crate) fn tiny_problem(budget: f64) -> SelectionProblem {
        let options_a = vec![
            CandidateConfig { config: BakeConfig::new(16, 3), size_mb: 10.0, quality: 0.70 },
            CandidateConfig { config: BakeConfig::new(32, 9), size_mb: 30.0, quality: 0.85 },
            CandidateConfig { config: BakeConfig::new(64, 17), size_mb: 80.0, quality: 0.92 },
        ];
        let options_b = vec![
            CandidateConfig { config: BakeConfig::new(16, 3), size_mb: 20.0, quality: 0.60 },
            CandidateConfig { config: BakeConfig::new(32, 9), size_mb: 55.0, quality: 0.88 },
            CandidateConfig { config: BakeConfig::new(64, 17), size_mb: 120.0, quality: 0.95 },
        ];
        SelectionProblem {
            objects: vec![
                ObjectChoices { object_id: 0, name: "a".into(), options: options_a, models: None },
                ObjectChoices { object_id: 1, name: "b".into(), options: options_b, models: None },
            ],
            budget_mb: budget,
        }
    }

    #[test]
    fn feasibility_depends_on_cheapest_total() {
        assert!(tiny_problem(100.0).is_feasible());
        assert!(!tiny_problem(25.0).is_feasible());
        assert_eq!(tiny_problem(100.0).min_total_size(), 30.0);
    }

    #[test]
    fn outcome_totals_are_consistent() {
        let problem = tiny_problem(100.0);
        let picks = vec![problem.objects[0].options[1], problem.objects[1].options[1]];
        let outcome = SelectionOutcome::from_picks("test", &problem, &picks);
        assert_eq!(outcome.total_size_mb, 85.0);
        assert!((outcome.total_quality - 1.73).abs() < 1e-9);
        assert!(outcome.feasible);
        assert!((outcome.mean_quality() - 0.865).abs() < 1e-9);
        assert_eq!(outcome.assignment_for(1).unwrap().config, BakeConfig::new(32, 9));
    }

    #[test]
    fn cheapest_assignment_uses_min_sizes() {
        let problem = tiny_problem(100.0);
        let outcome = cheapest_assignment("fallback", &problem);
        assert_eq!(outcome.total_size_mb, 30.0);
        assert!(outcome.feasible);
    }

    #[test]
    #[should_panic(expected = "one pick per object")]
    fn wrong_pick_count_panics() {
        let problem = tiny_problem(100.0);
        let _ = SelectionOutcome::from_picks("bad", &problem, &[]);
    }
}
