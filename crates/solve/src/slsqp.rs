//! SLSQP baseline: sequential quadratic programming on the continuous
//! relaxation of the selection problem (Eq. 2), then rounding onto the grid.
//!
//! "The key concept of this algorithm is to approximate the gradient and
//! Hessian matrix of the objective function using least squares, generating
//! a search direction. It then solves a system of linear equations to update
//! the optimization variables." (paper §IV-C)
//!
//! The optimizer below is a from-scratch small SQP: numerical gradients of
//! the profile models, a damped BFGS approximation of the Hessian of the
//! Lagrangian, a KKT linear system for the search direction when the memory
//! constraint is active, a merit-function line search, and box projection
//! onto the configuration bounds. As the paper observes, the method is
//! sensitive to its initial values and to approximation error, which is why
//! it can produce "unreasonable resource allocation schemes" relative to the
//! DP — that behaviour is exactly what the Fig. 7/8 comparisons exercise.

use crate::selector::{
    cheapest_assignment, CandidateConfig, ConfigSelector, SelectionOutcome, SelectionProblem,
};
use crate::space::ConfigSpace;
use nerflex_math::stats::solve_linear_system;
use nerflex_profile::model::SizeQualityModel;

/// SQP-based continuous-relaxation selector.
#[derive(Debug, Clone)]
pub struct SlsqpSelector {
    /// The discrete space onto which the continuous solution is rounded.
    pub space: ConfigSpace,
    /// Maximum number of SQP iterations.
    pub iterations: usize,
}

impl SlsqpSelector {
    /// Creates the selector with the given rounding space.
    pub fn new(space: ConfigSpace) -> Self {
        Self { space, iterations: 60 }
    }
}

impl Default for SlsqpSelector {
    fn default() -> Self {
        Self::new(ConfigSpace::paper_default())
    }
}

/// Continuous objective/constraint evaluation helpers.
struct Relaxation<'a> {
    problem: &'a SelectionProblem,
    bounds: (f64, f64, f64, f64),
}

impl Relaxation<'_> {
    fn quality(&self, x: &[f64]) -> f64 {
        self.problem
            .objects
            .iter()
            .enumerate()
            .map(|(i, obj)| {
                let models = obj.models.as_ref().expect("SLSQP requires continuous models");
                models.predict_quality(x[2 * i].round() as u32, x[2 * i + 1].round() as u32)
            })
            .sum()
    }

    fn size(&self, x: &[f64]) -> f64 {
        self.problem
            .objects
            .iter()
            .enumerate()
            .map(|(i, obj)| {
                let models = obj.models.as_ref().expect("SLSQP requires continuous models");
                models.predict_size(x[2 * i].round() as u32, x[2 * i + 1].round() as u32)
            })
            .sum()
    }

    /// Negative total quality (the minimised objective).
    fn objective(&self, x: &[f64]) -> f64 {
        -self.quality(x)
    }

    /// Constraint value c(x) = Σ size − H (feasible when ≤ 0).
    fn constraint(&self, x: &[f64]) -> f64 {
        self.size(x) - self.problem.budget_mb
    }

    fn gradient(&self, f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
        let fx = f(x);
        (0..x.len())
            .map(|j| {
                let h = 1.0; // knob units are integers; a unit step is the natural scale
                let mut bumped = x.to_vec();
                bumped[j] += h;
                (f(&bumped) - fx) / h
            })
            .collect()
    }

    fn project(&self, x: &mut [f64]) {
        let (g_min, g_max, p_min, p_max) = self.bounds;
        for i in 0..x.len() / 2 {
            x[2 * i] = x[2 * i].clamp(g_min, g_max);
            x[2 * i + 1] = x[2 * i + 1].clamp(p_min, p_max);
        }
    }
}

impl ConfigSelector for SlsqpSelector {
    fn name(&self) -> &'static str {
        "SLSQP"
    }

    /// # Panics
    ///
    /// Panics when an object in the problem carries no continuous models
    /// (SLSQP operates on the relaxation, not on the discrete candidates).
    fn select(&self, problem: &SelectionProblem) -> SelectionOutcome {
        if problem.objects.is_empty() {
            return SelectionOutcome {
                selector: self.name().to_string(),
                feasible: true,
                ..Default::default()
            };
        }
        if !problem.is_feasible() {
            return cheapest_assignment(self.name(), problem);
        }
        let (g_min, g_max, p_min, p_max) = self.space.bounds();
        let relax = Relaxation {
            problem,
            bounds: (g_min as f64, g_max as f64, p_min as f64, p_max as f64),
        };
        let n = problem.objects.len() * 2;

        // Initial iterate: the midpoint of the box (the "initial assumption
        // values" whose quality the paper calls out as a weakness).
        let mut x: Vec<f64> = (0..n)
            .map(|j| {
                if j % 2 == 0 {
                    (g_min as f64 + g_max as f64) / 2.0
                } else {
                    (p_min as f64 + p_max as f64) / 2.0
                }
            })
            .collect();
        // BFGS approximation of the Lagrangian Hessian, started at identity.
        let mut hessian = vec![vec![0.0f64; n]; n];
        for (j, row) in hessian.iter_mut().enumerate() {
            row[j] = 1.0;
        }
        let mut prev: Option<(Vec<f64>, Vec<f64>)> = None; // (x, grad_lagrangian)
        let mu = 10.0; // merit-function penalty weight

        for _ in 0..self.iterations {
            let grad_f = relax.gradient(|v| relax.objective(v), &x);
            let grad_c = relax.gradient(|v| relax.constraint(v), &x);
            let c_val = relax.constraint(&x);

            // Search direction: Newton/KKT step when the constraint is active
            // or violated, plain quasi-Newton descent otherwise.
            let active = c_val > -1e-6;
            let direction = if active {
                // [B  ∇c][d]   [-∇f]
                // [∇cᵀ 0][λ] = [-c]
                let mut kkt = vec![vec![0.0f64; n + 1]; n + 1];
                let mut rhs = vec![0.0f64; n + 1];
                for r in 0..n {
                    for col in 0..n {
                        kkt[r][col] = hessian[r][col];
                    }
                    kkt[r][n] = grad_c[r];
                    kkt[n][r] = grad_c[r];
                    rhs[r] = -grad_f[r];
                }
                rhs[n] = -c_val;
                solve_linear_system(kkt, rhs).map(|mut sol| {
                    sol.truncate(n);
                    sol
                })
            } else {
                solve_linear_system(hessian.clone(), grad_f.iter().map(|g| -g).collect())
            };
            let Some(direction) = direction else { break };

            // Merit-function line search.
            let merit = |v: &[f64]| relax.objective(v) + mu * relax.constraint(v).max(0.0);
            let base_merit = merit(&x);
            let mut step = 1.0;
            let mut next_x = x.clone();
            let mut improved = false;
            for _ in 0..12 {
                let mut candidate: Vec<f64> =
                    x.iter().zip(&direction).map(|(xi, di)| xi + step * di).collect();
                relax.project(&mut candidate);
                if merit(&candidate) < base_merit - 1e-9 {
                    next_x = candidate;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                break;
            }

            // Damped BFGS update of the Lagrangian Hessian approximation.
            let lambda = if active { 1.0 } else { 0.0 };
            let grad_l: Vec<f64> =
                grad_f.iter().zip(&grad_c).map(|(f, c)| f + lambda * c).collect();
            if let Some((px, pg)) = prev.replace((next_x.clone(), grad_l.clone())) {
                let s: Vec<f64> = next_x.iter().zip(&px).map(|(a, b)| a - b).collect();
                let y: Vec<f64> = grad_l.iter().zip(&pg).map(|(a, b)| a - b).collect();
                let sy: f64 = s.iter().zip(&y).map(|(a, b)| a * b).sum();
                if sy > 1e-8 {
                    // Bs and sᵀBs.
                    let bs: Vec<f64> = hessian
                        .iter()
                        .map(|row| row.iter().zip(&s).map(|(h, si)| h * si).sum())
                        .collect();
                    let sbs: f64 = s.iter().zip(&bs).map(|(a, b)| a * b).sum();
                    for r in 0..n {
                        for c in 0..n {
                            hessian[r][c] += y[r] * y[c] / sy - bs[r] * bs[c] / sbs.max(1e-8);
                        }
                    }
                }
            }
            x = next_x;
        }

        // Round the continuous solution back onto the grid and restore
        // feasibility by downgrading the largest objects if needed.
        let mut picks: Vec<CandidateConfig> = problem
            .objects
            .iter()
            .enumerate()
            .map(|(i, obj)| {
                let rounded = self.space.nearest(x[2 * i], x[2 * i + 1]);
                obj.options
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.config.grid as i64 - rounded.grid as i64).abs()
                            + (a.config.patch as i64 - rounded.patch as i64).abs();
                        let db = (b.config.grid as i64 - rounded.grid as i64).abs()
                            + (b.config.patch as i64 - rounded.patch as i64).abs();
                        da.cmp(&db)
                    })
                    .copied()
                    .expect("non-empty candidate list")
            })
            .collect();
        let mut total: f64 = picks.iter().map(|p| p.size_mb).sum();
        while total > problem.budget_mb {
            // Downgrade the object currently using the most memory to its next
            // cheaper option; stop when nothing can be downgraded further.
            let Some((worst, _)) = picks
                .iter()
                .enumerate()
                .filter(|(i, pick)| {
                    problem.objects[*i].options.iter().any(|o| o.size_mb < pick.size_mb)
                })
                .max_by(|a, b| a.1.size_mb.partial_cmp(&b.1.size_mb).expect("finite"))
            else {
                break;
            };
            let current = picks[worst];
            let next_cheaper = problem.objects[worst]
                .options
                .iter()
                .filter(|o| o.size_mb < current.size_mb)
                .max_by(|a, b| a.size_mb.partial_cmp(&b.size_mb).expect("finite"))
                .copied()
                .expect("filter guarantees a cheaper option");
            total = total - current.size_mb + next_cheaper.size_mb;
            picks[worst] = next_cheaper;
        }
        SelectionOutcome::from_picks(self.name(), problem, &picks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpSelector;
    use crate::selector::{ObjectChoices, SelectionProblem};

    use nerflex_profile::model::{ProfileModels, QualityModel, SizeModel};

    /// Builds a problem whose candidates come from analytic profile models so
    /// SLSQP has a continuous relaxation to work on.
    fn model_problem(budget: f64, complexity: &[f64]) -> SelectionProblem {
        let space = ConfigSpace::quick();
        let objects = complexity
            .iter()
            .enumerate()
            .map(|(id, &c)| {
                let size = SizeModel { k: 2.0e-6 * (0.5 + c), a: 0.0, b: 0.0, m: 0.5 };
                let quality = QualityModel {
                    q_inf: 0.9 + 0.05 * c,
                    k: 2.0e3 * (0.5 + 2.0 * c),
                    a: 0.0,
                    b: 0.0,
                };
                let models = ProfileModels { size, quality };
                let options = space
                    .configurations()
                    .into_iter()
                    .map(|config| CandidateConfig {
                        config,
                        size_mb: models.predict_size(config.grid, config.patch),
                        quality: models.predict_quality(config.grid, config.patch),
                    })
                    .collect();
                ObjectChoices {
                    object_id: id,
                    name: format!("o{id}"),
                    options,
                    models: Some(models),
                }
            })
            .collect();
        SelectionProblem { objects, budget_mb: budget }
    }

    #[test]
    fn slsqp_produces_a_feasible_assignment() {
        let problem = model_problem(60.0, &[0.2, 0.8, 0.5]);
        let outcome = SlsqpSelector::new(ConfigSpace::quick()).select(&problem);
        assert_eq!(outcome.assignments.len(), 3);
        assert!(outcome.feasible, "SLSQP must return a feasible rounded solution");
        assert!(outcome.total_size_mb <= 60.0 + 1e-6);
    }

    #[test]
    fn slsqp_never_beats_the_dp_but_is_competitive_here() {
        let problem = model_problem(80.0, &[0.3, 0.9]);
        let dp = DpSelector::default().select(&problem);
        let slsqp = SlsqpSelector::new(ConfigSpace::quick()).select(&problem);
        assert!(slsqp.total_quality <= dp.total_quality + 1e-9);
        assert!(
            slsqp.total_quality > dp.total_quality * 0.7,
            "SLSQP collapsed: {} vs {}",
            slsqp.total_quality,
            dp.total_quality
        );
    }

    #[test]
    fn infeasible_budget_falls_back_to_cheapest() {
        let problem = model_problem(0.5, &[0.5, 0.5]);
        let outcome = SlsqpSelector::new(ConfigSpace::quick()).select(&problem);
        assert!(!outcome.feasible);
    }

    #[test]
    #[should_panic(expected = "requires continuous models")]
    fn missing_models_panic() {
        let problem = crate::selector::tests::tiny_problem(100.0);
        let _ = SlsqpSelector::new(ConfigSpace::quick()).select(&problem);
    }
}
