//! Algorithm 1: dynamic-programming-based configuration selection.
//!
//! The selection problem is a multiple-choice knapsack: exactly one
//! configuration per object, total predicted size at most `H`, total
//! predicted quality maximised. Algorithm 1 solves it in pseudo-polynomial
//! time `O(n · h · c)` where `h` is the (quantised) budget and `c` the
//! configuration-space size, after pruning configurations that violate the
//! per-object feasibility condition (Eq. 3):
//!
//! `fₛᵢ(θ) + Σ_{h≠i} min_θ fₛₕ(θ) ≤ H`.
//!
//! Implementation note (documented in DESIGN.md): the paper's pseudo-code
//! updates a single flat `q[j]` array in place across objects; we keep the
//! same loop structure but maintain one DP layer per object so that the
//! backtracking over `choices[i][j]` always reconstructs a consistent
//! assignment (exactly one configuration per object). An exhaustive search
//! verifies optimality on small instances in the tests.

use crate::selector::{
    cheapest_assignment, CandidateConfig, ConfigSelector, SelectionOutcome, SelectionProblem,
};

/// The paper's DP selector (Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct DpSelector {
    /// Size quantisation in MB per DP capacity unit (smaller = more accurate,
    /// larger = faster). The default of 1 MB matches the paper's whole-MB
    /// budgets (240 MB / 150 MB).
    pub quantization_mb: f64,
}

impl Default for DpSelector {
    fn default() -> Self {
        Self { quantization_mb: 1.0 }
    }
}

impl DpSelector {
    /// Creates a selector with an explicit capacity quantisation.
    ///
    /// # Panics
    ///
    /// Panics when the quantisation is not strictly positive.
    pub fn with_quantization(quantization_mb: f64) -> Self {
        assert!(quantization_mb > 0.0, "quantisation must be positive");
        Self { quantization_mb }
    }
}

impl ConfigSelector for DpSelector {
    fn name(&self) -> &'static str {
        "DP (ours)"
    }

    fn select(&self, problem: &SelectionProblem) -> SelectionOutcome {
        if problem.objects.is_empty() {
            return SelectionOutcome {
                selector: self.name().to_string(),
                feasible: true,
                ..Default::default()
            };
        }
        if !problem.is_feasible() {
            // Not even the cheapest assignment fits: report it, marked infeasible.
            return cheapest_assignment(self.name(), problem);
        }

        let capacity = (problem.budget_mb / self.quantization_mb).floor() as usize;
        let n = problem.objects.len();
        // Quantised (ceil) sizes so a "fits" decision never underestimates.
        let sizes: Vec<Vec<usize>> = problem
            .objects
            .iter()
            .map(|obj| {
                obj.options
                    .iter()
                    .map(|c| (c.size_mb / self.quantization_mb).ceil() as usize)
                    .collect()
            })
            .collect();
        let min_sizes: Vec<usize> =
            sizes.iter().map(|s| *s.iter().min().expect("non-empty candidate list")).collect();
        let total_min: usize = min_sizes.iter().sum();

        // DP layers: value[j] = best total quality of the objects processed so
        // far using at most j units; usize::MAX marks "unreachable".
        const UNREACHED: f64 = f64::NEG_INFINITY;
        let mut value = vec![0.0f64; capacity + 1];
        let mut reachable = vec![true; capacity + 1];
        // choices[i][j] = index of the option picked for object i when the
        // DP ends layer i at exactly capacity j.
        let mut choices: Vec<Vec<Option<usize>>> = Vec::with_capacity(n);

        for (i, obj) in problem.objects.iter().enumerate() {
            // Eq. 3 pruning: configurations that cannot coexist with the other
            // objects' cheapest configurations can never appear in a feasible
            // assignment and are removed up front (line 8–11 of Algorithm 1).
            let others_min: usize = total_min - min_sizes[i];
            let r_i = capacity.saturating_sub(others_min);

            let mut next_value = vec![UNREACHED; capacity + 1];
            let mut next_reachable = vec![false; capacity + 1];
            let mut layer_choice = vec![None; capacity + 1];
            // Iterate capacities from H down to 0 as in the paper's pseudo-code.
            for j in (0..=capacity).rev() {
                for (t, option) in obj.options.iter().enumerate() {
                    let s = sizes[i][t];
                    if s > r_i {
                        continue; // prune: violates Eq. 3
                    }
                    if j >= s && reachable[j - s] {
                        let candidate = value[j - s] + option.quality;
                        let replace = if !next_reachable[j] {
                            true
                        } else if candidate != next_value[j] {
                            candidate > next_value[j]
                        } else {
                            // Exact quality tie at the same quantised size:
                            // deterministic cross-family tie-break. The
                            // smaller (family, grid, count-or-patch) key
                            // wins, so mesh beats splat and coarser knobs
                            // beat finer ones — independent of candidate
                            // order (docs/determinism.md).
                            let prev: usize =
                                layer_choice[j].expect("reachable state has a choice");
                            option.config.tie_break_key() < obj.options[prev].config.tie_break_key()
                        };
                        if replace {
                            next_value[j] = candidate;
                            next_reachable[j] = true;
                            layer_choice[j] = Some(t);
                        }
                    }
                }
            }
            value = next_value;
            reachable = next_reachable;
            choices.push(layer_choice);
        }

        // Best reachable capacity after the last object.
        let Some(best_j) = (0..=capacity)
            .filter(|&j| reachable[j])
            .max_by(|&a, &b| value[a].partial_cmp(&value[b]).expect("finite quality"))
        else {
            return cheapest_assignment(self.name(), problem);
        };

        // Backtrack: recover each object's choice, walking the layers in
        // reverse (line 21–25 of Algorithm 1, per-layer variant).
        let mut picks: Vec<CandidateConfig> = vec![
            CandidateConfig {
                config: nerflex_bake::BakeConfig::new(1, 1),
                size_mb: 0.0,
                quality: 0.0,
            };
            n
        ];
        let mut j = best_j;
        for i in (0..n).rev() {
            let t = choices[i][j].expect("reachable state has a recorded choice");
            picks[i] = problem.objects[i].options[t];
            j -= sizes[i][t];
        }

        SelectionOutcome::from_picks(self.name(), problem, &picks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSelector;
    use crate::selector::{ObjectChoices, SelectionProblem};
    use nerflex_bake::BakeConfig;

    fn tiny_problem(budget: f64) -> SelectionProblem {
        crate::selector::tests::tiny_problem(budget)
    }

    #[test]
    fn picks_the_optimal_pair_within_budget() {
        // Budget 100: best is a@30 (0.85) + b@55 (0.88) = 1.73 using 85 MB.
        let outcome = DpSelector::default().select(&tiny_problem(100.0));
        assert!(outcome.feasible);
        assert_eq!(outcome.assignments[0].config, BakeConfig::new(32, 9));
        assert_eq!(outcome.assignments[1].config, BakeConfig::new(32, 9));
        assert!((outcome.total_quality - 1.73).abs() < 1e-9);
        assert!(outcome.total_size_mb <= 100.0);
    }

    #[test]
    fn spends_more_budget_when_available() {
        // Budget 220: a@80 (0.92) + b@120 (0.95) = 1.87 fits exactly at 200.
        let outcome = DpSelector::default().select(&tiny_problem(220.0));
        assert_eq!(outcome.assignments[0].config, BakeConfig::new(64, 17));
        assert_eq!(outcome.assignments[1].config, BakeConfig::new(64, 17));
        assert!(outcome.feasible);
    }

    #[test]
    fn infeasible_budget_falls_back_to_cheapest() {
        let outcome = DpSelector::default().select(&tiny_problem(25.0));
        assert!(!outcome.feasible);
        assert_eq!(outcome.total_size_mb, 30.0);
    }

    #[test]
    fn empty_problem_is_trivially_feasible() {
        let outcome =
            DpSelector::default().select(&SelectionProblem { objects: vec![], budget_mb: 100.0 });
        assert!(outcome.feasible);
        assert!(outcome.assignments.is_empty());
    }

    #[test]
    fn matches_exhaustive_search_on_small_instances() {
        for budget in [40.0, 70.0, 100.0, 150.0, 200.0, 500.0] {
            let problem = tiny_problem(budget);
            let dp = DpSelector::default().select(&problem);
            let brute = ExhaustiveSelector::default().select(&problem);
            assert!(
                (dp.total_quality - brute.total_quality).abs() < 1e-9,
                "budget {budget}: DP {} vs exhaustive {}",
                dp.total_quality,
                brute.total_quality
            );
        }
    }

    #[test]
    fn quantisation_never_overflows_budget() {
        let problem = tiny_problem(86.0);
        let outcome = DpSelector::with_quantization(5.0).select(&problem);
        assert!(outcome.total_size_mb <= 86.0 + 1e-9);
    }

    #[test]
    fn cross_family_ties_break_deterministically_toward_mesh() {
        // One object, two candidates with *identical* predicted size and
        // quality — one splat, one mesh. The pick must be the mesh config
        // (smaller tie-break key) regardless of candidate order.
        for flip in [false, true] {
            let mut options = vec![
                CandidateConfig { config: BakeConfig::splat(24, 512), size_mb: 12.0, quality: 0.8 },
                CandidateConfig { config: BakeConfig::new(20, 5), size_mb: 12.0, quality: 0.8 },
            ];
            if flip {
                options.reverse();
            }
            let problem = SelectionProblem {
                objects: vec![ObjectChoices {
                    object_id: 0,
                    name: "tie".into(),
                    options,
                    models: None,
                }],
                budget_mb: 50.0,
            };
            let outcome = DpSelector::default().select(&problem);
            assert_eq!(
                outcome.assignments[0].config,
                BakeConfig::new(20, 5),
                "mesh must win the family tie (flip={flip})"
            );
        }
    }

    #[test]
    fn within_family_ties_break_toward_the_coarser_knobs() {
        // Two equal splat candidates: the smaller count wins deterministically.
        for flip in [false, true] {
            let mut options = vec![
                CandidateConfig { config: BakeConfig::splat(24, 2048), size_mb: 8.0, quality: 0.7 },
                CandidateConfig { config: BakeConfig::splat(24, 512), size_mb: 8.0, quality: 0.7 },
            ];
            if flip {
                options.reverse();
            }
            let problem = SelectionProblem {
                objects: vec![ObjectChoices {
                    object_id: 0,
                    name: "tie".into(),
                    options,
                    models: None,
                }],
                budget_mb: 40.0,
            };
            let outcome = DpSelector::default().select(&problem);
            assert_eq!(outcome.assignments[0].config, BakeConfig::splat(24, 512), "flip={flip}");
        }
    }

    /// Builds a pseudo-random 3-object, 4-option instance from an LCG seed.
    fn random_instance(seed: u64, budget: f64) -> SelectionProblem {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let objects: Vec<ObjectChoices> = (0..3)
            .map(|id| {
                let mut size = 5.0 + next() * 20.0;
                let mut quality = 0.4 + next() * 0.2;
                let options = (0..4)
                    .map(|k| {
                        size += 10.0 + next() * 30.0;
                        quality += next() * 0.12;
                        CandidateConfig {
                            config: BakeConfig::new(16 * (k + 1), 3 + 2 * k),
                            size_mb: size,
                            quality: quality.min(1.0),
                        }
                    })
                    .collect();
                ObjectChoices { object_id: id, name: format!("o{id}"), options, models: None }
            })
            .collect();
        SelectionProblem { objects, budget_mb: budget }
    }

    #[test]
    fn dp_is_optimal_and_budget_respecting_on_random_instances() {
        // Deterministic sweep standing in for a property test (the vendored
        // proptest shim lacks ProptestConfig, which the original used):
        // 8 budgets × 5 seeds of random 3-object, 4-option instances; DP
        // must match brute force on each.
        for (i, budget) in
            [30.0, 55.0, 80.0, 120.0, 170.0, 230.0, 310.0, 400.0].into_iter().enumerate()
        {
            for seed in 0..5u64 {
                let problem = random_instance(seed * 131 + i as u64, budget);
                let dp = DpSelector::default().select(&problem);
                let brute = ExhaustiveSelector::default().select(&problem);
                assert_eq!(dp.feasible, brute.feasible, "budget {budget} seed {seed}");
                if dp.feasible {
                    assert!(dp.total_size_mb <= budget + 1e-6, "budget {budget} seed {seed}");
                    // Quantisation to 1 MB may cost a sliver of quality
                    // relative to the unquantised brute force, never gain.
                    assert!(dp.total_quality <= brute.total_quality + 1e-9);
                    assert!(
                        dp.total_quality >= brute.total_quality - 0.15,
                        "budget {budget} seed {seed}: DP {} vs exhaustive {}",
                        dp.total_quality,
                        brute.total_quality
                    );
                }
            }
        }
    }
}
