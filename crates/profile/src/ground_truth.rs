//! Content-addressed cache of ray-marched object ground truths — a thin
//! typed wrapper over the generic [`nerflex_bake::KeyedStore`].
//!
//! Building an [`ObjectGroundTruth`] — sphere-tracing every probe view of an
//! object — is the dominant cost of profiling. The renders depend only on
//! the object's content and the probe settings, so they are cached exactly
//! like bakes: keyed by ([`nerflex_bake::model_fingerprint`], view count,
//! resolution), shared across threads, and optionally persisted through any
//! [`nerflex_bake::StoreBackend`] (one directory, or a local layer over a
//! shared remote — see `docs/stores.md`). Duplicate objects in a scene,
//! fleet re-deployments and repeated bench/CI runs then render each ground
//! truth **once** — fleet-wide, when machines share a remote.
//!
//! Renders are deterministic and bit-identical for every worker/tile/lane
//! count (see [`nerflex_scene::raymarch`]), so a cached ground truth —
//! in-memory, local or remote — yields measurements identical to a fresh
//! build.
//!
//! This module contributes only the entry codec: the
//! `{fingerprint:016x}-v{views}-r{resolution}.nfgt` file names and the
//! probe-image framing (unchanged from the pre-`KeyedStore` store — format
//! version [`GT_FORMAT_VERSION`] is not bumped, existing `.nfgt` files
//! load). Only the probe images are persisted (exact `f32` bit patterns);
//! the probe scene and camera poses are recomputed from the model on load,
//! which is cheap and deterministic — that is why decoding takes the model
//! and settings as [`nerflex_bake::EntryCodec::decode`] context. Lazy
//! indexing, flushing, pruning, corruption tolerance and read-only mode are
//! the shared store machinery.

use crate::measurement::{MeasurementSettings, ObjectGroundTruth};
use nerflex_bake::model_fingerprint;
use nerflex_bake::store::{EntryCodec, KeyedStore, StoreOptions};
use nerflex_image::{Color, Image};
use nerflex_scene::object::ObjectModel;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Version of the on-disk ground-truth entry format. Bump on ANY layout
/// change **and on any change to what the renderer produces** — shading
/// constants, probe-rig geometry (`ObjectGroundTruth::probe_rig`), sphere-
/// tracing parameters. Persisted entries capture renderer *output*, so a
/// behavior change without a bump lets a long-lived local store decode
/// cleanly and serve stale images, silently skewing every measurement
/// scored against them (CI is protected by its source-hash cache key;
/// developer stores are only protected by this constant). Readers reject
/// foreign versions (entries are a cache — a re-render is always correct).
pub const GT_FORMAT_VERSION: u32 = 1;

/// Magic bytes identifying a ground-truth entry file.
pub const GT_MAGIC: [u8; 4] = *b"NFGT";

/// File extension used for ground-truth entry files.
pub const GT_EXTENSION: &str = "nfgt";

/// Cache key: (object content fingerprint, probe views, probe resolution).
type GtKey = (u64, usize, usize);

/// File name for an entry (`{fingerprint:016x}-v{views}-r{res}.nfgt`).
fn entry_file_name(key: GtKey) -> String {
    format!("{:016x}-v{}-r{}.{GT_EXTENSION}", key.0, key.1, key.2)
}

/// Parses an entry file name back into its key (`None` for foreign files).
fn parse_entry_file_name(name: &str) -> Option<GtKey> {
    let stem = name.strip_suffix(&format!(".{GT_EXTENSION}"))?;
    let mut parts = stem.split('-');
    let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
    let views = parts.next()?.strip_prefix('v')?.parse().ok()?;
    let resolution = parts.next()?.strip_prefix('r')?.parse().ok()?;
    parts.next().is_none().then_some((fingerprint, views, resolution))
}

/// FNV-1a over a byte slice (the same stable hash the bake store uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes the probe images of one entry.
fn encode_entry(key: GtKey, images: &[Image]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&GT_MAGIC);
    out.extend_from_slice(&GT_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.0.to_le_bytes());
    out.extend_from_slice(&(key.1 as u32).to_le_bytes());
    out.extend_from_slice(&(key.2 as u32).to_le_bytes());
    for image in images {
        out.extend_from_slice(&(image.width() as u32).to_le_bytes());
        out.extend_from_slice(&(image.height() as u32).to_le_bytes());
        for y in 0..image.height() {
            for x in 0..image.width() {
                let c = image.get(x, y);
                out.extend_from_slice(&c.r.to_bits().to_le_bytes());
                out.extend_from_slice(&c.g.to_bits().to_le_bytes());
                out.extend_from_slice(&c.b.to_bits().to_le_bytes());
            }
        }
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes an entry file, returning the probe images. Total: any
/// truncation, bad magic, version/key mismatch or checksum failure yields
/// `None` (the entry re-renders).
fn decode_entry(bytes: &[u8], expect: GtKey) -> Option<Vec<Image>> {
    if bytes.len() < GT_MAGIC.len() + 4 + 8 + 4 + 4 + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if fnv1a(body) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut cursor = body;
    let mut take = |n: usize| -> Option<&[u8]> {
        if cursor.len() < n {
            return None;
        }
        let (head, rest) = cursor.split_at(n);
        cursor = rest;
        Some(head)
    };
    if take(4)? != GT_MAGIC {
        return None;
    }
    if u32::from_le_bytes(take(4)?.try_into().ok()?) != GT_FORMAT_VERSION {
        return None;
    }
    let fingerprint = u64::from_le_bytes(take(8)?.try_into().ok()?);
    let views = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    let resolution = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    if (fingerprint, views, resolution) != expect {
        return None;
    }
    let mut images = Vec::with_capacity(views);
    for _ in 0..views {
        let width = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let height = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        if width == 0 || height == 0 || width > 1 << 16 || height > 1 << 16 {
            return None;
        }
        let texels = take(width * height * 12)?;
        let mut image = Image::new(width, height, Color::BLACK);
        for y in 0..height {
            for x in 0..width {
                let at = (y * width + x) * 12;
                let channel = |o: usize| -> Option<f32> {
                    let raw = texels.get(at + o..at + o + 4)?;
                    Some(f32::from_bits(u32::from_le_bytes(raw.try_into().ok()?)))
                };
                image.set(x, y, Color::new(channel(0)?, channel(4)?, channel(8)?));
            }
        }
        images.push(image);
    }
    cursor.is_empty().then_some(images)
}

/// The ground-truth store's [`EntryCodec`]. Decoding reconstructs the full
/// [`ObjectGroundTruth`] (probe rig + images), which needs the model and
/// settings — they travel as the codec's decode context, supplied by the
/// lookup that triggered the decode.
#[derive(Debug)]
pub struct GtEntryCodec;

impl EntryCodec for GtEntryCodec {
    type Key = GtKey;
    type Value = ObjectGroundTruth;
    type Context<'a> = (&'a ObjectModel, &'a MeasurementSettings);
    const EXTENSION: &'static str = GT_EXTENSION;

    fn file_name(key: &GtKey) -> String {
        entry_file_name(*key)
    }

    fn parse_file_name(name: &str) -> Option<GtKey> {
        parse_entry_file_name(name)
    }

    fn encode(key: &GtKey, ground_truth: &ObjectGroundTruth) -> Vec<u8> {
        encode_entry(*key, &ground_truth.images)
    }

    fn decode(
        key: &GtKey,
        bytes: &[u8],
        (model, settings): (&ObjectModel, &MeasurementSettings),
    ) -> Option<Arc<ObjectGroundTruth>> {
        let images = decode_entry(bytes, *key)?;
        ObjectGroundTruth::from_images(model, settings, images).map(Arc::new)
    }
}

/// Hit/miss/build counters of a [`GroundTruthCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroundTruthStats {
    /// Lookups answered by a ground truth built in this process.
    pub hits: usize,
    /// Lookups answered by an entry decoded from the persistent store
    /// (cross-process reuse).
    pub disk_hits: usize,
    /// Lookups that had to render.
    pub misses: usize,
    /// Ground truths rendered by this process (`== misses`, kept separate
    /// for reporting symmetry).
    pub builds: usize,
    /// Lookups that waited on another lookup's in-flight render of the same
    /// ground truth instead of duplicating it (0 unless the cache was
    /// opened with `StoreOptions::coalesce` — the deployment service does).
    pub coalesced: usize,
    /// Distinct ground truths currently held in memory or indexed on disk.
    pub entries: usize,
    /// Entries indexed from the store directory when the cache was opened
    /// (decoded lazily on first lookup; 0 for in-memory caches).
    pub indexed_from_disk: usize,
    /// Remote operations attempted by a shared backend (0 otherwise).
    pub remote_ops: usize,
    /// Remote operations that failed after exhausting their retry budget.
    pub remote_errors: usize,
    /// Transient remote errors that were retried.
    pub retries: usize,
    /// Remote operations skipped because the remote was degraded.
    pub degraded_ops: usize,
}

/// A thread-safe, content-addressed store of object ground truths, shared by
/// every profiling call of a pipeline run (and, when opened over a
/// persistent backend, across processes and machines).
#[derive(Debug, Default)]
pub struct GroundTruthCache {
    store: KeyedStore<GtEntryCodec>,
}

impl GroundTruthCache {
    /// Creates an empty in-memory cache (no persistence;
    /// [`GroundTruthCache::flush`] is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a cache as the [`StoreOptions`] direct — a plain path opens the
    /// classic single-directory store; [`StoreOptions::shared`] layers a
    /// local directory over a fleet-shared remote; limits and read-only
    /// mode ride on the same builder.
    ///
    /// Opening indexes the entry files already present **by file name
    /// only** — an entry is read and decoded on its first lookup, so
    /// opening a large accumulated store is O(listing), not O(store size).
    /// GT entries are ~12 bytes/texel and grow with the probe resolution,
    /// so bounding this store via [`StoreOptions::with_limits`] matters
    /// even more than for the bake store; a pruned entry costs exactly one
    /// re-render on its next miss.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the backing store cannot be
    /// created or listed. Damaged entry files are not detected here
    /// (decoding is lazy); they cost one re-render at first lookup.
    pub fn open(options: impl Into<StoreOptions>) -> io::Result<Self> {
        Ok(Self { store: KeyedStore::open(options)? })
    }

    /// The primary local directory of a persistent cache (`None` when
    /// in-memory).
    pub fn dir(&self) -> Option<&Path> {
        self.store.options().primary_dir()
    }

    /// Current counters.
    pub fn stats(&self) -> GroundTruthStats {
        let stats = self.store.stats();
        GroundTruthStats {
            hits: stats.hits,
            disk_hits: stats.disk_hits,
            misses: stats.misses,
            builds: stats.misses,
            coalesced: stats.coalesced,
            entries: stats.entries,
            indexed_from_disk: stats.indexed,
            remote_ops: stats.remote_ops,
            remote_errors: stats.remote_errors,
            retries: stats.retries,
            degraded_ops: stats.degraded_ops,
        }
    }

    /// Total wall-clock time this cache spent rendering ground truths —
    /// the pipeline's `ground_truth_ms`. Exactly zero when every lookup was
    /// a hit.
    pub fn build_time(&self) -> Duration {
        self.store.build_time()
    }

    /// Returns the ground truth for `(model, settings)`, rendering and
    /// storing it on first request. An entry indexed from the persistent
    /// store is read and decoded here, on its first lookup — outside the
    /// entry lock, so other profiling workers keep making progress during
    /// long reads/builds.
    ///
    /// Concurrent misses on the same key may both render (the lock is not
    /// held across the render, deliberately — renders are long); the result
    /// is identical either way because rendering is deterministic, and only
    /// one copy is kept.
    pub fn get_or_build(
        &self,
        model: &ObjectModel,
        settings: &MeasurementSettings,
    ) -> Arc<ObjectGroundTruth> {
        let key = (model_fingerprint(model), settings.views, settings.resolution);
        self.store
            .get_or_build(key, (model, settings), || ObjectGroundTruth::build(model, settings))
    }

    /// Writes every ground truth rendered since the last flush to the
    /// backing store, returning how many entries were written (0 for
    /// in-memory or read-only caches). See
    /// [`nerflex_bake::KeyedStore::flush`] for the concurrency and
    /// atomicity guarantees.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered; entries flushed before the
    /// failure stay flushed.
    pub fn flush(&self) -> io::Result<usize> {
        self.store.flush()
    }

    /// Like [`GroundTruthCache::flush`], but attempts **every** dirty entry
    /// and collects per-entry failures instead of stopping at the first one.
    pub fn flush_report(&self) -> nerflex_bake::FlushReport {
        self.store.flush_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_bake::StoreLimits;
    use nerflex_scene::object::CanonicalObject;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_settings() -> MeasurementSettings {
        MeasurementSettings { views: 2, resolution: 24, ..MeasurementSettings::default() }
    }

    /// A unique, self-cleaning temporary directory.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            Self(std::env::temp_dir().join(format!(
                "nerflex-gt-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            )))
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn file_names_round_trip() {
        let key = (0x2f1c_66aa_0194_5f10, 3, 96);
        assert_eq!(parse_entry_file_name(&entry_file_name(key)), Some(key));
        assert_eq!(parse_entry_file_name("garbage.nfgt"), None);
        assert_eq!(parse_entry_file_name("0123-v3.nfgt"), None);
        assert_eq!(parse_entry_file_name("0123-v3-r96-x.nfgt"), None);
        assert_eq!(parse_entry_file_name("0123-v3-r96.other"), None);
    }

    #[test]
    fn codec_round_trips_exact_bits() {
        let key = (42, 2, 8);
        let images = vec![
            Image::from_fn(8, 8, |x, y| Color::new(x as f32 * 0.1, y as f32 * 0.2, 0.5)),
            Image::from_fn(8, 8, |x, y| Color::gray((x * y) as f32 / 49.0)),
        ];
        let bytes = encode_entry(key, &images);
        let decoded = decode_entry(&bytes, key).expect("round trip");
        assert_eq!(decoded, images);
        // Wrong key, truncation and bit flips are all rejected.
        assert!(decode_entry(&bytes, (43, 2, 8)).is_none());
        assert!(decode_entry(&bytes[..bytes.len() - 9], key).is_none());
        let mut flipped = bytes.clone();
        flipped[30] ^= 0x10;
        assert!(decode_entry(&flipped, key).is_none());
    }

    #[test]
    fn hits_share_one_build_and_identical_images() {
        let cache = GroundTruthCache::new();
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let first = cache.get_or_build(&model, &settings);
        let again = cache.get_or_build(&model, &settings);
        // A second independently generated copy of the same object is the
        // same content and therefore the same entry.
        let clone = cache.get_or_build(&CanonicalObject::Hotdog.build(), &settings);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.builds, stats.entries), (2, 1, 1, 1));
        assert!(Arc::ptr_eq(&first, &again) && Arc::ptr_eq(&first, &clone));
        assert!(cache.build_time() > Duration::ZERO);
        // Worker counts never affect the key (output bits are identical).
        let other = cache.get_or_build(&model, &settings.with_ground_truth_workers(4));
        assert!(Arc::ptr_eq(&first, &other), "worker count is not part of the key");
        let mut finer = settings;
        finer.resolution = 32;
        let _ = cache.get_or_build(&model, &finer);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn flush_and_reopen_turn_builds_into_disk_hits() {
        let tmp = TempDir::new("roundtrip");
        let model = CanonicalObject::Chair.build();
        let settings = quick_settings();

        let cache = GroundTruthCache::open(&tmp.0).expect("open");
        assert_eq!(cache.stats().indexed_from_disk, 0);
        let built = cache.get_or_build(&model, &settings);
        assert_eq!(cache.flush().expect("flush"), 1);
        assert_eq!(cache.flush().expect("clean flush"), 0);

        let reopened = GroundTruthCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().indexed_from_disk, 1);
        let loaded = reopened.get_or_build(&model, &settings);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (0, 1, 0));
        assert_eq!(reopened.build_time(), Duration::ZERO, "warm lookup renders nothing");
        // The persisted ground truth is bit-identical to the fresh build.
        assert_eq!(built.images, loaded.images);
        assert_eq!(built.poses.len(), loaded.poses.len());
    }

    #[test]
    fn damaged_entries_rebuild_and_repair() {
        let tmp = TempDir::new("damage");
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let cache = GroundTruthCache::open(&tmp.0).expect("open");
        let built = cache.get_or_build(&model, &settings);
        cache.flush().expect("flush");

        // Truncate the entry file; the reopened cache still indexes it but
        // the first lookup falls back to a fresh render.
        let key = (model_fingerprint(&model), settings.views, settings.resolution);
        let path = tmp.0.join(entry_file_name(key));
        let bytes = std::fs::read(&path).expect("read entry");
        std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");

        let reopened = GroundTruthCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().indexed_from_disk, 1);
        let rebuilt = reopened.get_or_build(&model, &settings);
        let stats = reopened.stats();
        assert_eq!((stats.disk_hits, stats.misses), (0, 1));
        assert_eq!(built.images, rebuilt.images, "re-render is bit-identical");
        // The next flush repairs the damaged file.
        assert_eq!(reopened.flush().expect("repair"), 1);
        let repaired = GroundTruthCache::open(&tmp.0).expect("open repaired");
        let _ = repaired.get_or_build(&model, &settings);
        assert_eq!(repaired.stats().disk_hits, 1);
    }

    #[test]
    fn limits_prune_and_evicted_entries_rerender() {
        let tmp = TempDir::new("limits");
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let cache = GroundTruthCache::open(&tmp.0).expect("open");
        let built = cache.get_or_build(&model, &settings);
        cache.flush().expect("flush");

        // A zero age budget sweeps the persisted ground truth on open; the
        // next lookup re-renders it bit-identically.
        let options = StoreOptions::dir(&tmp.0)
            .with_limits(StoreLimits::default().with_max_age(std::time::Duration::ZERO));
        let pruned = GroundTruthCache::open(options).expect("open");
        assert_eq!(pruned.stats().indexed_from_disk, 0, "expired entry must not index");
        let rebuilt = pruned.get_or_build(&model, &settings);
        assert_eq!(pruned.stats().misses, 1);
        assert_eq!(built.images, rebuilt.images);

        // A size budget large enough for the store keeps the entry.
        pruned.flush().expect("flush");
        let generous =
            StoreOptions::dir(&tmp.0).with_limits(StoreLimits::default().with_max_bytes(u64::MAX));
        let kept = GroundTruthCache::open(generous).expect("open");
        assert_eq!(kept.stats().indexed_from_disk, 1);
    }

    #[test]
    fn shared_store_serves_a_cold_local_dir_from_the_remote() {
        // Machine A renders against (local A, remote R); machine B with a
        // cold local dir sharing R re-renders nothing and reads identical
        // bits.
        let local_a = TempDir::new("shared-a");
        let local_b = TempDir::new("shared-b");
        let remote = TempDir::new("shared-remote");
        let model = CanonicalObject::Chair.build();
        let settings = quick_settings();

        let a =
            GroundTruthCache::open(StoreOptions::shared(&local_a.0, &remote.0)).expect("open A");
        let built = a.get_or_build(&model, &settings);
        a.flush().expect("flush A");

        let b =
            GroundTruthCache::open(StoreOptions::shared(&local_b.0, &remote.0)).expect("open B");
        assert_eq!(b.stats().indexed_from_disk, 1, "cold local layer indexes the remote");
        let loaded = b.get_or_build(&model, &settings);
        let stats = b.stats();
        assert_eq!((stats.disk_hits, stats.misses), (1, 0), "warm remote renders nothing");
        assert_eq!(b.build_time(), Duration::ZERO);
        assert_eq!(built.images, loaded.images, "remote round-trip is bit-identical");
    }

    #[test]
    fn in_memory_flush_is_a_noop() {
        let cache = GroundTruthCache::new();
        let _ = cache.get_or_build(&CanonicalObject::Hotdog.build(), &quick_settings());
        assert_eq!(cache.dir(), None);
        assert_eq!(cache.flush().expect("noop"), 0);
    }

    #[test]
    fn measurements_do_not_depend_on_the_ground_truth_source() {
        use crate::measurement::measure_object_in;
        use nerflex_bake::BakeConfig;

        let tmp = TempDir::new("measure");
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let configs = [BakeConfig::new(10, 3), BakeConfig::new(16, 5)];

        let direct = measure_object_in(&model, &configs, &settings, None, None);
        let cold = GroundTruthCache::open(&tmp.0).expect("open");
        let first = measure_object_in(&model, &configs, &settings, None, Some(&cold));
        cold.flush().expect("flush");
        let warm = GroundTruthCache::open(&tmp.0).expect("reopen");
        let second = measure_object_in(&model, &configs, &settings, None, Some(&warm));
        assert_eq!(direct, first);
        assert_eq!(first, second);
        assert_eq!(warm.stats().misses, 0, "warm run renders no ground truth");
    }
}
