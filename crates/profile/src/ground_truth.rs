//! Content-addressed cache of ray-marched object ground truths.
//!
//! Building an [`ObjectGroundTruth`] — sphere-tracing every probe view of an
//! object — is the dominant cost of profiling. The renders depend only on
//! the object's content and the probe settings, so they are cached exactly
//! like bakes: keyed by ([`nerflex_bake::model_fingerprint`], view count,
//! resolution), shared across threads, and optionally persisted to disk.
//! Duplicate objects in a scene, fleet re-deployments and repeated bench/CI
//! runs then render each ground truth **once**.
//!
//! Renders are deterministic and bit-identical for every worker/tile/lane
//! count (see [`nerflex_scene::raymarch`]), so a cached ground truth —
//! in-memory or reloaded from disk — yields measurements identical to a
//! fresh build.
//!
//! # On-disk format
//!
//! One file per entry under the store directory, named
//! `{fingerprint:016x}-v{views}-r{resolution}.nfgt`. Only the probe images
//! are persisted (exact `f32` bit patterns); the probe scene and camera
//! poses are recomputed from the model on load, which is cheap and
//! deterministic. Like the bake store, the directory is **indexed lazily**:
//! opening it only parses file names, and an entry is read and decoded on
//! its first lookup. Files are self-validating (magic, version, key echo,
//! FNV-1a checksum); a damaged or foreign-version file costs exactly one
//! re-render, never an error.

use crate::measurement::{MeasurementSettings, ObjectGroundTruth};
use nerflex_bake::model_fingerprint;
use nerflex_image::{Color, Image};
use nerflex_scene::object::ObjectModel;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Version of the on-disk ground-truth entry format. Bump on ANY layout
/// change **and on any change to what the renderer produces** — shading
/// constants, probe-rig geometry (`ObjectGroundTruth::probe_rig`), sphere-
/// tracing parameters. Persisted entries capture renderer *output*, so a
/// behavior change without a bump lets a long-lived local store decode
/// cleanly and serve stale images, silently skewing every measurement
/// scored against them (CI is protected by its source-hash cache key;
/// developer stores are only protected by this constant). Readers reject
/// foreign versions (entries are a cache — a re-render is always correct).
pub const GT_FORMAT_VERSION: u32 = 1;

/// Magic bytes identifying a ground-truth entry file.
pub const GT_MAGIC: [u8; 4] = *b"NFGT";

/// File extension used for ground-truth entry files.
pub const GT_EXTENSION: &str = "nfgt";

/// Cache key: (object content fingerprint, probe views, probe resolution).
type GtKey = (u64, usize, usize);

/// File name for an entry (`{fingerprint:016x}-v{views}-r{res}.nfgt`).
fn entry_file_name(key: GtKey) -> String {
    format!("{:016x}-v{}-r{}.{GT_EXTENSION}", key.0, key.1, key.2)
}

/// Parses an entry file name back into its key (`None` for foreign files).
fn parse_entry_file_name(name: &str) -> Option<GtKey> {
    let stem = name.strip_suffix(&format!(".{GT_EXTENSION}"))?;
    let mut parts = stem.split('-');
    let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
    let views = parts.next()?.strip_prefix('v')?.parse().ok()?;
    let resolution = parts.next()?.strip_prefix('r')?.parse().ok()?;
    parts.next().is_none().then_some((fingerprint, views, resolution))
}

/// FNV-1a over a byte slice (the same stable hash the bake store uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes the probe images of one entry.
fn encode_entry(key: GtKey, images: &[Image]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&GT_MAGIC);
    out.extend_from_slice(&GT_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.0.to_le_bytes());
    out.extend_from_slice(&(key.1 as u32).to_le_bytes());
    out.extend_from_slice(&(key.2 as u32).to_le_bytes());
    for image in images {
        out.extend_from_slice(&(image.width() as u32).to_le_bytes());
        out.extend_from_slice(&(image.height() as u32).to_le_bytes());
        for y in 0..image.height() {
            for x in 0..image.width() {
                let c = image.get(x, y);
                out.extend_from_slice(&c.r.to_bits().to_le_bytes());
                out.extend_from_slice(&c.g.to_bits().to_le_bytes());
                out.extend_from_slice(&c.b.to_bits().to_le_bytes());
            }
        }
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes an entry file, returning the probe images. Total: any
/// truncation, bad magic, version/key mismatch or checksum failure yields
/// `None` (the entry re-renders).
fn decode_entry(bytes: &[u8], expect: GtKey) -> Option<Vec<Image>> {
    if bytes.len() < GT_MAGIC.len() + 4 + 8 + 4 + 4 + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    if fnv1a(body) != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let mut cursor = body;
    let mut take = |n: usize| -> Option<&[u8]> {
        if cursor.len() < n {
            return None;
        }
        let (head, rest) = cursor.split_at(n);
        cursor = rest;
        Some(head)
    };
    if take(4)? != GT_MAGIC {
        return None;
    }
    if u32::from_le_bytes(take(4)?.try_into().ok()?) != GT_FORMAT_VERSION {
        return None;
    }
    let fingerprint = u64::from_le_bytes(take(8)?.try_into().ok()?);
    let views = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    let resolution = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
    if (fingerprint, views, resolution) != expect {
        return None;
    }
    let mut images = Vec::with_capacity(views);
    for _ in 0..views {
        let width = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let height = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        if width == 0 || height == 0 || width > 1 << 16 || height > 1 << 16 {
            return None;
        }
        let texels = take(width * height * 12)?;
        let mut image = Image::new(width, height, Color::BLACK);
        for y in 0..height {
            for x in 0..width {
                let at = (y * width + x) * 12;
                let channel = |o: usize| -> Option<f32> {
                    let raw = texels.get(at + o..at + o + 4)?;
                    Some(f32::from_bits(u32::from_le_bytes(raw.try_into().ok()?)))
                };
                image.set(x, y, Color::new(channel(0)?, channel(4)?, channel(8)?));
            }
        }
        images.push(image);
    }
    cursor.is_empty().then_some(images)
}

/// Hit/miss/build counters of a [`GroundTruthCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroundTruthStats {
    /// Lookups answered by a ground truth built in this process.
    pub hits: usize,
    /// Lookups answered by an entry decoded from the persistent store
    /// (cross-process reuse).
    pub disk_hits: usize,
    /// Lookups that had to render.
    pub misses: usize,
    /// Ground truths rendered by this process (`== misses`, kept separate
    /// for reporting symmetry).
    pub builds: usize,
    /// Distinct ground truths currently held in memory or indexed on disk.
    pub entries: usize,
    /// Entries indexed from the store directory when the cache was opened
    /// (decoded lazily on first lookup; 0 for in-memory caches).
    pub indexed_from_disk: usize,
}

/// One cached ground truth plus its persistence bookkeeping.
#[derive(Debug)]
enum GtEntry {
    /// Decoded and ready; `dirty` entries are written by the next flush.
    Memory { ground_truth: Arc<ObjectGroundTruth>, from_disk: bool, dirty: bool },
    /// Indexed from the store directory, decoded on first lookup.
    OnDisk(PathBuf),
}

/// A thread-safe, content-addressed store of object ground truths, shared by
/// every profiling call of a pipeline run (and, when opened from a
/// directory, across processes).
#[derive(Debug, Default)]
pub struct GroundTruthCache {
    entries: Mutex<HashMap<GtKey, GtEntry>>,
    hits: AtomicUsize,
    disk_hits: AtomicUsize,
    misses: AtomicUsize,
    /// Total wall-clock time spent rendering ground truths (misses only —
    /// the pipeline reports it as `ground_truth_ms`; near zero on warm runs).
    build_time: Mutex<Duration>,
    /// Backing directory for [`GroundTruthCache::flush`]; `None` in-memory.
    dir: Option<PathBuf>,
    /// Entries indexed from `dir` when the cache was opened.
    indexed: usize,
}

impl GroundTruthCache {
    /// Creates an empty in-memory cache (no persistence;
    /// [`GroundTruthCache::flush`] is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a persistent cache backed by `dir`, creating the directory when
    /// missing and indexing the entry files already present **by file name
    /// only** — an entry is read and decoded on its first lookup, so opening
    /// a large accumulated store is O(directory listing), not O(store size).
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created or
    /// listed. Damaged entry files are not detected here (decoding is lazy);
    /// they cost one re-render at first lookup.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_limits(dir, &nerflex_bake::StoreLimits::default())
    }

    /// [`GroundTruthCache::open`] with retention limits: the directory is
    /// swept by [`nerflex_bake::disk::prune_store`] before indexing (age
    /// sweep, then oldest-first eviction down to the size budget). GT
    /// entries are ~12 bytes/texel and grow with the probe resolution, so
    /// bounding this store matters even more than the bake store; a pruned
    /// entry costs exactly one re-render on its next miss.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created or
    /// listed.
    pub fn open_with_limits(
        dir: impl AsRef<Path>,
        limits: &nerflex_bake::StoreLimits,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        nerflex_bake::disk::prune_store(&dir, GT_EXTENSION, limits)?;
        let mut entries = HashMap::new();
        for file in std::fs::read_dir(&dir)? {
            let path = file?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // Sweep temporaries orphaned by a crash between write and rename.
            if name.contains(&format!(".{GT_EXTENSION}.tmp-")) {
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if let Some(key) = parse_entry_file_name(name) {
                entries.insert(key, GtEntry::OnDisk(path));
            }
        }
        let indexed = entries.len();
        Ok(Self { entries: Mutex::new(entries), dir: Some(dir), indexed, ..Self::default() })
    }

    /// The backing directory of a persistent cache (`None` when in-memory).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Current counters.
    pub fn stats(&self) -> GroundTruthStats {
        let misses = self.misses.load(Ordering::Relaxed);
        GroundTruthStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses,
            builds: misses,
            entries: self.entries.lock().expect("cache poisoned").len(),
            indexed_from_disk: self.indexed,
        }
    }

    /// Total wall-clock time this cache spent rendering ground truths —
    /// the pipeline's `ground_truth_ms`. Exactly zero when every lookup was
    /// a hit.
    pub fn build_time(&self) -> Duration {
        *self.build_time.lock().expect("cache poisoned")
    }

    /// Returns the ground truth for `(model, settings)`, rendering and
    /// storing it on first request.
    ///
    /// Concurrent misses on the same key may both render (the lock is not
    /// held across the render, deliberately — renders are long); the result
    /// is identical either way because rendering is deterministic, and only
    /// one copy is kept.
    pub fn get_or_build(
        &self,
        model: &ObjectModel,
        settings: &MeasurementSettings,
    ) -> Arc<ObjectGroundTruth> {
        let key = (model_fingerprint(model), settings.views, settings.resolution);
        let pending_path = {
            let entries = self.entries.lock().expect("cache poisoned");
            match entries.get(&key) {
                Some(GtEntry::Memory { ground_truth, from_disk, .. }) => {
                    let counter = if *from_disk { &self.disk_hits } else { &self.hits };
                    counter.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(ground_truth);
                }
                Some(GtEntry::OnDisk(path)) => Some(path.clone()),
                None => None,
            }
        };

        // Decode (or render) outside the lock so other profiling workers
        // keep making progress during long reads/builds.
        if let Some(path) = pending_path {
            if let Some(ground_truth) = std::fs::read(&path)
                .ok()
                .and_then(|bytes| decode_entry(&bytes, key))
                .and_then(|images| ObjectGroundTruth::from_images(model, settings, images))
            {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let ground_truth = Arc::new(ground_truth);
                let mut entries = self.entries.lock().expect("cache poisoned");
                match entries.get(&key) {
                    // A concurrent lookup decoded (or rebuilt) it first —
                    // keep that copy, the content is identical either way.
                    Some(GtEntry::Memory { ground_truth, .. }) => {
                        return Arc::clone(ground_truth);
                    }
                    _ => {
                        entries.insert(
                            key,
                            GtEntry::Memory {
                                ground_truth: Arc::clone(&ground_truth),
                                from_disk: true,
                                dirty: false,
                            },
                        );
                        return ground_truth;
                    }
                }
            }
            // Damaged entry: fall through to a fresh render (and overwrite
            // the file on the next flush).
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let ground_truth = Arc::new(ObjectGroundTruth::build(model, settings));
        *self.build_time.lock().expect("cache poisoned") += started.elapsed();
        let mut entries = self.entries.lock().expect("cache poisoned");
        match entries.get(&key) {
            // A concurrent lookup finished first — keep its copy (identical
            // content) so every caller shares one allocation and a clean
            // disk-loaded entry is not re-marked dirty.
            Some(GtEntry::Memory { ground_truth, .. }) => Arc::clone(ground_truth),
            _ => {
                entries.insert(
                    key,
                    GtEntry::Memory {
                        ground_truth: Arc::clone(&ground_truth),
                        from_disk: false,
                        dirty: true,
                    },
                );
                ground_truth
            }
        }
    }

    /// Writes every ground truth rendered since the last flush to the
    /// backing directory, returning how many files were written (0 for
    /// in-memory caches). The dirty entries are snapshotted first and the
    /// files written **outside the entry lock**, so concurrent profiling
    /// proceeds during large flushes; each file is written to a
    /// process-unique temporary name and renamed into place.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered; entries flushed before the
    /// failure stay flushed.
    pub fn flush(&self) -> io::Result<usize> {
        let Some(dir) = &self.dir else { return Ok(0) };
        let dirty: Vec<(GtKey, Arc<ObjectGroundTruth>)> = {
            let entries = self.entries.lock().expect("cache poisoned");
            entries
                .iter()
                .filter_map(|(&key, entry)| match entry {
                    GtEntry::Memory { ground_truth, dirty: true, .. } => {
                        Some((key, Arc::clone(ground_truth)))
                    }
                    _ => None,
                })
                .collect()
        };
        // Unique per flush call (not just per process): concurrent flushes
        // of one entry must never share a temporary file.
        static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
        let mut written = Vec::with_capacity(dirty.len());
        let mut failure = None;
        for (key, ground_truth) in dirty {
            let bytes = encode_entry(key, &ground_truth.images);
            let path = dir.join(entry_file_name(key));
            let tmp = dir.join(format!(
                "{}.tmp-{}-{}",
                entry_file_name(key),
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
            match result {
                Ok(()) => written.push(key),
                Err(err) => {
                    let _ = std::fs::remove_file(&tmp);
                    failure = Some(err);
                    break;
                }
            }
        }
        let mut entries = self.entries.lock().expect("cache poisoned");
        for key in &written {
            if let Some(GtEntry::Memory { dirty, .. }) = entries.get_mut(key) {
                *dirty = false;
            }
        }
        match failure {
            Some(err) => Err(err),
            None => Ok(written.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;

    fn quick_settings() -> MeasurementSettings {
        MeasurementSettings {
            views: 2,
            resolution: 24,
            worker_threads: 1,
            ground_truth_workers: 1,
            metrics_workers: 1,
        }
    }

    /// A unique, self-cleaning temporary directory.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            Self(std::env::temp_dir().join(format!(
                "nerflex-gt-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            )))
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn file_names_round_trip() {
        let key = (0x2f1c_66aa_0194_5f10, 3, 96);
        assert_eq!(parse_entry_file_name(&entry_file_name(key)), Some(key));
        assert_eq!(parse_entry_file_name("garbage.nfgt"), None);
        assert_eq!(parse_entry_file_name("0123-v3.nfgt"), None);
        assert_eq!(parse_entry_file_name("0123-v3-r96-x.nfgt"), None);
        assert_eq!(parse_entry_file_name("0123-v3-r96.other"), None);
    }

    #[test]
    fn codec_round_trips_exact_bits() {
        let key = (42, 2, 8);
        let images = vec![
            Image::from_fn(8, 8, |x, y| Color::new(x as f32 * 0.1, y as f32 * 0.2, 0.5)),
            Image::from_fn(8, 8, |x, y| Color::gray((x * y) as f32 / 49.0)),
        ];
        let bytes = encode_entry(key, &images);
        let decoded = decode_entry(&bytes, key).expect("round trip");
        assert_eq!(decoded, images);
        // Wrong key, truncation and bit flips are all rejected.
        assert!(decode_entry(&bytes, (43, 2, 8)).is_none());
        assert!(decode_entry(&bytes[..bytes.len() - 9], key).is_none());
        let mut flipped = bytes.clone();
        flipped[30] ^= 0x10;
        assert!(decode_entry(&flipped, key).is_none());
    }

    #[test]
    fn hits_share_one_build_and_identical_images() {
        let cache = GroundTruthCache::new();
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let first = cache.get_or_build(&model, &settings);
        let again = cache.get_or_build(&model, &settings);
        // A second independently generated copy of the same object is the
        // same content and therefore the same entry.
        let clone = cache.get_or_build(&CanonicalObject::Hotdog.build(), &settings);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.builds, stats.entries), (2, 1, 1, 1));
        assert!(Arc::ptr_eq(&first, &again) && Arc::ptr_eq(&first, &clone));
        assert!(cache.build_time() > Duration::ZERO);
        // Worker counts never affect the key (output bits are identical).
        let other = cache.get_or_build(&model, &settings.with_ground_truth_workers(4));
        assert!(Arc::ptr_eq(&first, &other), "worker count is not part of the key");
        let mut finer = settings;
        finer.resolution = 32;
        let _ = cache.get_or_build(&model, &finer);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn flush_and_reopen_turn_builds_into_disk_hits() {
        let tmp = TempDir::new("roundtrip");
        let model = CanonicalObject::Chair.build();
        let settings = quick_settings();

        let cache = GroundTruthCache::open(&tmp.0).expect("open");
        assert_eq!(cache.stats().indexed_from_disk, 0);
        let built = cache.get_or_build(&model, &settings);
        assert_eq!(cache.flush().expect("flush"), 1);
        assert_eq!(cache.flush().expect("clean flush"), 0);

        let reopened = GroundTruthCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().indexed_from_disk, 1);
        let loaded = reopened.get_or_build(&model, &settings);
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.disk_hits, stats.misses), (0, 1, 0));
        assert_eq!(reopened.build_time(), Duration::ZERO, "warm lookup renders nothing");
        // The persisted ground truth is bit-identical to the fresh build.
        assert_eq!(built.images, loaded.images);
        assert_eq!(built.poses.len(), loaded.poses.len());
    }

    #[test]
    fn damaged_entries_rebuild_and_repair() {
        let tmp = TempDir::new("damage");
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let cache = GroundTruthCache::open(&tmp.0).expect("open");
        let built = cache.get_or_build(&model, &settings);
        cache.flush().expect("flush");

        // Truncate the entry file; the reopened cache still indexes it but
        // the first lookup falls back to a fresh render.
        let key = (model_fingerprint(&model), settings.views, settings.resolution);
        let path = tmp.0.join(entry_file_name(key));
        let bytes = std::fs::read(&path).expect("read entry");
        std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");

        let reopened = GroundTruthCache::open(&tmp.0).expect("reopen");
        assert_eq!(reopened.stats().indexed_from_disk, 1);
        let rebuilt = reopened.get_or_build(&model, &settings);
        let stats = reopened.stats();
        assert_eq!((stats.disk_hits, stats.misses), (0, 1));
        assert_eq!(built.images, rebuilt.images, "re-render is bit-identical");
        // The next flush repairs the damaged file.
        assert_eq!(reopened.flush().expect("repair"), 1);
        let repaired = GroundTruthCache::open(&tmp.0).expect("open repaired");
        let _ = repaired.get_or_build(&model, &settings);
        assert_eq!(repaired.stats().disk_hits, 1);
    }

    #[test]
    fn open_with_limits_prunes_and_rerenders_evicted_entries() {
        let tmp = TempDir::new("limits");
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let cache = GroundTruthCache::open(&tmp.0).expect("open");
        let built = cache.get_or_build(&model, &settings);
        cache.flush().expect("flush");

        // A zero age budget sweeps the persisted ground truth on open; the
        // next lookup re-renders it bit-identically.
        let limits = nerflex_bake::StoreLimits::default().with_max_age(std::time::Duration::ZERO);
        let pruned = GroundTruthCache::open_with_limits(&tmp.0, &limits).expect("open");
        assert_eq!(pruned.stats().indexed_from_disk, 0, "expired entry must not index");
        let rebuilt = pruned.get_or_build(&model, &settings);
        assert_eq!(pruned.stats().misses, 1);
        assert_eq!(built.images, rebuilt.images);

        // A size budget large enough for the store keeps the entry.
        pruned.flush().expect("flush");
        let generous = nerflex_bake::StoreLimits::default().with_max_bytes(u64::MAX);
        let kept = GroundTruthCache::open_with_limits(&tmp.0, &generous).expect("open");
        assert_eq!(kept.stats().indexed_from_disk, 1);
    }

    #[test]
    fn in_memory_flush_is_a_noop() {
        let cache = GroundTruthCache::new();
        let _ = cache.get_or_build(&CanonicalObject::Hotdog.build(), &quick_settings());
        assert_eq!(cache.dir(), None);
        assert_eq!(cache.flush().expect("noop"), 0);
    }

    #[test]
    fn measurements_do_not_depend_on_the_ground_truth_source() {
        use crate::measurement::measure_object_in;
        use nerflex_bake::BakeConfig;

        let tmp = TempDir::new("measure");
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let configs = [BakeConfig::new(10, 3), BakeConfig::new(16, 5)];

        let direct = measure_object_in(&model, &configs, &settings, None, None);
        let cold = GroundTruthCache::open(&tmp.0).expect("open");
        let first = measure_object_in(&model, &configs, &settings, None, Some(&cold));
        cold.flush().expect("flush");
        let warm = GroundTruthCache::open(&tmp.0).expect("reopen");
        let second = measure_object_in(&model, &configs, &settings, None, Some(&warm));
        assert_eq!(direct, first);
        assert_eq!(first, second);
        assert_eq!(warm.stats().misses, 0, "warm run renders no ground truth");
    }
}
