//! Profiler error analysis.
//!
//! The paper validates its profiling models by comparing predictions against
//! ground truth on four objects × 45 configuration pairs, reporting a mean
//! quality (SSIM) error of 0.0065 (σ = 0.0088) and a mean size error of
//! 3.34 MB (σ = 2.73). This module reproduces that analysis for our
//! simulator: it measures a held-out grid of configurations and summarises
//! the absolute prediction errors.

use crate::measurement::{measure_object, MeasurementSettings};
use crate::profiler::ObjectProfile;
use nerflex_bake::BakeConfig;
use nerflex_math::stats::Summary;
use nerflex_scene::object::ObjectModel;
use serde::{Deserialize, Serialize};

/// Summary of a profiler's prediction errors over a configuration grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorAnalysis {
    /// Object name the analysis refers to.
    pub name: String,
    /// Number of configuration pairs evaluated.
    pub configurations: usize,
    /// Mean absolute SSIM prediction error.
    pub quality_error_mean: f64,
    /// Standard deviation of the SSIM prediction error.
    pub quality_error_std: f64,
    /// Mean absolute size prediction error (MB).
    pub size_error_mean: f64,
    /// Standard deviation of the size prediction error (MB).
    pub size_error_std: f64,
}

/// Evaluates a fitted profile on a held-out grid of configurations.
///
/// # Panics
///
/// Panics when `configs` is empty.
pub fn analyze_errors(
    model: &ObjectModel,
    profile: &ObjectProfile,
    configs: &[BakeConfig],
    settings: &MeasurementSettings,
) -> ErrorAnalysis {
    assert!(!configs.is_empty(), "need at least one held-out configuration");
    let measurements = measure_object(model, configs, settings);
    let quality_errors: Vec<f64> = measurements
        .iter()
        .map(|m| (profile.predict_quality(m.config.grid, m.config.patch) - m.ssim).abs())
        .collect();
    let size_errors: Vec<f64> = measurements
        .iter()
        .map(|m| (profile.predict_size(m.config.grid, m.config.patch) - m.size_mb).abs())
        .collect();
    let q = Summary::of(&quality_errors);
    let s = Summary::of(&size_errors);
    ErrorAnalysis {
        name: profile.name.clone(),
        configurations: configs.len(),
        quality_error_mean: q.mean,
        quality_error_std: q.std_dev,
        size_error_mean: s.mean,
        size_error_std: s.std_dev,
    }
}

/// A uniform grid of held-out configurations (`g_steps × p_steps` pairs) over
/// the given range, used by the Fig. 3 / error-analysis benchmarks.
pub fn holdout_grid(
    g_min: u32,
    g_max: u32,
    p_min: u32,
    p_max: u32,
    g_steps: u32,
    p_steps: u32,
) -> Vec<BakeConfig> {
    assert!(g_steps >= 2 && p_steps >= 2, "need at least two steps per axis");
    let mut out = Vec::new();
    for gi in 0..g_steps {
        for pi in 0..p_steps {
            let g = g_min + (g_max - g_min) * gi / (g_steps - 1);
            let p = p_min + (p_max - p_min) * pi / (p_steps - 1);
            out.push(BakeConfig::new(g.max(1), p.max(1)));
        }
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{build_profile, ProfilerOptions};
    use nerflex_scene::object::CanonicalObject;

    #[test]
    fn holdout_grid_spans_the_range() {
        let grid = holdout_grid(16, 128, 3, 45, 3, 3);
        assert_eq!(grid.len(), 9);
        assert!(grid.contains(&BakeConfig::new(16, 3)));
        assert!(grid.contains(&BakeConfig::new(128, 45)));
        assert!(grid.contains(&BakeConfig::new(72, 24)));
    }

    #[test]
    fn profile_errors_are_small_on_heldout_configs() {
        // Mirror of the paper's error analysis at reduced scale: fit on the
        // variable-step samples, evaluate on configurations never sampled.
        let model = CanonicalObject::Hotdog.build();
        let options = ProfilerOptions::quick();
        let profile = build_profile(&model, 0, &options);
        let holdout = vec![BakeConfig::new(14, 7), BakeConfig::new(28, 5), BakeConfig::new(34, 7)];
        let analysis = analyze_errors(&model, &profile, &holdout, &options.measurement);
        assert_eq!(analysis.configurations, 3);
        assert!(
            analysis.quality_error_mean < 0.08,
            "quality error too large: {}",
            analysis.quality_error_mean
        );
        assert!(
            analysis.size_error_mean < 4.0,
            "size error too large: {} MB",
            analysis.size_error_mean
        );
        assert!(analysis.quality_error_std >= 0.0 && analysis.size_error_std >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one held-out configuration")]
    fn empty_holdout_panics() {
        let model = CanonicalObject::Hotdog.build();
        let profile = build_profile(&model, 0, &ProfilerOptions::quick());
        let _ = analyze_errors(&model, &profile, &[], &MeasurementSettings::default());
    }

    #[test]
    #[should_panic(expected = "two steps")]
    fn degenerate_grid_panics() {
        let _ = holdout_grid(16, 128, 3, 45, 1, 3);
    }
}
