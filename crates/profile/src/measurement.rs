//! Ground-truth measurement of sample configurations.
//!
//! For each sample configuration the object is actually baked and rendered,
//! and its baked-data size and SSIM against the object's ground-truth views
//! are recorded. This replaces the paper's (much more expensive) NeRF
//! training runs for the sample points; the profiler then fits its
//! closed-form models to these measurements.

use nerflex_bake::{bake_object, BakeCache, BakeConfig, BakedAsset};
use nerflex_image::{metrics, Image, MetricsScratch};
use nerflex_math::{LaneWidth, WorkerPool};
use nerflex_render::{render_assets, RenderOptions};
use nerflex_scene::camera_path::{orbit_path, CameraPose};
use nerflex_scene::object::ObjectModel;
use nerflex_scene::scene::Scene;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One measured sample point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The configuration that was baked.
    pub config: BakeConfig,
    /// Measured baked-data size in MB.
    pub size_mb: f64,
    /// Measured SSIM against the ground-truth views.
    pub ssim: f64,
    /// Device-side primitive count — mesh quads plus splats
    /// (geometric-complexity measure).
    pub quad_count: usize,
}

/// How measurements are taken (probe view count, resolution, and how many
/// worker threads fan out over the sample configurations and over the
/// ground-truth render tiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasurementSettings {
    /// Number of probe views on the measurement orbit.
    pub views: usize,
    /// Probe image resolution (square).
    pub resolution: usize,
    /// Worker threads measuring sample configurations in parallel: the
    /// per-object samples are independent measurements against one shared
    /// ground truth, so they fan out over the bake worker pool. `1`
    /// (the default) is the bit-for-bit sequential path; `0` uses one
    /// worker per available core.
    pub worker_threads: usize,
    /// Worker threads for the tiled ray-marched ground-truth renders
    /// ([`nerflex_scene::raymarch::render_view_parallel`]). The rendered
    /// images are bit-identical for every value; `1` (the default) is the
    /// sequential path, `0` uses one worker per available core.
    pub ground_truth_workers: usize,
    /// Worker threads for the fused quality-metrics evaluation
    /// ([`nerflex_image::metrics::quality_metrics_parallel`]) that scores a
    /// sample render against the ground truth. The metric values are
    /// bit-identical for every value; `1` (the default) is the sequential
    /// path, `0` uses one worker per available core.
    pub metrics_workers: usize,
    /// SIMD lane width of the ground-truth ray marching and the fused
    /// metrics band kernel. Output bits never change with the lane width
    /// (see `docs/determinism.md`), so this is purely a throughput knob.
    pub lane_width: LaneWidth,
    /// How the (configuration × probe view) evaluation grid is scheduled
    /// over the worker pool. Both modes are bit-identical; see
    /// [`DispatchMode`].
    pub dispatch: DispatchMode,
}

impl Default for MeasurementSettings {
    fn default() -> Self {
        Self {
            views: 3,
            resolution: 96,
            worker_threads: 1,
            ground_truth_workers: 1,
            metrics_workers: 1,
            lane_width: LaneWidth::X4,
            dispatch: DispatchMode::Batched,
        }
    }
}

/// How a profile's (configuration × probe view) evaluation grid is
/// scheduled over the persistent worker pool.
///
/// Both modes produce bit-identical measurements: the batched grid scores
/// each (configuration, view) pair with the same fused metrics engine and
/// folds the per-view scores in view order — the same floating-point
/// association as the per-sample loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchMode {
    /// One pool dispatch per profile *stage*, one job per sample
    /// configuration; each job renders and scores its probe views in a
    /// local loop (the pre-batching reference path).
    PerSample,
    /// Whole-profile batching: one dispatch bakes every configuration,
    /// then a single dispatch fans the flattened (configuration × view)
    /// grid with persistent per-worker scratch (framebuffers and metrics
    /// buffers reused across jobs). Fewer dispatches, fewer allocations,
    /// same bits.
    #[default]
    Batched,
}

impl MeasurementSettings {
    /// Returns the settings with the given sample-measurement worker count
    /// (`0` = one per core, `1` = sequential).
    pub fn with_worker_threads(mut self, workers: usize) -> Self {
        self.worker_threads = workers;
        self
    }

    /// Returns the settings with the given ground-truth render worker count
    /// (`0` = one per core, `1` = sequential; output bits never change).
    pub fn with_ground_truth_workers(mut self, workers: usize) -> Self {
        self.ground_truth_workers = workers;
        self
    }

    /// Returns the settings with the given metrics worker count (`0` = one
    /// per core, `1` = sequential; metric values never change).
    pub fn with_metrics_workers(mut self, workers: usize) -> Self {
        self.metrics_workers = workers;
        self
    }

    /// Returns the settings with the given SIMD lane width (output bits
    /// never change).
    pub fn with_lane_width(mut self, lane_width: LaneWidth) -> Self {
        self.lane_width = lane_width;
        self
    }

    /// Returns the settings with the given evaluation-grid dispatch mode
    /// (both modes are bit-identical).
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }
}

/// Shared accounting of the quality-metrics stage: how long the fused SSIM
/// evaluations took across every sample measurement, and how many image
/// pairs were scored. One instance is threaded through a profiling run (it
/// is `Sync`; the parallel sample workers all record into it) and surfaces
/// as `StageTimings::metrics` / fig9's `metrics_ms`.
///
/// The recorded time is the **sum of per-evaluation wall times** — the
/// serial-equivalent cost of the stage, like `StageTimings::profiling_serial`
/// — not the stage's wall clock: concurrent sample workers score in
/// parallel, so the sum can exceed elapsed time.
#[derive(Debug, Default)]
pub struct MetricsAccounting {
    time: Mutex<Duration>,
    evaluations: AtomicUsize,
}

impl MetricsAccounting {
    /// Creates zeroed accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one scored image pair's wall-clock time.
    fn record(&self, elapsed: Duration) {
        *self.time.lock().expect("metrics accounting poisoned") += elapsed;
        self.evaluations.fetch_add(1, Ordering::Relaxed);
    }

    /// Total time spent evaluating quality metrics (sum of per-evaluation
    /// wall times — serial-equivalent, see the type docs).
    pub fn time(&self) -> Duration {
        *self.time.lock().expect("metrics accounting poisoned")
    }

    /// Number of (ground truth, render) pairs scored.
    pub fn evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }
}

/// The cached ground truth for one standalone object: probe poses and their
/// ray-marched renderings. Building it is the expensive part of profiling, so
/// it is computed once per object and reused for every sample configuration.
#[derive(Debug, Clone)]
pub struct ObjectGroundTruth {
    /// The standalone single-object scene used for both ground truth and
    /// quality evaluation of baked assets.
    pub scene: Scene,
    /// Probe camera poses.
    pub poses: Vec<CameraPose>,
    /// Ray-marched ground-truth images, index-aligned with `poses`.
    pub images: Vec<Image>,
    /// Probe resolution.
    pub resolution: usize,
}

impl ObjectGroundTruth {
    /// The standalone probe scene and orbit poses for a model — the
    /// deterministic part of a ground truth that is cheap to recompute (the
    /// persistent [`crate::ground_truth::GroundTruthCache`] stores only the
    /// rendered images and rebuilds the rig on load).
    pub fn probe_rig(
        model: &ObjectModel,
        settings: &MeasurementSettings,
    ) -> (Scene, Vec<CameraPose>) {
        let scene = Scene::from_models(vec![model.clone()], 0);
        let bounds = scene.bounding_box();
        let poses =
            orbit_path(bounds.center(), (bounds.diagonal() * 1.1).max(1.0), 0.45, settings.views);
        (scene, poses)
    }

    /// Renders the ground truth for a standalone object. The ray-marched
    /// probe renders are tiled over `settings.ground_truth_workers` pool
    /// threads and marched at `settings.lane_width`; the images are
    /// bit-identical for every worker count and lane width.
    pub fn build(model: &ObjectModel, settings: &MeasurementSettings) -> Self {
        let (scene, poses) = Self::probe_rig(model, settings);
        let images = poses
            .iter()
            .map(|pose| {
                nerflex_scene::raymarch::render_view_lanes(
                    &scene,
                    pose,
                    settings.resolution,
                    settings.resolution,
                    settings.ground_truth_workers,
                    settings.lane_width,
                )
                .0
            })
            .collect();
        Self { scene, poses, images, resolution: settings.resolution }
    }

    /// Reassembles a ground truth from persisted probe images, rebuilding
    /// the (deterministic) probe rig from the model. Returns `None` when the
    /// images do not match the settings' view count or resolution — the
    /// caller then falls back to a fresh [`ObjectGroundTruth::build`].
    pub fn from_images(
        model: &ObjectModel,
        settings: &MeasurementSettings,
        images: Vec<Image>,
    ) -> Option<Self> {
        if images.len() != settings.views
            || images
                .iter()
                .any(|i| i.width() != settings.resolution || i.height() != settings.resolution)
        {
            return None;
        }
        let (scene, poses) = Self::probe_rig(model, settings);
        Some(Self { scene, poses, images, resolution: settings.resolution })
    }

    /// Measures one configuration: bakes the object, renders the probe views
    /// and compares against the cached ground truth.
    pub fn measure(&self, config: BakeConfig) -> Measurement {
        self.measure_in(config, None, 1, None)
    }

    /// Like [`ObjectGroundTruth::measure`], but the sample bake goes through
    /// the shared [`BakeCache`] — so the final baking stage can later reuse
    /// it, and repeated probes of one configuration are free.
    pub fn measure_cached(&self, config: BakeConfig, cache: &BakeCache) -> Measurement {
        self.measure_in(config, Some(cache), 1, None)
    }

    /// The fully wired measurement: optional shared bake cache, the fused
    /// quality metrics tiled over `metrics_workers` pool threads (`0` = one
    /// per core; metric values are bit-identical for every count) and
    /// optional wall-clock accounting of the metrics stage.
    pub fn measure_in(
        &self,
        config: BakeConfig,
        cache: Option<&BakeCache>,
        metrics_workers: usize,
        accounting: Option<&MetricsAccounting>,
    ) -> Measurement {
        let placed = &self.scene.objects()[0];
        let asset = match cache {
            Some(cache) => cache.get_or_bake_placed(placed, config),
            None => nerflex_bake::bake_placed(placed, config),
        };
        self.score(asset, metrics_workers, accounting)
    }

    /// Renders the probe views of a baked asset and scores them against the
    /// cached ground truth through the fused metrics engine.
    fn score(
        &self,
        asset: BakedAsset,
        metrics_workers: usize,
        accounting: Option<&MetricsAccounting>,
    ) -> Measurement {
        let mut ssim_sum = 0.0;
        for (pose, gt) in self.poses.iter().zip(&self.images) {
            let (img, _) = render_assets(
                std::slice::from_ref(&asset),
                pose,
                self.resolution,
                self.resolution,
                &RenderOptions::default(),
            );
            let started = Instant::now();
            ssim_sum += metrics::quality_metrics_parallel(gt, &img, metrics_workers).ssim;
            if let Some(accounting) = accounting {
                accounting.record(started.elapsed());
            }
        }
        Measurement {
            config: asset.config,
            size_mb: asset.size_mb(),
            ssim: ssim_sum / self.poses.len() as f64,
            quad_count: asset.primitive_count(),
        }
    }
}

/// Measures every configuration in `configs` for a standalone object.
///
/// This is the "ground truth" path used both to build profiles (on the sample
/// configurations) and to validate them (on a dense grid, Fig. 3).
pub fn measure_object(
    model: &ObjectModel,
    configs: &[BakeConfig],
    settings: &MeasurementSettings,
) -> Vec<Measurement> {
    measure_object_cached(model, configs, settings, None)
}

/// Measures every configuration in `configs`, routing sample bakes through
/// the shared [`BakeCache`] when one is given. This is the profiling path the
/// pipeline engine uses: every sample bake it pays for becomes available to
/// the final baking stage.
pub fn measure_object_cached(
    model: &ObjectModel,
    configs: &[BakeConfig],
    settings: &MeasurementSettings,
    cache: Option<&BakeCache>,
) -> Vec<Measurement> {
    measure_object_in(model, configs, settings, cache, None)
}

/// Like [`measure_object_cached`], but the expensive ray-marched ground
/// truth additionally comes from a shared
/// [`GroundTruthCache`](crate::ground_truth::GroundTruthCache) when one is
/// given — so repeated profiling of the same (model, probe settings) pair
/// (duplicate objects in a scene, fleet re-deployments, warm bench/CI runs)
/// renders it only once. Cached and freshly built ground truths are
/// bit-identical, so the measurements do not depend on where the ground
/// truth came from.
pub fn measure_object_in(
    model: &ObjectModel,
    configs: &[BakeConfig],
    settings: &MeasurementSettings,
    cache: Option<&BakeCache>,
    ground_truth: Option<&crate::ground_truth::GroundTruthCache>,
) -> Vec<Measurement> {
    measure_object_accounted(model, configs, settings, cache, ground_truth, None)
}

/// [`measure_object_in`] with optional wall-clock accounting of the fused
/// quality-metrics stage (the engine passes one [`MetricsAccounting`] per
/// profiling run and reports its total as `StageTimings::metrics`).
pub fn measure_object_accounted(
    model: &ObjectModel,
    configs: &[BakeConfig],
    settings: &MeasurementSettings,
    cache: Option<&BakeCache>,
    ground_truth: Option<&crate::ground_truth::GroundTruthCache>,
    accounting: Option<&MetricsAccounting>,
) -> Vec<Measurement> {
    let ground_truth = match ground_truth {
        Some(shared) => shared.get_or_build(model, settings),
        None => std::sync::Arc::new(ObjectGroundTruth::build(model, settings)),
    };
    match settings.dispatch {
        DispatchMode::PerSample => {
            // The sample configurations are independent measurements against
            // the shared ground truth: fan them out over the worker pool.
            // Results come back in config order and every measurement is
            // deterministic (the fused metrics are bit-identical for every
            // `metrics_workers` count), so any worker count produces
            // bit-identical output (1 = sequential).
            let workers = match settings.worker_threads {
                0 => nerflex_bake::pool::default_workers(configs.len()),
                n => n,
            };
            nerflex_bake::pool::parallel_map(configs.len(), workers, |idx| {
                ground_truth.measure_in(configs[idx], cache, settings.metrics_workers, accounting)
            })
        }
        DispatchMode::Batched => {
            measure_batched(&ground_truth, configs, settings, cache, accounting)
        }
    }
}

/// The whole-profile batched evaluation: dispatch 1 bakes every sample
/// configuration, dispatch 2 fans the flattened (configuration × view) grid
/// with a persistent [`MetricsScratch`] per pool worker, then the per-view
/// scores are folded per configuration **in view order** — the same
/// floating-point association as the per-sample loop, so batching never
/// changes a measurement bit (`1` worker is the bit-for-bit sequential
/// path). Two dispatches regardless of the profile size, versus one
/// dispatch per stage plus per-pair metric allocations on the
/// [`DispatchMode::PerSample`] path.
fn measure_batched(
    ground_truth: &ObjectGroundTruth,
    configs: &[BakeConfig],
    settings: &MeasurementSettings,
    cache: Option<&BakeCache>,
    accounting: Option<&MetricsAccounting>,
) -> Vec<Measurement> {
    let pool = WorkerPool::shared();
    let placed = &ground_truth.scene.objects()[0];
    let bake_workers = match settings.worker_threads {
        0 => nerflex_bake::pool::default_workers(configs.len()),
        n => n,
    };
    let assets = pool.run(configs.len(), bake_workers, |idx| match cache {
        Some(cache) => cache.get_or_bake_placed(placed, configs[idx]),
        None => nerflex_bake::bake_placed(placed, configs[idx]),
    });
    let views = ground_truth.poses.len();
    let pairs = configs.len() * views;
    let pair_workers = match settings.worker_threads {
        0 => nerflex_bake::pool::default_workers(pairs),
        n => n,
    };
    let ssims = pool.run_scratch(pairs, pair_workers, MetricsScratch::new, |scratch, pair| {
        let (config_idx, view) = (pair / views, pair % views);
        let (img, _) = render_assets(
            std::slice::from_ref(&assets[config_idx]),
            &ground_truth.poses[view],
            ground_truth.resolution,
            ground_truth.resolution,
            &RenderOptions::default(),
        );
        let started = Instant::now();
        let ssim = metrics::quality_metrics_scratch(
            &ground_truth.images[view],
            &img,
            settings.lane_width,
            scratch,
        )
        .ssim;
        if let Some(accounting) = accounting {
            accounting.record(started.elapsed());
        }
        ssim
    });
    assets
        .into_iter()
        .enumerate()
        .map(|(idx, asset)| {
            let mut ssim_sum = 0.0;
            for ssim in &ssims[idx * views..(idx + 1) * views] {
                ssim_sum += ssim;
            }
            Measurement {
                config: asset.config,
                size_mb: asset.size_mb(),
                ssim: ssim_sum / views as f64,
                quad_count: asset.primitive_count(),
            }
        })
        .collect()
}

/// Measures a single standalone bake without reusing ground truth (handy for
/// one-off comparisons in examples and tests).
pub fn measure_single(
    model: &ObjectModel,
    config: BakeConfig,
    settings: &MeasurementSettings,
) -> Measurement {
    // Standalone size accounting (no placement) sanity-checks the placed bake.
    let standalone_size = bake_object(model, config).size_mb();
    let ground_truth = ObjectGroundTruth::build(model, settings);
    let mut m = ground_truth.measure(config);
    debug_assert!((m.size_mb - standalone_size).abs() < standalone_size * 0.5 + 1.0);
    m.size_mb = standalone_size;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;

    fn quick_settings() -> MeasurementSettings {
        MeasurementSettings { views: 2, resolution: 56, ..MeasurementSettings::default() }
    }

    #[test]
    fn measurements_grow_in_size_and_quality_with_the_knobs() {
        let model = CanonicalObject::Hotdog.build();
        let configs = vec![BakeConfig::new(10, 3), BakeConfig::new(36, 9)];
        let measurements = measure_object(&model, &configs, &quick_settings());
        assert_eq!(measurements.len(), 2);
        assert!(measurements[1].size_mb > measurements[0].size_mb);
        assert!(measurements[1].ssim > measurements[0].ssim, "{measurements:?}");
        assert!(measurements[1].quad_count > measurements[0].quad_count);
        for m in &measurements {
            assert!(m.ssim > 0.0 && m.ssim <= 1.0);
            assert!(m.size_mb > 0.0);
        }
    }

    #[test]
    fn splat_configurations_measure_through_the_same_path() {
        let model = CanonicalObject::Hotdog.build();
        let configs = vec![BakeConfig::splat(20, 256), BakeConfig::splat(20, 1024)];
        let measurements = measure_object(&model, &configs, &quick_settings());
        assert_eq!(measurements.len(), 2);
        // Size is linear in the kept count; quality improves with more splats.
        assert!(measurements[1].size_mb > measurements[0].size_mb * 3.0);
        assert!(measurements[1].ssim >= measurements[0].ssim, "{measurements:?}");
        // The complexity measure counts splats for splat-family bakes (both
        // counts are below the grid's boundary-seed budget, so extraction
        // keeps them exactly).
        assert_eq!(measurements[0].quad_count, 256);
        assert_eq!(measurements[1].quad_count, 1024);
        for m in &measurements {
            assert!(m.ssim > 0.0 && m.ssim <= 1.0);
            assert!(m.config.splat_count().is_some());
        }
    }

    #[test]
    fn ground_truth_cache_is_reused_consistently() {
        let model = CanonicalObject::Chair.build();
        let settings = quick_settings();
        let gt = ObjectGroundTruth::build(&model, &settings);
        let a = gt.measure(BakeConfig::new(20, 5));
        let b = gt.measure(BakeConfig::new(20, 5));
        assert_eq!(a, b, "same config must measure identically");
    }

    #[test]
    fn parallel_sample_measurement_is_bit_identical_to_sequential() {
        // Within-profile parallelism must be pure restructuring: the same
        // configs measured with 1 worker and with several produce identical
        // measurements in identical order.
        let model = CanonicalObject::Hotdog.build();
        let configs = vec![BakeConfig::new(10, 3), BakeConfig::new(16, 5), BakeConfig::new(24, 7)];
        let sequential = measure_object(&model, &configs, &quick_settings().with_worker_threads(1));
        let parallel = measure_object(&model, &configs, &quick_settings().with_worker_threads(4));
        assert_eq!(sequential, parallel);
        // And the auto setting (one worker per core) agrees too.
        let auto = measure_object(&model, &configs, &quick_settings().with_worker_threads(0));
        assert_eq!(sequential, auto);
    }

    #[test]
    fn metrics_worker_count_never_changes_measurements() {
        // The fused tiled metrics reduction is bit-identical for every
        // worker count, so measurements — and everything fitted from them —
        // must not depend on `metrics_workers`.
        let model = CanonicalObject::Hotdog.build();
        let configs = vec![BakeConfig::new(10, 3), BakeConfig::new(20, 5)];
        let sequential =
            measure_object(&model, &configs, &quick_settings().with_metrics_workers(1));
        for workers in [2, 4, 7, 0] {
            let parallel =
                measure_object(&model, &configs, &quick_settings().with_metrics_workers(workers));
            assert_eq!(sequential, parallel, "metrics_workers={workers}");
        }
    }

    #[test]
    fn batched_dispatch_is_bit_identical_for_every_worker_count_and_lane_width() {
        // The batched whole-profile evaluation must reproduce the per-sample
        // reference path bit for bit: same configs, every tested worker
        // count, both lane widths (lane width also reaches the ground-truth
        // ray marching here). `0` = one worker per core.
        let model = CanonicalObject::Hotdog.build();
        let configs = vec![BakeConfig::new(10, 3), BakeConfig::new(16, 5), BakeConfig::new(24, 7)];
        let reference = measure_object(
            &model,
            &configs,
            &quick_settings().with_dispatch(DispatchMode::PerSample).with_worker_threads(1),
        );
        for workers in [1, 2, 4, 7, 0] {
            for lanes in [LaneWidth::X4, LaneWidth::X8] {
                let batched = measure_object(
                    &model,
                    &configs,
                    &quick_settings()
                        .with_dispatch(DispatchMode::Batched)
                        .with_worker_threads(workers)
                        .with_lane_width(lanes),
                );
                assert_eq!(reference, batched, "workers={workers} lanes={lanes:?}");
            }
        }
    }

    #[test]
    fn metrics_accounting_records_time_and_evaluations() {
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let accounting = MetricsAccounting::new();
        let configs = [BakeConfig::new(10, 3), BakeConfig::new(16, 5)];
        let _ =
            measure_object_accounted(&model, &configs, &settings, None, None, Some(&accounting));
        // One metrics evaluation per (config, probe view).
        assert_eq!(accounting.evaluations(), configs.len() * settings.views);
        assert!(accounting.time() > std::time::Duration::ZERO);
    }

    #[test]
    fn measure_single_matches_measure_object() {
        let model = CanonicalObject::Hotdog.build();
        let settings = quick_settings();
        let single = measure_single(&model, BakeConfig::new(16, 5), &settings);
        let batch = measure_object(&model, &[BakeConfig::new(16, 5)], &settings);
        assert!((single.ssim - batch[0].ssim).abs() < 1e-9);
        assert!((single.size_mb - batch[0].size_mb).abs() < 1e-6);
    }
}
