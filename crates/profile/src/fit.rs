//! Nonlinear least-squares curve fitting (Levenberg–Marquardt).
//!
//! "Due to the simple form of the profiling models, except for g and p, all
//! the other parameters can be easily determined through curve fitting."
//! (paper §III-B). The fitter is generic over the model's prediction
//! function so the same machinery fits both the size and the quality model.

use crate::measurement::Measurement;
use crate::model::{QualityModel, SizeModel, SplatModels, SplatQualityModel, SplatSizeModel};
use nerflex_math::stats::solve_normal_equations;

/// A single fitting observation: configuration knobs and target value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Mesh granularity.
    pub g: u32,
    /// Patch size.
    pub p: u32,
    /// Observed value (size in MB or SSIM).
    pub target: f64,
}

/// Fits `params` so that `predict(params, g, p)` matches the observations in
/// the least-squares sense, using Levenberg–Marquardt with a numerical
/// Jacobian. Returns the fitted parameters and the final RMSE.
///
/// `project` is applied after every step to keep parameters in their valid
/// ranges (non-negative scale factors, bounded offsets, …).
///
/// # Panics
///
/// Panics when `observations` is empty or `initial` is empty.
pub fn fit_least_squares(
    initial: Vec<f64>,
    observations: &[Observation],
    predict: impl Fn(&[f64], u32, u32) -> f64,
    project: impl Fn(&[f64]) -> Vec<f64>,
    iterations: usize,
) -> (Vec<f64>, f64) {
    assert!(!observations.is_empty(), "need at least one observation");
    assert!(!initial.is_empty(), "need at least one parameter");
    let n_params = initial.len();
    let rmse = |params: &[f64]| -> f64 {
        let sse: f64 = observations
            .iter()
            .map(|o| {
                let r = o.target - predict(params, o.g, o.p);
                r * r
            })
            .sum();
        (sse / observations.len() as f64).sqrt()
    };

    let mut params = project(&initial);
    let mut lambda = 1e-3;
    let mut best_err = rmse(&params);
    for _ in 0..iterations {
        // Residuals and numerical Jacobian at the current parameters.
        let residuals: Vec<f64> =
            observations.iter().map(|o| o.target - predict(&params, o.g, o.p)).collect();
        let mut jacobian = Vec::with_capacity(observations.len());
        for o in observations {
            let mut row = Vec::with_capacity(n_params);
            for j in 0..n_params {
                let h = (params[j].abs() * 1e-4).max(1e-7);
                let mut bumped = params.clone();
                bumped[j] += h;
                let d = (predict(&bumped, o.g, o.p) - predict(&params, o.g, o.p)) / h;
                row.push(d);
            }
            jacobian.push(row);
        }
        let Some(delta) = solve_normal_equations(&jacobian, &residuals, lambda) else {
            lambda *= 10.0;
            continue;
        };
        let candidate: Vec<f64> = params.iter().zip(&delta).map(|(p, d)| p + d).collect();
        let candidate = project(&candidate);
        let err = rmse(&candidate);
        if err < best_err {
            params = candidate;
            best_err = err;
            lambda = (lambda * 0.5).max(1e-9);
        } else {
            lambda = (lambda * 4.0).min(1e6);
        }
        if best_err < 1e-9 {
            break;
        }
    }
    (params, best_err)
}

/// Fits the size model `S(g,p) = k·(g+a)³·(p+b)² + m` to measurements.
pub fn fit_size_model(measurements: &[Measurement]) -> SizeModel {
    let observations: Vec<Observation> = measurements
        .iter()
        .map(|m| Observation { g: m.config.grid, p: m.config.patch, target: m.size_mb })
        .collect();
    // Initialise k from the mean ratio; multi-start over the offsets because
    // the problem is non-convex in (a, b).
    let k0 = observations
        .iter()
        .map(|o| o.target / ((o.g as f64).powi(3) * (o.p as f64).powi(2)))
        .sum::<f64>()
        / observations.len() as f64;
    let mut best: Option<(Vec<f64>, f64)> = None;
    for &(a0, b0) in &[(0.0, 0.0), (4.0, 2.0), (-2.0, -1.0), (8.0, 4.0)] {
        let (params, err) = fit_least_squares(
            vec![k0, a0, b0, 0.0],
            &observations,
            |p, g, pp| SizeModel::from_params(p).predict(g, pp),
            |p| SizeModel::from_params(p).params(),
            150,
        );
        if best.as_ref().is_none_or(|(_, e)| err < *e) {
            best = Some((params, err));
        }
    }
    SizeModel::from_params(&best.expect("at least one start").0)
}

/// Fits the quality model `Q(g,p) = q∞ − k/((g+a)³·(p+b)²)` to measurements.
pub fn fit_quality_model(measurements: &[Measurement]) -> QualityModel {
    let observations: Vec<Observation> = measurements
        .iter()
        .map(|m| Observation { g: m.config.grid, p: m.config.patch, target: m.ssim })
        .collect();
    let q_max = observations.iter().map(|o| o.target).fold(0.0f64, f64::max);
    let q_min = observations.iter().map(|o| o.target).fold(1.0f64, f64::min);
    let (g_min, p_min) = observations
        .iter()
        .map(|o| (o.g, o.p))
        .min()
        .unwrap_or((BakeConfigMin::G, BakeConfigMin::P));
    let k0 = ((q_max - q_min).max(1e-3)) * (g_min as f64).powi(3) * (p_min as f64).powi(2);
    let mut best: Option<(Vec<f64>, f64)> = None;
    for &(a0, b0) in &[(0.0, 0.0), (2.0, 1.0), (6.0, 3.0), (-2.0, -1.0)] {
        for &k_scale in &[1.0, 2.0, 4.0] {
            let (params, err) = fit_least_squares(
                vec![(q_max + 0.02).min(1.0), k0 * k_scale, a0, b0],
                &observations,
                |p, g, pp| QualityModel::from_params(p).predict(g, pp),
                |p| QualityModel::from_params(p).params(),
                150,
            );
            if best.as_ref().is_none_or(|(_, e)| err < *e) {
                best = Some((params, err));
            }
        }
    }
    QualityModel::from_params(&best.expect("at least one start").0)
}

/// Fits the splat-family models `S(n) = k·n + m` and `Q(n) = q∞ − k/(n+a)`
/// to the splat-family measurements in `measurements` (mesh-family samples
/// are ignored). Returns `None` when there are no splat samples — the object
/// then has no splat profile and the selectors skip splat candidates for it.
///
/// The same Levenberg–Marquardt machinery fits these one-knob curves: the
/// splat count rides in the observation's `g` slot and `p` is unused.
pub fn fit_splat_models(measurements: &[Measurement]) -> Option<SplatModels> {
    let size_obs: Vec<Observation> = measurements
        .iter()
        .filter_map(|m| {
            m.config.splat_count().map(|n| Observation { g: n, p: 1, target: m.size_mb })
        })
        .collect();
    if size_obs.is_empty() {
        return None;
    }
    let quality_obs: Vec<Observation> = measurements
        .iter()
        .filter_map(|m| m.config.splat_count().map(|n| Observation { g: n, p: 1, target: m.ssim }))
        .collect();

    // Size: linear in the count, so a single start converges immediately.
    let k0 =
        size_obs.iter().map(|o| o.target / o.g.max(1) as f64).sum::<f64>() / size_obs.len() as f64;
    let (size_params, _) = fit_least_squares(
        vec![k0, 0.0],
        &size_obs,
        |p, n, _| SplatSizeModel::from_params(p).predict(n),
        |p| SplatSizeModel::from_params(p).params(),
        80,
    );

    // Quality: multi-start over the count offset (non-convex in `a`).
    let q_max = quality_obs.iter().map(|o| o.target).fold(0.0f64, f64::max);
    let q_min = quality_obs.iter().map(|o| o.target).fold(1.0f64, f64::min);
    let n_min = quality_obs.iter().map(|o| o.g).min().unwrap_or(64);
    let k0 = ((q_max - q_min).max(1e-3)) * n_min as f64;
    let mut best: Option<(Vec<f64>, f64)> = None;
    for &a0 in &[0.0, n_min as f64 * 0.5, n_min as f64, n_min as f64 * 4.0] {
        for &k_scale in &[1.0, 2.0, 4.0] {
            let (params, err) = fit_least_squares(
                vec![(q_max + 0.02).min(1.0), k0 * k_scale, a0],
                &quality_obs,
                |p, n, _| SplatQualityModel::from_params(p).predict(n),
                |p| SplatQualityModel::from_params(p).params(),
                150,
            );
            if best.as_ref().is_none_or(|(_, e)| err < *e) {
                best = Some((params, err));
            }
        }
    }
    Some(SplatModels {
        size: SplatSizeModel::from_params(&size_params),
        quality: SplatQualityModel::from_params(&best.expect("at least one start").0),
    })
}

/// Fallback minimum knobs used only when the observation list is empty of
/// ordering information (never in practice).
struct BakeConfigMin;
impl BakeConfigMin {
    const G: u32 = 16;
    const P: u32 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_bake::BakeConfig;

    fn synthetic_measurements(
        size: SizeModel,
        quality: QualityModel,
        noise: f64,
    ) -> Vec<Measurement> {
        let mut out = Vec::new();
        let mut wobble: f64 = 0.37;
        for &g in &[16u32, 48, 128] {
            for &p in &[3u32, 24, 45] {
                wobble = (wobble * 1.7 + 0.13).fract();
                out.push(Measurement {
                    config: BakeConfig::new(g, p),
                    size_mb: size.predict(g, p) + (wobble - 0.5) * noise,
                    ssim: quality.predict(g, p) + (wobble - 0.5) * noise * 0.01,
                    quad_count: 0,
                });
            }
        }
        out
    }

    #[test]
    fn recovers_noiseless_size_model() {
        let truth = SizeModel { k: 2.5e-8, a: 1.0, b: 2.0, m: 0.8 };
        let fitted = fit_size_model(&synthetic_measurements(
            truth,
            QualityModel { q_inf: 0.9, k: 1e4, a: 0.0, b: 0.0 },
            0.0,
        ));
        // Predictions (not raw parameters) must match: the model is
        // over-parameterised so different parameters can be equivalent.
        for &g in &[20u32, 64, 100] {
            for &p in &[5u32, 17, 40] {
                let t = truth.predict(g, p);
                let f = fitted.predict(g, p);
                assert!((t - f).abs() < 0.05 * t.max(1.0), "({g},{p}): {t} vs {f}");
            }
        }
    }

    #[test]
    fn recovers_noiseless_quality_model() {
        let truth = QualityModel { q_inf: 0.93, k: 6.0e4, a: 2.0, b: 1.0 };
        let fitted = fit_quality_model(&synthetic_measurements(
            SizeModel { k: 2e-8, a: 0.0, b: 0.0, m: 0.0 },
            truth,
            0.0,
        ));
        for &g in &[20u32, 64, 100] {
            for &p in &[5u32, 17, 40] {
                assert!(
                    (truth.predict(g, p) - fitted.predict(g, p)).abs() < 0.02,
                    "({g},{p}): {} vs {}",
                    truth.predict(g, p),
                    fitted.predict(g, p)
                );
            }
        }
    }

    #[test]
    fn tolerates_measurement_noise() {
        let truth_size = SizeModel { k: 3.0e-8, a: 0.0, b: 0.0, m: 1.0 };
        let truth_quality = QualityModel { q_inf: 0.9, k: 5.0e4, a: 0.0, b: 0.0 };
        let noisy = synthetic_measurements(truth_size, truth_quality, 2.0);
        let fitted_size = fit_size_model(&noisy);
        let fitted_quality = fit_quality_model(&noisy);
        // Interpolated predictions stay close despite ±1 MB noise.
        let s_err = (truth_size.predict(64, 17) - fitted_size.predict(64, 17)).abs();
        assert!(s_err < 6.0, "size error {s_err}");
        let q_err = (truth_quality.predict(64, 17) - fitted_quality.predict(64, 17)).abs();
        assert!(q_err < 0.05, "quality error {q_err}");
    }

    #[test]
    fn fitted_models_remain_monotone() {
        let truth_size = SizeModel { k: 1.5e-8, a: 3.0, b: 0.5, m: 0.2 };
        let truth_quality = QualityModel { q_inf: 0.88, k: 3.0e4, a: 1.0, b: 0.0 };
        let m = synthetic_measurements(truth_size, truth_quality, 0.5);
        let size = fit_size_model(&m);
        let quality = fit_quality_model(&m);
        let mut prev_s = 0.0;
        let mut prev_q = 0.0;
        for g in (16..=128).step_by(16) {
            let s = size.predict(g, 17);
            let q = quality.predict(g, 17);
            assert!(s >= prev_s);
            assert!(q >= prev_q - 1e-9);
            prev_s = s;
            prev_q = q;
        }
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_observations_panic() {
        let _ = fit_least_squares(vec![1.0], &[], |p, _, _| p[0], |p| p.to_vec(), 5);
    }

    fn synthetic_splat_measurements(
        size: SplatSizeModel,
        quality: SplatQualityModel,
    ) -> Vec<Measurement> {
        [128u32, 512, 2048, 8192, 32768]
            .iter()
            .map(|&n| Measurement {
                config: BakeConfig::splat(24, n),
                size_mb: size.predict(n),
                ssim: quality.predict(n),
                quad_count: n as usize,
            })
            .collect()
    }

    #[test]
    fn recovers_noiseless_splat_models() {
        let truth_size = SplatSizeModel { k: 32.0 / (1024.0 * 1024.0), m: 0.002 };
        let truth_quality = SplatQualityModel { q_inf: 0.82, k: 60.0, a: 50.0 };
        let fitted = fit_splat_models(&synthetic_splat_measurements(truth_size, truth_quality))
            .expect("splat samples present");
        for &n in &[256u32, 1024, 4096, 16384] {
            let ts = truth_size.predict(n);
            let fs = fitted.predict_size(n);
            assert!((ts - fs).abs() < 0.05 * ts.max(0.01), "size({n}): {ts} vs {fs}");
            let tq = truth_quality.predict(n);
            let fq = fitted.predict_quality(n);
            assert!((tq - fq).abs() < 0.02, "quality({n}): {tq} vs {fq}");
        }
    }

    #[test]
    fn splat_fit_ignores_mesh_samples_and_needs_splat_ones() {
        // Mesh-only measurements produce no splat models.
        let mesh_only = synthetic_measurements(
            SizeModel { k: 2e-8, a: 0.0, b: 0.0, m: 0.5 },
            QualityModel { q_inf: 0.9, k: 1e4, a: 0.0, b: 0.0 },
            0.0,
        );
        assert!(fit_splat_models(&mesh_only).is_none());
        // Mixing mesh samples in does not perturb the splat fit.
        let truth_size = SplatSizeModel { k: 3.0e-5, m: 0.001 };
        let truth_quality = SplatQualityModel { q_inf: 0.8, k: 45.0, a: 20.0 };
        let mut mixed = synthetic_splat_measurements(truth_size, truth_quality);
        mixed.extend(mesh_only);
        let fitted = fit_splat_models(&mixed).expect("splat samples present");
        assert!((fitted.predict_size(1024) - truth_size.predict(1024)).abs() < 0.01);
        assert!((fitted.predict_quality(1024) - truth_quality.predict(1024)).abs() < 0.05);
    }
}
