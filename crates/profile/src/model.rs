//! The closed-form profiling models.

use serde::{Deserialize, Serialize};

/// Anything that can predict baked-data size and rendering quality for a
/// configuration pair (used by the configuration selectors, which do not care
/// whether predictions come from a fitted model or a lookup table).
pub trait SizeQualityModel {
    /// Predicted baked-data size in MB for configuration `(g, p)`.
    fn predict_size(&self, g: u32, p: u32) -> f64;
    /// Predicted rendering quality (SSIM) for configuration `(g, p)`.
    fn predict_quality(&self, g: u32, p: u32) -> f64;
}

/// Size model `S(g, p) = k·(g+a)³·(p+b)² + m` (megabytes).
///
/// The cubic term counts voxels (and therefore quads) and the quadratic term
/// counts texels per quad, exactly the argument of paper §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeModel {
    /// Scale factor of the polynomial term.
    pub k: f64,
    /// Grid offset.
    pub a: f64,
    /// Patch offset.
    pub b: f64,
    /// Constant overhead (MLP, headers).
    pub m: f64,
}

impl SizeModel {
    /// Evaluates the model.
    pub fn predict(&self, g: u32, p: u32) -> f64 {
        let gg = (g as f64 + self.a).max(0.0);
        let pp = (p as f64 + self.b).max(0.0);
        (self.k * gg.powi(3) * pp.powi(2) + self.m).max(0.0)
    }

    /// The model parameters as a flat vector `[k, a, b, m]` (fitting order).
    pub fn params(&self) -> Vec<f64> {
        vec![self.k, self.a, self.b, self.m]
    }

    /// Rebuilds the model from the flat parameter vector, projecting the
    /// parameters into their physically valid ranges.
    ///
    /// # Panics
    ///
    /// Panics when `params.len() != 4`.
    pub fn from_params(params: &[f64]) -> Self {
        assert_eq!(params.len(), 4, "size model has 4 parameters");
        Self {
            k: params[0].max(0.0),
            a: params[1].clamp(-8.0, 256.0),
            b: params[2].clamp(-2.0, 256.0),
            m: params[3].clamp(0.0, 1024.0),
        }
    }
}

impl SizeQualityModel for SizeModel {
    fn predict_size(&self, g: u32, p: u32) -> f64 {
        self.predict(g, p)
    }
    fn predict_quality(&self, _g: u32, _p: u32) -> f64 {
        unimplemented!("SizeModel only predicts size; pair it with a QualityModel")
    }
}

/// Quality model `Q(g, p) = q∞ − k / ((g+a)³·(p+b)²)` (SSIM, saturating).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityModel {
    /// Asymptotic quality as both knobs grow.
    pub q_inf: f64,
    /// Scale of the deficit term.
    pub k: f64,
    /// Grid offset.
    pub a: f64,
    /// Patch offset.
    pub b: f64,
}

impl QualityModel {
    /// Evaluates the model; the result is clamped into `[0, 1]`.
    pub fn predict(&self, g: u32, p: u32) -> f64 {
        let gg = (g as f64 + self.a).max(1e-6);
        let pp = (p as f64 + self.b).max(1e-6);
        (self.q_inf - self.k / (gg.powi(3) * pp.powi(2))).clamp(0.0, 1.0)
    }

    /// The model parameters as a flat vector `[q_inf, k, a, b]` (fitting order).
    pub fn params(&self) -> Vec<f64> {
        vec![self.q_inf, self.k, self.a, self.b]
    }

    /// Rebuilds the model from the flat parameter vector, projecting the
    /// parameters into their physically valid ranges.
    ///
    /// # Panics
    ///
    /// Panics when `params.len() != 4`.
    pub fn from_params(params: &[f64]) -> Self {
        Self {
            q_inf: params[0].clamp(0.0, 1.0),
            k: params[1].max(0.0),
            a: params[2].clamp(-8.0, 256.0),
            b: params[3].clamp(-2.0, 256.0),
        }
    }
}

/// Splat-family size model `S(n) = k·n + m` (megabytes).
///
/// A splat cloud is a flat array of fixed-size records, so its baked size is
/// exactly linear in the splat count `n` plus a constant envelope (codec
/// header + checksum) — no cubic voxel term, no texel term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplatSizeModel {
    /// Megabytes per splat.
    pub k: f64,
    /// Constant overhead (codec envelope).
    pub m: f64,
}

impl SplatSizeModel {
    /// Evaluates the model for a splat count.
    pub fn predict(&self, count: u32) -> f64 {
        (self.k * count as f64 + self.m).max(0.0)
    }

    /// The model parameters as a flat vector `[k, m]` (fitting order).
    pub fn params(&self) -> Vec<f64> {
        vec![self.k, self.m]
    }

    /// Rebuilds the model from the flat parameter vector, projecting the
    /// parameters into their physically valid ranges.
    ///
    /// # Panics
    ///
    /// Panics when `params.len() != 2`.
    pub fn from_params(params: &[f64]) -> Self {
        assert_eq!(params.len(), 2, "splat size model has 2 parameters");
        Self { k: params[0].max(0.0), m: params[1].clamp(0.0, 1024.0) }
    }
}

/// Splat-family quality model `Q(n) = q∞ − k / (n + a)` (SSIM, saturating).
///
/// Quality saturates in the splat count the same way the mesh family
/// saturates in `(g, p)`: each extra splat refines the surface coverage with
/// diminishing returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplatQualityModel {
    /// Asymptotic quality as the splat count grows.
    pub q_inf: f64,
    /// Scale of the deficit term.
    pub k: f64,
    /// Count offset.
    pub a: f64,
}

impl SplatQualityModel {
    /// Evaluates the model; the result is clamped into `[0, 1]`.
    pub fn predict(&self, count: u32) -> f64 {
        let n = (count as f64 + self.a).max(1e-6);
        (self.q_inf - self.k / n).clamp(0.0, 1.0)
    }

    /// The model parameters as a flat vector `[q_inf, k, a]` (fitting order).
    pub fn params(&self) -> Vec<f64> {
        vec![self.q_inf, self.k, self.a]
    }

    /// Rebuilds the model from the flat parameter vector, projecting the
    /// parameters into their physically valid ranges.
    ///
    /// # Panics
    ///
    /// Panics when `params.len() != 3`.
    pub fn from_params(params: &[f64]) -> Self {
        assert_eq!(params.len(), 3, "splat quality model has 3 parameters");
        Self {
            q_inf: params[0].clamp(0.0, 1.0),
            k: params[1].max(0.0),
            a: params[2].clamp(-32.0, 1e6),
        }
    }
}

/// The paired splat-family size + quality models, fitted per object when
/// splat profiling is enabled ([`crate::ProfilerOptions`]). Both are
/// functions of the splat count alone — the extraction grid is fixed per
/// sample range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplatModels {
    /// Fitted linear size model.
    pub size: SplatSizeModel,
    /// Fitted saturating quality model.
    pub quality: SplatQualityModel,
}

impl SplatModels {
    /// Predicted baked-data size in MB for a splat count.
    pub fn predict_size(&self, count: u32) -> f64 {
        self.size.predict(count)
    }

    /// Predicted rendering quality (SSIM) for a splat count.
    pub fn predict_quality(&self, count: u32) -> f64 {
        self.quality.predict(count)
    }
}

/// A paired size + quality model, the full per-object profile the selectors
/// consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileModels {
    /// Fitted size model.
    pub size: SizeModel,
    /// Fitted quality model.
    pub quality: QualityModel,
}

impl SizeQualityModel for ProfileModels {
    fn predict_size(&self, g: u32, p: u32) -> f64 {
        self.size.predict(g, p)
    }
    fn predict_quality(&self, g: u32, p: u32) -> f64 {
        self.quality.predict(g, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size_model() -> SizeModel {
        SizeModel { k: 3.0e-8, a: 2.0, b: 1.0, m: 0.5 }
    }

    fn quality_model() -> QualityModel {
        QualityModel { q_inf: 0.92, k: 8.0e4, a: 1.0, b: 0.5 }
    }

    #[test]
    fn size_is_monotone_in_both_knobs() {
        let m = size_model();
        assert!(m.predict(64, 17) > m.predict(32, 17));
        assert!(m.predict(64, 33) > m.predict(64, 17));
        assert!(m.predict(16, 3) >= m.m * 0.99);
    }

    #[test]
    fn quality_is_monotone_and_saturating() {
        let m = quality_model();
        assert!(m.predict(64, 17) > m.predict(32, 17));
        assert!(m.predict(128, 17) > m.predict(64, 17));
        // Saturation: the gain from 64→128 is smaller than from 16→32.
        let low_gain = m.predict(32, 17) - m.predict(16, 17);
        let high_gain = m.predict(128, 17) - m.predict(64, 17);
        assert!(high_gain < low_gain);
        // Bounded by the asymptote and by [0, 1].
        assert!(m.predict(1024, 1024) <= m.q_inf);
        assert!(m.predict(1, 1) >= 0.0);
    }

    #[test]
    fn parameter_roundtrip_preserves_predictions() {
        let s = size_model();
        let s2 = SizeModel::from_params(&s.params());
        assert!((s.predict(77, 13) - s2.predict(77, 13)).abs() < 1e-9);
        let q = quality_model();
        let q2 = QualityModel::from_params(&q.params());
        assert!((q.predict(77, 13) - q2.predict(77, 13)).abs() < 1e-9);
    }

    #[test]
    fn from_params_projects_invalid_values() {
        let s = SizeModel::from_params(&[-1.0, -100.0, 500.0, -3.0]);
        assert_eq!(s.k, 0.0);
        assert!(s.a >= -8.0 && s.b <= 256.0 && s.m >= 0.0);
        let q = QualityModel::from_params(&[1.5, -2.0, 0.0, 0.0]);
        assert_eq!(q.q_inf, 1.0);
        assert_eq!(q.k, 0.0);
    }

    #[test]
    fn profile_models_implement_the_selector_trait() {
        let pm = ProfileModels { size: size_model(), quality: quality_model() };
        assert!(pm.predict_size(128, 17) > pm.predict_size(16, 3));
        assert!(pm.predict_quality(128, 17) > pm.predict_quality(16, 3));
    }

    #[test]
    #[should_panic(expected = "only predicts size")]
    fn size_model_alone_cannot_predict_quality() {
        let _ = size_model().predict_quality(10, 10);
    }

    #[test]
    fn splat_size_is_linear_in_the_count() {
        let m = SplatSizeModel { k: 32.0 / (1024.0 * 1024.0), m: 0.001 };
        let step = m.predict(2048) - m.predict(1024);
        let step2 = m.predict(3072) - m.predict(2048);
        assert!((step - step2).abs() < 1e-12, "linear model must have constant slope");
        assert!(m.predict(4096) > m.predict(64));
    }

    #[test]
    fn splat_quality_saturates_in_the_count() {
        let m = SplatQualityModel { q_inf: 0.85, k: 40.0, a: 10.0 };
        assert!(m.predict(4096) > m.predict(256));
        let low_gain = m.predict(512) - m.predict(256);
        let high_gain = m.predict(8192) - m.predict(4096);
        assert!(high_gain < low_gain);
        assert!(m.predict(1_000_000) <= m.q_inf);
        assert!(m.predict(1) >= 0.0);
    }

    #[test]
    fn splat_parameter_roundtrip_preserves_predictions() {
        let s = SplatSizeModel { k: 3.0e-5, m: 0.01 };
        let s2 = SplatSizeModel::from_params(&s.params());
        assert!((s.predict(777) - s2.predict(777)).abs() < 1e-12);
        let q = SplatQualityModel { q_inf: 0.9, k: 55.0, a: 3.0 };
        let q2 = SplatQualityModel::from_params(&q.params());
        assert!((q.predict(777) - q2.predict(777)).abs() < 1e-12);
    }

    #[test]
    fn splat_from_params_projects_invalid_values() {
        let s = SplatSizeModel::from_params(&[-1.0, -5.0]);
        assert_eq!(s.k, 0.0);
        assert_eq!(s.m, 0.0);
        let q = SplatQualityModel::from_params(&[1.4, -2.0, -1e9]);
        assert_eq!(q.q_inf, 1.0);
        assert_eq!(q.k, 0.0);
        assert!(q.a >= -32.0);
    }
}
