//! Variable-step selection of profiling sample points.
//!
//! "To further minimize the number of sampling points for curve fitting, we
//! design a variable step-size searching strategy within NeRF's configuration
//! space. Specifically, for selecting the g values of the sample points, the
//! step size is 2·g′, where g′ represents the value of the previous sample
//! point. For each g value, we select the maximum, minimum, and midpoint
//! values of the patch size range as three distinct p values." (paper §III-B)

use nerflex_bake::BakeConfig;

/// The configuration-space bounds used when picking sample points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRange {
    /// Minimum mesh granularity.
    pub g_min: u32,
    /// Maximum mesh granularity.
    pub g_max: u32,
    /// Minimum patch size.
    pub p_min: u32,
    /// Maximum patch size.
    pub p_max: u32,
}

impl Default for SampleRange {
    fn default() -> Self {
        Self {
            g_min: BakeConfig::MIN_GRID,
            g_max: BakeConfig::MAX_GRID,
            p_min: BakeConfig::MIN_PATCH,
            p_max: BakeConfig::MAX_PATCH,
        }
    }
}

/// The grid-granularity sample values produced by the variable-step search:
/// starting from `g_min`, each step adds `2·g_prev` (i.e. the next value is
/// `3·g_prev`), and `g_max` is always included so the fit is anchored at both
/// ends of the range.
///
/// # Panics
///
/// Panics when the range is inverted or `g_min` is zero.
pub fn grid_samples(range: &SampleRange) -> Vec<u32> {
    assert!(range.g_min > 0 && range.g_min <= range.g_max, "invalid grid range");
    let mut out = Vec::new();
    let mut g = range.g_min;
    while g < range.g_max {
        out.push(g);
        // Step size is twice the previous sample value.
        g += 2 * g;
    }
    out.push(range.g_max);
    out
}

/// The patch-size sample values: minimum, midpoint and maximum of the range
/// (deduplicated when the range is degenerate).
///
/// # Panics
///
/// Panics when the range is inverted or `p_min` is zero.
pub fn patch_samples(range: &SampleRange) -> Vec<u32> {
    assert!(range.p_min > 0 && range.p_min <= range.p_max, "invalid patch range");
    let mut out = vec![range.p_min, (range.p_min + range.p_max) / 2, range.p_max];
    out.dedup();
    out
}

/// The full set of sample configurations: every grid sample paired with the
/// three patch samples.
pub fn sample_configurations(range: &SampleRange) -> Vec<BakeConfig> {
    let gs = grid_samples(range);
    let ps = patch_samples(range);
    gs.iter().flat_map(|&g| ps.iter().map(move |&p| BakeConfig::new(g, p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_samples_triple_until_the_maximum() {
        let range = SampleRange { g_min: 16, g_max: 128, p_min: 3, p_max: 45 };
        assert_eq!(grid_samples(&range), vec![16, 48, 128]);
        // Far fewer points than an exhaustive sweep of 113 granularities.
        assert!(grid_samples(&range).len() <= 4);
    }

    #[test]
    fn grid_samples_always_include_both_ends() {
        let range = SampleRange { g_min: 20, g_max: 128, ..SampleRange::default() };
        let gs = grid_samples(&range);
        assert_eq!(*gs.first().unwrap(), 20);
        assert_eq!(*gs.last().unwrap(), 128);
    }

    #[test]
    fn patch_samples_are_min_mid_max() {
        let range = SampleRange { p_min: 3, p_max: 45, ..SampleRange::default() };
        assert_eq!(patch_samples(&range), vec![3, 24, 45]);
        let degenerate = SampleRange { p_min: 7, p_max: 7, ..SampleRange::default() };
        assert_eq!(patch_samples(&degenerate), vec![7]);
    }

    #[test]
    fn sample_configurations_form_the_cartesian_product() {
        let range = SampleRange { g_min: 16, g_max: 128, p_min: 3, p_max: 45 };
        let configs = sample_configurations(&range);
        assert_eq!(configs.len(), 3 * 3);
        assert!(configs.contains(&BakeConfig::new(16, 3)));
        assert!(configs.contains(&BakeConfig::new(128, 45)));
        // The sample count stays tiny compared to the full space
        // (113 × 43 ≈ 4900 configurations), which is the whole point.
        assert!(configs.len() < 20);
    }

    #[test]
    #[should_panic(expected = "invalid grid range")]
    fn inverted_grid_range_panics() {
        let _ = grid_samples(&SampleRange { g_min: 64, g_max: 32, p_min: 3, p_max: 5 });
    }
}
