//! Variable-step selection of profiling sample points.
//!
//! "To further minimize the number of sampling points for curve fitting, we
//! design a variable step-size searching strategy within NeRF's configuration
//! space. Specifically, for selecting the g values of the sample points, the
//! step size is 2·g′, where g′ represents the value of the previous sample
//! point. For each g value, we select the maximum, minimum, and midpoint
//! values of the patch size range as three distinct p values." (paper §III-B)

use nerflex_bake::BakeConfig;

/// The configuration-space bounds used when picking sample points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRange {
    /// Minimum mesh granularity.
    pub g_min: u32,
    /// Maximum mesh granularity.
    pub g_max: u32,
    /// Minimum patch size.
    pub p_min: u32,
    /// Maximum patch size.
    pub p_max: u32,
}

impl Default for SampleRange {
    fn default() -> Self {
        Self {
            g_min: BakeConfig::MIN_GRID,
            g_max: BakeConfig::MAX_GRID,
            p_min: BakeConfig::MIN_PATCH,
            p_max: BakeConfig::MAX_PATCH,
        }
    }
}

/// The grid-granularity sample values produced by the variable-step search:
/// starting from `g_min`, each step adds `2·g_prev` (i.e. the next value is
/// `3·g_prev`), and `g_max` is always included so the fit is anchored at both
/// ends of the range.
///
/// # Panics
///
/// Panics when the range is inverted or `g_min` is zero.
pub fn grid_samples(range: &SampleRange) -> Vec<u32> {
    assert!(range.g_min > 0 && range.g_min <= range.g_max, "invalid grid range");
    let mut out = Vec::new();
    let mut g = range.g_min;
    while g < range.g_max {
        out.push(g);
        // Step size is twice the previous sample value.
        g += 2 * g;
    }
    out.push(range.g_max);
    out
}

/// The patch-size sample values: minimum, midpoint and maximum of the range
/// (deduplicated when the range is degenerate).
///
/// # Panics
///
/// Panics when the range is inverted or `p_min` is zero.
pub fn patch_samples(range: &SampleRange) -> Vec<u32> {
    assert!(range.p_min > 0 && range.p_min <= range.p_max, "invalid patch range");
    let mut out = vec![range.p_min, (range.p_min + range.p_max) / 2, range.p_max];
    out.dedup();
    out
}

/// The full set of sample configurations: every grid sample paired with the
/// three patch samples.
pub fn sample_configurations(range: &SampleRange) -> Vec<BakeConfig> {
    let gs = grid_samples(range);
    let ps = patch_samples(range);
    gs.iter().flat_map(|&g| ps.iter().map(move |&p| BakeConfig::new(g, p))).collect()
}

/// The splat-family sample axis: a fixed extraction grid and a geometric
/// ladder of splat counts. `steps == 0` (the default) disables splat
/// profiling entirely — the sample plan then contains only mesh-family
/// configurations and the object gets no splat models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplatSampleRange {
    /// Extraction grid used for every splat sample.
    pub grid: u32,
    /// Minimum splat count.
    pub count_min: u32,
    /// Maximum splat count.
    pub count_max: u32,
    /// Number of sampled counts (0 disables the splat axis).
    pub steps: u32,
}

impl Default for SplatSampleRange {
    fn default() -> Self {
        Self {
            grid: 32,
            count_min: BakeConfig::MIN_SPLATS,
            count_max: BakeConfig::MAX_SPLATS,
            steps: 0,
        }
    }
}

impl SplatSampleRange {
    /// A reduced-cost enabled preset matching [`SampleRange`]'s quick
    /// bounds: a small extraction grid and three geometrically spaced
    /// counts. The top count stays below a typical object's boundary-seed
    /// budget at this grid, so extraction never saturates and the linear
    /// size fit sees truly linear samples.
    pub fn quick() -> Self {
        Self { grid: 24, count_min: 128, count_max: 1024, steps: 3 }
    }
}

/// The splat-count sample values: `steps` points spaced geometrically from
/// `count_min` to `count_max` (both anchored exactly), deduplicated. Empty
/// when `steps == 0`. Quality saturates in the count like it does in `(g,
/// p)`, so a geometric ladder concentrates samples where the curve bends —
/// the same reasoning as the variable-step grid search.
///
/// # Panics
///
/// Panics when the range is inverted or `count_min` is zero (and `steps > 0`).
pub fn splat_count_samples(range: &SplatSampleRange) -> Vec<u32> {
    if range.steps == 0 {
        return Vec::new();
    }
    assert!(range.count_min > 0 && range.count_min <= range.count_max, "invalid splat count range");
    if range.steps == 1 || range.count_min == range.count_max {
        return vec![range.count_max];
    }
    let ratio =
        (range.count_max as f64 / range.count_min as f64).powf(1.0 / (range.steps - 1) as f64);
    let mut out: Vec<u32> = (0..range.steps)
        .map(|i| (range.count_min as f64 * ratio.powi(i as i32)).round() as u32)
        .collect();
    *out.first_mut().expect("steps > 0") = range.count_min;
    *out.last_mut().expect("steps > 0") = range.count_max;
    out.dedup();
    out
}

/// The splat-family sample configurations for a range (empty when the axis
/// is disabled).
pub fn splat_sample_configurations(range: &SplatSampleRange) -> Vec<BakeConfig> {
    splat_count_samples(range)
        .into_iter()
        .map(|count| BakeConfig::splat(range.grid, count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_samples_triple_until_the_maximum() {
        let range = SampleRange { g_min: 16, g_max: 128, p_min: 3, p_max: 45 };
        assert_eq!(grid_samples(&range), vec![16, 48, 128]);
        // Far fewer points than an exhaustive sweep of 113 granularities.
        assert!(grid_samples(&range).len() <= 4);
    }

    #[test]
    fn grid_samples_always_include_both_ends() {
        let range = SampleRange { g_min: 20, g_max: 128, ..SampleRange::default() };
        let gs = grid_samples(&range);
        assert_eq!(*gs.first().unwrap(), 20);
        assert_eq!(*gs.last().unwrap(), 128);
    }

    #[test]
    fn patch_samples_are_min_mid_max() {
        let range = SampleRange { p_min: 3, p_max: 45, ..SampleRange::default() };
        assert_eq!(patch_samples(&range), vec![3, 24, 45]);
        let degenerate = SampleRange { p_min: 7, p_max: 7, ..SampleRange::default() };
        assert_eq!(patch_samples(&degenerate), vec![7]);
    }

    #[test]
    fn sample_configurations_form_the_cartesian_product() {
        let range = SampleRange { g_min: 16, g_max: 128, p_min: 3, p_max: 45 };
        let configs = sample_configurations(&range);
        assert_eq!(configs.len(), 3 * 3);
        assert!(configs.contains(&BakeConfig::new(16, 3)));
        assert!(configs.contains(&BakeConfig::new(128, 45)));
        // The sample count stays tiny compared to the full space
        // (113 × 43 ≈ 4900 configurations), which is the whole point.
        assert!(configs.len() < 20);
    }

    #[test]
    #[should_panic(expected = "invalid grid range")]
    fn inverted_grid_range_panics() {
        let _ = grid_samples(&SampleRange { g_min: 64, g_max: 32, p_min: 3, p_max: 5 });
    }

    #[test]
    fn splat_axis_is_disabled_by_default() {
        assert_eq!(SplatSampleRange::default().steps, 0);
        assert!(splat_count_samples(&SplatSampleRange::default()).is_empty());
        assert!(splat_sample_configurations(&SplatSampleRange::default()).is_empty());
    }

    #[test]
    fn splat_counts_are_geometric_and_anchored() {
        let range = SplatSampleRange { grid: 24, count_min: 64, count_max: 16384, steps: 5 };
        let counts = splat_count_samples(&range);
        assert_eq!(counts.len(), 5);
        assert_eq!(*counts.first().unwrap(), 64);
        assert_eq!(*counts.last().unwrap(), 16384);
        // Geometric spacing: each step multiplies by ~the same ratio.
        for window in counts.windows(2) {
            let ratio = window[1] as f64 / window[0] as f64;
            assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
        }
    }

    #[test]
    fn splat_sample_configurations_carry_the_range_grid() {
        let range = SplatSampleRange::quick();
        let configs = splat_sample_configurations(&range);
        assert_eq!(configs.len(), 3);
        for config in &configs {
            assert_eq!(config.grid, range.grid);
            assert!(config.splat_count().is_some());
            assert!(config.is_in_range());
        }
        assert_eq!(configs[0].splat_count(), Some(128));
        assert_eq!(configs[2].splat_count(), Some(1024));
    }

    #[test]
    fn degenerate_splat_ranges_collapse_cleanly() {
        let one = SplatSampleRange { grid: 20, count_min: 512, count_max: 512, steps: 4 };
        assert_eq!(splat_count_samples(&one), vec![512]);
        let single = SplatSampleRange { grid: 20, count_min: 64, count_max: 4096, steps: 1 };
        assert_eq!(splat_count_samples(&single), vec![4096]);
    }

    #[test]
    #[should_panic(expected = "invalid splat count range")]
    fn inverted_splat_range_panics() {
        let _ = splat_count_samples(&SplatSampleRange {
            grid: 24,
            count_min: 4096,
            count_max: 64,
            steps: 3,
        });
    }
}
