//! Per-object profiles: sample, measure, fit.

use crate::fit::{fit_quality_model, fit_size_model, fit_splat_models};
use crate::measurement::{Measurement, MeasurementSettings};
use crate::model::{ProfileModels, QualityModel, SizeModel, SizeQualityModel, SplatModels};
use crate::sampling::{
    sample_configurations, splat_sample_configurations, SampleRange, SplatSampleRange,
};
use nerflex_bake::{BakeCache, BakeConfig};
use nerflex_scene::object::ObjectModel;
use serde::{Deserialize, Serialize};

/// Options controlling profile construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProfilerOptions {
    /// Configuration-space bounds sampled by the variable-step search.
    pub range: SampleRange,
    /// Splat-family sample axis. Disabled by default (`steps == 0`): mesh-only
    /// pipelines pay nothing and get profiles without splat models.
    pub splats: SplatSampleRange,
    /// Probe-view settings for the sample measurements.
    pub measurement: MeasurementSettings,
}

impl ProfilerOptions {
    /// A reduced-cost preset used by tests and quick examples: a smaller
    /// configuration range and low-resolution probes.
    pub fn quick() -> Self {
        Self {
            range: SampleRange { g_min: 10, g_max: 40, p_min: 3, p_max: 9 },
            splats: SplatSampleRange::default(),
            measurement: MeasurementSettings {
                views: 2,
                resolution: 56,
                ..MeasurementSettings::default()
            },
        }
    }

    /// [`ProfilerOptions::quick`] with the splat-family sample axis enabled
    /// at its quick preset — profiles then carry fitted splat models too.
    pub fn quick_with_splats() -> Self {
        Self { splats: SplatSampleRange::quick(), ..Self::quick() }
    }

    /// Returns the options with the given splat sample axis.
    pub fn with_splats(mut self, splats: SplatSampleRange) -> Self {
        self.splats = splats;
        self
    }
}

/// A fitted per-object profile: the white-box size/quality models plus the
/// sample measurements they were fitted from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectProfile {
    /// Instance id of the object within its scene.
    pub object_id: usize,
    /// Object name.
    pub name: String,
    /// Fitted size model (MB).
    pub size_model: SizeModel,
    /// Fitted quality model (SSIM).
    pub quality_model: QualityModel,
    /// Fitted splat-family models, present only when the profiler sampled
    /// the splat axis ([`ProfilerOptions::splats`]). Selectors skip splat
    /// candidates for objects without them.
    pub splat_models: Option<SplatModels>,
    /// The sample measurements used for fitting.
    pub samples: Vec<Measurement>,
}

impl ObjectProfile {
    /// Predicted baked-data size (MB) for a configuration.
    pub fn predict_size(&self, g: u32, p: u32) -> f64 {
        self.size_model.predict(g, p)
    }

    /// Predicted rendering quality (SSIM) for a configuration.
    pub fn predict_quality(&self, g: u32, p: u32) -> f64 {
        self.quality_model.predict(g, p)
    }

    /// Family-aware prediction: `(size MB, SSIM)` for any configuration.
    /// Mesh configurations always predict; splat configurations predict only
    /// when the profile carries splat models (`None` otherwise, so selectors
    /// can skip candidates the profiler never sampled).
    pub fn predict_config(&self, config: &BakeConfig) -> Option<(f64, f64)> {
        match config.splat_count() {
            None => Some((
                self.predict_size(config.grid, config.patch),
                self.predict_quality(config.grid, config.patch),
            )),
            Some(count) => {
                self.splat_models.map(|m| (m.predict_size(count), m.predict_quality(count)))
            }
        }
    }

    /// The paired models (for callers that only need the closed forms).
    pub fn models(&self) -> ProfileModels {
        ProfileModels { size: self.size_model, quality: self.quality_model }
    }

    /// The smallest predicted size over a candidate configuration list —
    /// the `min_{θ∈C} f_s(θ)` term of the feasibility condition (Eq. 3).
    pub fn min_size_over(&self, configs: &[(u32, u32)]) -> f64 {
        configs.iter().map(|&(g, p)| self.predict_size(g, p)).fold(f64::INFINITY, f64::min)
    }
}

impl SizeQualityModel for ObjectProfile {
    fn predict_size(&self, g: u32, p: u32) -> f64 {
        ObjectProfile::predict_size(self, g, p)
    }
    fn predict_quality(&self, g: u32, p: u32) -> f64 {
        ObjectProfile::predict_quality(self, g, p)
    }
}

/// Builds the profile of one object: pick sample configurations with the
/// variable-step strategy, measure them, and fit both models.
pub fn build_profile(
    model: &ObjectModel,
    object_id: usize,
    options: &ProfilerOptions,
) -> ObjectProfile {
    build_profile_cached(model, object_id, options, None)
}

/// Builds the profile of one object, routing its sample bakes through a
/// shared [`BakeCache`] when one is given. The pipeline engine always passes
/// a cache: every configuration the profiler probes is then already baked if
/// the selector later picks it.
pub fn build_profile_cached(
    model: &ObjectModel,
    object_id: usize,
    options: &ProfilerOptions,
    cache: Option<&BakeCache>,
) -> ObjectProfile {
    build_profile_in(model, object_id, options, cache, None)
}

/// [`build_profile_cached`] with the expensive ray-marched ground truth
/// additionally routed through a shared
/// [`GroundTruthCache`](crate::ground_truth::GroundTruthCache): the pipeline
/// engine passes one per run (persistent when a cache directory is
/// configured), so duplicate objects and repeated runs render each object's
/// probe views once. Cached ground truths are bit-identical to fresh ones,
/// so the resulting profile does not depend on where they came from.
pub fn build_profile_in(
    model: &ObjectModel,
    object_id: usize,
    options: &ProfilerOptions,
    cache: Option<&BakeCache>,
    ground_truth: Option<&crate::ground_truth::GroundTruthCache>,
) -> ObjectProfile {
    build_profile_accounted(model, object_id, options, cache, ground_truth, None)
}

/// [`build_profile_in`] with optional wall-clock accounting of the fused
/// quality-metrics stage ([`crate::measurement::MetricsAccounting`]); the
/// pipeline engine passes one per profiling run and reports its total as the
/// `metrics` stage of its timings.
pub fn build_profile_accounted(
    model: &ObjectModel,
    object_id: usize,
    options: &ProfilerOptions,
    cache: Option<&BakeCache>,
    ground_truth: Option<&crate::ground_truth::GroundTruthCache>,
    accounting: Option<&crate::measurement::MetricsAccounting>,
) -> ObjectProfile {
    let mut configs = sample_configurations(&options.range);
    configs.extend(splat_sample_configurations(&options.splats));
    let samples = crate::measurement::measure_object_accounted(
        model,
        &configs,
        &options.measurement,
        cache,
        ground_truth,
        accounting,
    );
    build_profile_from_measurements(model, object_id, samples)
}

/// Builds a profile directly from existing measurements (used when the
/// caller already has measurements, e.g. the error-analysis benchmark).
///
/// The mesh `(g, p)` models are fitted from the mesh-family samples only;
/// splat-family samples (when present) fit their own count-axis models, so
/// mixing families never perturbs either fit.
pub fn build_profile_from_measurements(
    model: &ObjectModel,
    object_id: usize,
    samples: Vec<Measurement>,
) -> ObjectProfile {
    let mesh_samples: Vec<Measurement> =
        samples.iter().filter(|m| m.config.splat_count().is_none()).copied().collect();
    let size_model = fit_size_model(&mesh_samples);
    let quality_model = fit_quality_model(&mesh_samples);
    let splat_models = fit_splat_models(&samples);
    ObjectProfile {
        object_id,
        name: model.name.clone(),
        size_model,
        quality_model,
        splat_models,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;

    #[test]
    fn quick_profile_is_sane_and_monotone() {
        let model = CanonicalObject::Hotdog.build();
        let profile = build_profile(&model, 0, &ProfilerOptions::quick());
        assert_eq!(profile.name, "hotdog");
        assert!(!profile.samples.is_empty());
        // Predictions are monotone in both knobs over the profiled range.
        assert!(profile.predict_size(40, 9) > profile.predict_size(10, 3));
        assert!(profile.predict_quality(40, 9) >= profile.predict_quality(10, 3));
        // Quality stays a valid SSIM.
        assert!(profile.predict_quality(40, 9) <= 1.0);
        assert!(profile.predict_quality(10, 3) >= 0.0);
    }

    #[test]
    fn profile_predicts_its_own_samples_reasonably() {
        let model = CanonicalObject::Chair.build();
        let profile = build_profile(&model, 2, &ProfilerOptions::quick());
        for sample in &profile.samples {
            let ps = profile.predict_size(sample.config.grid, sample.config.patch);
            let pq = profile.predict_quality(sample.config.grid, sample.config.patch);
            assert!(
                (ps - sample.size_mb).abs() < sample.size_mb.max(1.0) * 0.6,
                "size prediction off: {ps} vs {}",
                sample.size_mb
            );
            assert!(
                (pq - sample.ssim).abs() < 0.15,
                "quality prediction off: {pq} vs {}",
                sample.ssim
            );
        }
    }

    #[test]
    fn splat_axis_fits_splat_models_without_perturbing_mesh_models() {
        let model = CanonicalObject::Hotdog.build();
        let plain = build_profile(&model, 0, &ProfilerOptions::quick());
        assert!(plain.splat_models.is_none(), "splat axis is off by default");
        let with_splats = build_profile(&model, 0, &ProfilerOptions::quick_with_splats());
        let splat_models = with_splats.splat_models.expect("splat axis was enabled");
        // The mesh samples are identical in both runs and the mesh fit only
        // sees mesh samples, so the (g, p) models must match exactly.
        assert_eq!(plain.size_model, with_splats.size_model);
        assert_eq!(plain.quality_model, with_splats.quality_model);
        // The splat models behave physically: linear size, saturating quality.
        assert!(splat_models.predict_size(8192) > splat_models.predict_size(128));
        assert!(splat_models.predict_quality(8192) >= splat_models.predict_quality(128));
        assert!(splat_models.predict_quality(8192) <= 1.0);
    }

    #[test]
    fn predict_config_dispatches_on_the_family() {
        let model = CanonicalObject::Chair.build();
        let profile = build_profile(&model, 1, &ProfilerOptions::quick_with_splats());
        let (mesh_size, mesh_quality) =
            profile.predict_config(&BakeConfig::new(20, 5)).expect("mesh always predicts");
        assert!((mesh_size - profile.predict_size(20, 5)).abs() < 1e-12);
        assert!((mesh_quality - profile.predict_quality(20, 5)).abs() < 1e-12);
        let (splat_size, splat_quality) =
            profile.predict_config(&BakeConfig::splat(24, 2048)).expect("splat models fitted");
        assert!(splat_size > 0.0);
        assert!(splat_quality > 0.0 && splat_quality <= 1.0);
        // A profile without splat models declines splat configurations.
        let plain = build_profile(&model, 1, &ProfilerOptions::quick());
        assert!(plain.predict_config(&BakeConfig::splat(24, 2048)).is_none());
        assert!(plain.predict_config(&BakeConfig::new(20, 5)).is_some());
    }

    #[test]
    fn min_size_over_picks_the_cheapest_configuration() {
        let model = CanonicalObject::Hotdog.build();
        let profile = build_profile(&model, 0, &ProfilerOptions::quick());
        let configs = vec![(10u32, 3u32), (20, 5), (40, 9)];
        let min_size = profile.min_size_over(&configs);
        assert!((min_size - profile.predict_size(10, 3)).abs() < 1e-9);
    }
}
