//! # nerflex-profile
//!
//! The lightweight white-box profiler (paper §III-B): closed-form models
//! mapping a baking configuration θ = (g, p) to predicted baked-data size and
//! rendering quality, fitted from a handful of sample bakes chosen by a
//! variable-step search.
//!
//! The paper's Eq. (1) as printed is inconsistent with its own Fig. 3 (see
//! DESIGN.md, "Eq. (1) transcription"): we implement the physically
//! consistent forms —
//!
//! * size grows polynomially: `S(g, p) = k·(g+a)³·(p+b)² + m`,
//! * quality saturates:        `Q(g, p) = q∞ − k′ / ((g+a′)³·(p+b′)²)`.
//!
//! ```
//! use nerflex_profile::model::{QualityModel, SizeModel};
//!
//! let size = SizeModel { k: 2.0e-8, a: 0.0, b: 0.0, m: 1.0 };
//! assert!(size.predict(128, 17) > size.predict(64, 17));
//! let quality = QualityModel { q_inf: 0.9, k: 5.0e4, a: 0.0, b: 0.0 };
//! assert!(quality.predict(128, 17) > quality.predict(32, 5));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod fit;
pub mod ground_truth;
pub mod measurement;
pub mod model;
pub mod profiler;
pub mod sampling;

pub use ground_truth::{GroundTruthCache, GroundTruthStats};
pub use measurement::{
    measure_object, measure_object_accounted, measure_object_cached, measure_object_in,
    DispatchMode, Measurement, MetricsAccounting,
};
pub use model::{
    QualityModel, SizeModel, SizeQualityModel, SplatModels, SplatQualityModel, SplatSizeModel,
};
pub use profiler::{
    build_profile, build_profile_accounted, build_profile_cached, build_profile_in, ObjectProfile,
    ProfilerOptions,
};
pub use sampling::{sample_configurations, splat_sample_configurations, SplatSampleRange};
