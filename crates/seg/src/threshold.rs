//! The segmentation decision rule.
//!
//! "After determining the maximum frequency for each corresponding object, a
//! threshold frequency value is established to decide which objects warrant
//! individual NeRF representations. If an object's maximum frequency exceeds
//! this threshold, it is assigned a dedicated NeRF. Otherwise, it is
//! represented collectively with other objects ... This threshold can be
//! adjusted by users." (paper §III-A)
//!
//! The evaluation sets "the lowest maximum frequency among all the objects"
//! as the threshold so every object receives its own NeRF — that is the
//! [`ThresholdRule::LowestMaxFrequency`] default here.

use crate::frequency::FrequencyRecord;
use nerflex_image::Interpolation;
use serde::{Deserialize, Serialize};

/// How the frequency threshold α is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ThresholdRule {
    /// α = the smallest maximum frequency across objects, so every detected
    /// object is assigned a dedicated NeRF (the paper's evaluation setting).
    #[default]
    LowestMaxFrequency,
    /// A fixed user-supplied threshold.
    Fixed(f64),
    /// α = the median of the objects' maximum frequencies (roughly half of
    /// the objects get dedicated NeRFs) — used by ablations.
    MedianMaxFrequency,
}

/// Which per-object statistic the threshold is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FrequencyStatistic {
    /// The maximum frequency over views (the paper's choice: it "better
    /// reflects the importance of an object to the user's viewing experience").
    #[default]
    Maximum,
    /// The mean frequency over views (the alternative the paper argues against;
    /// kept for the ablation benchmark).
    Mean,
}

/// Full segmentation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentationPolicy {
    /// How the threshold α is derived.
    pub rule: ThresholdRule,
    /// Which statistic is thresholded.
    pub statistic: FrequencyStatistic,
    /// Interpolation kernel used when enlarging object crops.
    pub interpolation: Interpolation,
}

impl Default for SegmentationPolicy {
    fn default() -> Self {
        Self {
            rule: ThresholdRule::LowestMaxFrequency,
            statistic: FrequencyStatistic::Maximum,
            interpolation: Interpolation::Bilinear,
        }
    }
}

/// The outcome of thresholding: which objects get dedicated NeRFs and which
/// are represented jointly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentationDecision {
    /// The threshold value α that was applied.
    pub threshold: f64,
    /// Objects assigned a dedicated NeRF (instance ids).
    pub individual: Vec<usize>,
    /// Objects grouped into the shared "joint NeRF" (instance ids).
    pub joint: Vec<usize>,
}

impl SegmentationDecision {
    /// Total number of NeRF networks the decision implies (dedicated ones
    /// plus one joint network when the joint group is non-empty).
    pub fn network_count(&self) -> usize {
        self.individual.len() + usize::from(!self.joint.is_empty())
    }
}

impl SegmentationPolicy {
    /// Applies the policy to the measured frequency records.
    pub fn decide(&self, records: &[FrequencyRecord]) -> SegmentationDecision {
        if records.is_empty() {
            return SegmentationDecision::default();
        }
        let stat = |r: &FrequencyRecord| match self.statistic {
            FrequencyStatistic::Maximum => r.max_frequency,
            FrequencyStatistic::Mean => r.mean_frequency,
        };
        let threshold = match self.rule {
            ThresholdRule::Fixed(value) => value,
            ThresholdRule::LowestMaxFrequency => {
                records.iter().map(stat).fold(f64::INFINITY, f64::min)
            }
            ThresholdRule::MedianMaxFrequency => {
                let mut values: Vec<f64> = records.iter().map(stat).collect();
                values.sort_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));
                values[values.len() / 2]
            }
        };
        let mut individual = Vec::new();
        let mut joint = Vec::new();
        for record in records {
            // "If an object's maximum frequency exceeds this threshold, it is
            // assigned a dedicated NeRF"; ties count as exceeding so the
            // evaluation's lowest-max rule assigns every object its own NeRF.
            if stat(record) >= threshold {
                individual.push(record.object_id);
            } else {
                joint.push(record.object_id);
            }
        }
        SegmentationDecision { threshold, individual, joint }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, max: f64, mean: f64) -> FrequencyRecord {
        FrequencyRecord {
            object_id: id,
            per_view: vec![Some(max)],
            max_frequency: max,
            mean_frequency: mean,
        }
    }

    #[test]
    fn lowest_max_rule_gives_every_object_a_network() {
        let records = vec![record(0, 0.2, 0.1), record(1, 0.5, 0.3), record(2, 0.8, 0.6)];
        let decision = SegmentationPolicy::default().decide(&records);
        assert_eq!(decision.individual, vec![0, 1, 2]);
        assert!(decision.joint.is_empty());
        assert_eq!(decision.network_count(), 3);
        assert!((decision.threshold - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fixed_threshold_splits_objects() {
        let records = vec![record(0, 0.2, 0.1), record(1, 0.5, 0.3), record(2, 0.8, 0.6)];
        let policy =
            SegmentationPolicy { rule: ThresholdRule::Fixed(0.4), ..SegmentationPolicy::default() };
        let decision = policy.decide(&records);
        assert_eq!(decision.individual, vec![1, 2]);
        assert_eq!(decision.joint, vec![0]);
        assert_eq!(decision.network_count(), 3); // two dedicated + one joint
    }

    #[test]
    fn median_rule_keeps_roughly_half() {
        let records: Vec<FrequencyRecord> =
            (0..5).map(|i| record(i, 0.1 + 0.2 * i as f64, 0.05)).collect();
        let policy = SegmentationPolicy {
            rule: ThresholdRule::MedianMaxFrequency,
            ..SegmentationPolicy::default()
        };
        let decision = policy.decide(&records);
        assert_eq!(decision.individual.len(), 3);
        assert_eq!(decision.joint.len(), 2);
    }

    #[test]
    fn mean_statistic_changes_the_decision() {
        // Object 1 has a high peak but a low mean; with the mean statistic and
        // a fixed threshold it no longer qualifies — the ablation the paper
        // motivates its max-frequency choice with.
        let records = vec![record(0, 0.9, 0.85), record(1, 0.9, 0.2)];
        let policy_max =
            SegmentationPolicy { rule: ThresholdRule::Fixed(0.5), ..SegmentationPolicy::default() };
        let policy_mean = SegmentationPolicy {
            rule: ThresholdRule::Fixed(0.5),
            statistic: FrequencyStatistic::Mean,
            ..SegmentationPolicy::default()
        };
        assert_eq!(policy_max.decide(&records).individual, vec![0, 1]);
        assert_eq!(policy_mean.decide(&records).individual, vec![0]);
    }

    #[test]
    fn empty_records_yield_empty_decision() {
        let decision = SegmentationPolicy::default().decide(&[]);
        assert_eq!(decision.network_count(), 0);
        assert!(decision.individual.is_empty() && decision.joint.is_empty());
    }
}
