//! Building per-sub-scene training sets from the segmentation decision.
//!
//! Objects assigned a dedicated NeRF receive a training set of enlarged
//! crops (one per view where they are visible); objects below the threshold
//! are grouped into a single "joint NeRF" trained on the original frames.

use crate::crop::{crop_and_enlarge, EnlargedCrop};
use crate::detect::DetectedObject;
use crate::frequency::FrequencyRecord;
use crate::threshold::{SegmentationDecision, SegmentationPolicy};
use nerflex_image::Image;
use nerflex_scene::dataset::Dataset;

/// The training set prepared for one NeRF network (a dedicated object or the
/// joint group).
#[derive(Debug, Clone)]
pub struct SubSceneDataset {
    /// Instance ids covered by this network.
    pub object_ids: Vec<usize>,
    /// `true` for a dedicated single-object network, `false` for the joint one.
    pub dedicated: bool,
    /// Training images for this network.
    pub images: Vec<Image>,
    /// Mean enlargement factor applied to the crops (1.0 for the joint set).
    pub mean_scale_factor: f32,
}

/// Output of the full segmentation module.
#[derive(Debug, Clone)]
pub struct SegmentationResult {
    /// Per-object frequency records (detection + analysis output).
    pub records: Vec<FrequencyRecord>,
    /// The thresholding decision.
    pub decision: SegmentationDecision,
    /// One training set per NeRF network implied by the decision.
    pub sub_scenes: Vec<SubSceneDataset>,
}

impl SegmentationResult {
    /// The sub-scene dataset dedicated to `object_id`, if it has one.
    pub fn dedicated_for(&self, object_id: usize) -> Option<&SubSceneDataset> {
        self.sub_scenes.iter().find(|s| s.dedicated && s.object_ids == [object_id])
    }

    /// Total number of prepared training images across all sub-scenes.
    pub fn total_training_images(&self) -> usize {
        self.sub_scenes.iter().map(|s| s.images.len()).sum()
    }
}

/// Builds the per-network training sets from the detection and decision.
pub fn build_partition(
    dataset: &Dataset,
    detections: &[DetectedObject],
    records: &[FrequencyRecord],
    decision: &SegmentationDecision,
    policy: &SegmentationPolicy,
) -> SegmentationResult {
    let mut sub_scenes = Vec::new();

    for &object_id in &decision.individual {
        let Some(detection) = detections.iter().find(|d| d.object_id == object_id) else {
            continue;
        };
        let mut images = Vec::new();
        let mut scale_sum = 0.0f32;
        for (view, mask) in dataset.train.iter().zip(&detection.masks) {
            if let Some(mask) = mask {
                if let Some(EnlargedCrop { image, scale_factor, .. }) =
                    crop_and_enlarge(&view.image, mask, policy.interpolation)
                {
                    scale_sum += scale_factor;
                    images.push(image);
                }
            }
        }
        let count = images.len().max(1) as f32;
        sub_scenes.push(SubSceneDataset {
            object_ids: vec![object_id],
            dedicated: true,
            mean_scale_factor: scale_sum / count,
            images,
        });
    }

    if !decision.joint.is_empty() {
        sub_scenes.push(SubSceneDataset {
            object_ids: decision.joint.clone(),
            dedicated: false,
            images: dataset.train.iter().map(|v| v.image.clone()).collect(),
            mean_scale_factor: 1.0,
        });
    }

    SegmentationResult { records: records.to_vec(), decision: decision.clone(), sub_scenes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment;
    use crate::threshold::ThresholdRule;
    use nerflex_scene::object::CanonicalObject;
    use nerflex_scene::scene::Scene;

    fn dataset(objects: &[CanonicalObject]) -> Dataset {
        let scene = Scene::with_objects(objects, 13);
        Dataset::generate(&scene, 4, 1, 56, 56)
    }

    #[test]
    fn default_policy_dedicates_every_object() {
        let ds = dataset(&[CanonicalObject::Hotdog, CanonicalObject::Lego]);
        let result = segment(&ds, &SegmentationPolicy::default());
        assert_eq!(result.decision.individual.len(), 2);
        assert!(result.decision.joint.is_empty());
        assert_eq!(result.sub_scenes.len(), 2);
        for sub in &result.sub_scenes {
            assert!(sub.dedicated);
            assert!(!sub.images.is_empty());
            assert!(sub.mean_scale_factor >= 1.0);
            // Training images keep the dataset resolution.
            assert_eq!(sub.images[0].width(), 56);
        }
        assert!(result.total_training_images() > 0);
    }

    #[test]
    fn fixed_high_threshold_creates_a_joint_group() {
        let ds = dataset(&[CanonicalObject::Hotdog, CanonicalObject::Lego]);
        let policy = SegmentationPolicy {
            rule: ThresholdRule::Fixed(10.0), // impossible to exceed
            ..SegmentationPolicy::default()
        };
        let result = segment(&ds, &policy);
        assert!(result.decision.individual.is_empty());
        assert_eq!(result.decision.joint.len(), 2);
        assert_eq!(result.sub_scenes.len(), 1);
        let joint = &result.sub_scenes[0];
        assert!(!joint.dedicated);
        assert_eq!(joint.images.len(), ds.train.len());
        assert_eq!(joint.mean_scale_factor, 1.0);
    }

    #[test]
    fn dedicated_lookup_finds_the_right_subscene() {
        let ds = dataset(&[CanonicalObject::Chair, CanonicalObject::Ship]);
        let result = segment(&ds, &SegmentationPolicy::default());
        let sub = result.dedicated_for(1).expect("object 1 has a dedicated sub-scene");
        assert_eq!(sub.object_ids, vec![1]);
        assert!(result.dedicated_for(99).is_none());
    }

    #[test]
    fn dedicated_training_images_magnify_the_object() {
        // At least one dedicated sub-scene should have a mean scale factor
        // noticeably above 1: the objects occupy only part of each frame.
        let ds = dataset(&[CanonicalObject::Hotdog, CanonicalObject::Chair]);
        let result = segment(&ds, &SegmentationPolicy::default());
        let max_scale =
            result.sub_scenes.iter().map(|s| s.mean_scale_factor).fold(0.0f32, f32::max);
        assert!(max_scale > 1.3, "expected real enlargement, got {max_scale}");
    }
}
