//! Per-object detail-frequency analysis.
//!
//! "For each detected object in each image, the detail frequency of the
//! object within that image is also calculated and recorded. Then we use the
//! maximum frequency recorded for each object to determine whether it merits
//! representation by a separate network." (paper §III-A)

use crate::detect::DetectedObject;
use nerflex_image::frequency::analyze_masked;
use nerflex_scene::dataset::Dataset;

/// The recorded frequency statistics of one detected object.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyRecord {
    /// Instance id of the object.
    pub object_id: usize,
    /// Detail frequency measured in each training view where the object is
    /// visible (index-aligned with the detection's masks; `None` when the
    /// object is absent from the view).
    pub per_view: Vec<Option<f64>>,
    /// The maximum recorded frequency — the paper's segmentation indicator.
    pub max_frequency: f64,
    /// The mean recorded frequency — used by the "average frequency"
    /// ablation the paper argues against.
    pub mean_frequency: f64,
}

impl FrequencyRecord {
    /// Number of views contributing a measurement.
    pub fn measured_views(&self) -> usize {
        self.per_view.iter().filter(|v| v.is_some()).count()
    }
}

/// Computes the per-view and aggregate detail frequencies for every detected
/// object.
///
/// # Panics
///
/// Panics when a detection's mask list does not match the number of training
/// views.
pub fn analyze_objects(dataset: &Dataset, detections: &[DetectedObject]) -> Vec<FrequencyRecord> {
    detections
        .iter()
        .map(|detection| {
            assert_eq!(
                detection.masks.len(),
                dataset.train.len(),
                "detection masks must align with training views"
            );
            let per_view: Vec<Option<f64>> = detection
                .masks
                .iter()
                .zip(&dataset.train)
                .map(|(mask, view)| {
                    mask.as_ref().map(|m| analyze_masked(&view.image, m).detail_frequency())
                })
                .collect();
            let measured: Vec<f64> = per_view.iter().flatten().copied().collect();
            let max_frequency = measured.iter().cloned().fold(0.0f64, f64::max);
            let mean_frequency = if measured.is_empty() {
                0.0
            } else {
                measured.iter().sum::<f64>() / measured.len() as f64
            };
            FrequencyRecord {
                object_id: detection.object_id,
                per_view,
                max_frequency,
                mean_frequency,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_objects;
    use nerflex_scene::object::CanonicalObject;
    use nerflex_scene::scene::Scene;

    fn analyzed(objects: &[CanonicalObject], seed: u64) -> Vec<FrequencyRecord> {
        let scene = Scene::with_objects(objects, seed);
        let ds = Dataset::generate(&scene, 4, 1, 64, 64);
        let det = detect_objects(&ds);
        analyze_objects(&ds, &det)
    }

    #[test]
    fn max_frequency_is_at_least_mean() {
        let records = analyzed(&[CanonicalObject::Hotdog, CanonicalObject::Lego], 5);
        for r in &records {
            assert!(r.max_frequency >= r.mean_frequency);
            assert!(r.max_frequency >= 0.0 && r.max_frequency <= 1.0);
            assert!(r.measured_views() > 0);
        }
    }

    #[test]
    fn detailed_objects_score_higher_than_smooth_ones() {
        // The lego analogue carries dense stud/texture detail; the hotdog is
        // smooth. Their recorded maximum frequencies must reflect that — the
        // heart of the paper's "which objects deserve their own NeRF" rule.
        let records = analyzed(&[CanonicalObject::Hotdog, CanonicalObject::Lego], 11);
        let hotdog = &records[0];
        let lego = &records[1];
        assert!(
            lego.max_frequency > hotdog.max_frequency,
            "lego {} vs hotdog {}",
            lego.max_frequency,
            hotdog.max_frequency
        );
    }

    #[test]
    fn per_view_frequencies_align_with_visibility() {
        let scene = Scene::with_objects(&[CanonicalObject::Chair, CanonicalObject::Ficus], 2);
        let ds = Dataset::generate(&scene, 5, 1, 56, 56);
        let det = detect_objects(&ds);
        let records = analyze_objects(&ds, &det);
        for (record, detection) in records.iter().zip(&det) {
            assert_eq!(record.per_view.len(), detection.masks.len());
            for (freq, mask) in record.per_view.iter().zip(&detection.masks) {
                assert_eq!(freq.is_some(), mask.is_some());
            }
        }
    }

    #[test]
    fn records_are_deterministic() {
        let a = analyzed(&[CanonicalObject::Ship], 9);
        let b = analyzed(&[CanonicalObject::Ship], 9);
        assert_eq!(a, b);
    }
}
