//! # nerflex-seg
//!
//! The detail-based segmentation module (paper §III-A): object detection over
//! the training images, per-object detail-frequency analysis, thresholding on
//! the **maximum** frequency across views, and mask-bounded crop + enlarge of
//! the selected objects to build their dedicated training sets.
//!
//! The paper uses a neural object detector on photographs; here detection
//! reads the per-pixel instance maps of the procedural dataset (a perfect
//! detector — see DESIGN.md). Everything downstream — frequency computation,
//! the max-frequency decision rule, crop enlargement by interpolation — is
//! implemented exactly as described.
//!
//! ```
//! use nerflex_scene::{scene::Scene, object::CanonicalObject, dataset::Dataset};
//! use nerflex_seg::{segment, SegmentationPolicy};
//!
//! let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Lego], 7);
//! let dataset = Dataset::generate(&scene, 4, 1, 48, 48);
//! let result = segment(&dataset, &SegmentationPolicy::default());
//! assert_eq!(result.records.len(), 2);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crop;
pub mod detect;
pub mod frequency;
pub mod partition;
pub mod threshold;

pub use detect::{detect_objects, DetectedObject};
pub use frequency::{analyze_objects, FrequencyRecord};
pub use partition::{SegmentationResult, SubSceneDataset};
pub use threshold::{SegmentationDecision, SegmentationPolicy, ThresholdRule};

use nerflex_scene::dataset::Dataset;

/// Runs the full segmentation module on a dataset: detection → frequency
/// analysis → thresholding → per-object training-set construction.
pub fn segment(dataset: &Dataset, policy: &SegmentationPolicy) -> SegmentationResult {
    let detections = detect_objects(dataset);
    let records = analyze_objects(dataset, &detections);
    let decision = policy.decide(&records);
    partition::build_partition(dataset, &detections, &records, &decision, policy)
}
