//! Mask-bounded cropping and interpolation enlargement.
//!
//! "We extract these objects from each image based on the mask, using its
//! outermost pixels as boundaries. We then appropriately scale these
//! segmented parts using interpolation scaling to create a new image ...
//! we keep the same image size (the same number of pixels) but retain and
//! enlarge the target object, reducing the frequency of details the network
//! needs to learn." (paper §III-A)

use nerflex_image::interp::{resize, Interpolation};
use nerflex_image::{frequency, Image, Mask};

/// An object crop enlarged to the training resolution.
#[derive(Debug, Clone)]
pub struct EnlargedCrop {
    /// The enlarged image (same size as the original training image).
    pub image: Image,
    /// The enlargement factor that was applied (≥ 1).
    pub scale_factor: f32,
    /// Bounding box of the object in the source image `(x0, y0, x1, y1)`.
    pub source_bbox: (usize, usize, usize, usize),
}

/// Crops the object selected by `mask` out of `image` (using the mask's
/// outermost pixels as boundaries, with a small margin) and enlarges it back
/// to the original image size with the given interpolation kernel.
///
/// Returns `None` when the mask is empty.
pub fn crop_and_enlarge(
    image: &Image,
    mask: &Mask,
    interpolation: Interpolation,
) -> Option<EnlargedCrop> {
    let (x0, y0, x1, y1) = mask.bounding_box()?;
    // A one-pixel margin keeps silhouette gradients inside the crop.
    let x0 = x0.saturating_sub(1);
    let y0 = y0.saturating_sub(1);
    let x1 = (x1 + 1).min(image.width());
    let y1 = (y1 + 1).min(image.height());
    let crop = image.crop(x0, y0, x1 - x0, y1 - y0);

    // Enlarge back to the original frame size, preserving aspect ratio by
    // fitting the larger crop dimension (the paper keeps the pixel count of
    // the training image unchanged).
    let scale_x = image.width() as f32 / crop.width() as f32;
    let scale_y = image.height() as f32 / crop.height() as f32;
    let scale_factor = scale_x.min(scale_y).max(1.0);
    let new_w = ((crop.width() as f32 * scale_factor) as usize).clamp(1, image.width());
    let new_h = ((crop.height() as f32 * scale_factor) as usize).clamp(1, image.height());
    let enlarged = resize(&crop, new_w, new_h, interpolation);

    // Letterbox into the full frame with the crop's mean colour so frame
    // statistics are not polluted by an arbitrary background.
    let fill = crop.mean_color();
    let mut framed = Image::new(image.width(), image.height(), fill);
    let off_x = (image.width() - new_w) / 2;
    let off_y = (image.height() - new_h) / 2;
    for y in 0..new_h {
        for x in 0..new_w {
            framed.set(off_x + x, off_y + y, enlarged.get(x, y));
        }
    }
    Some(EnlargedCrop { image: framed, scale_factor, source_bbox: (x0, y0, x1, y1) })
}

/// Measures how much the enlargement reduced the detail frequency the network
/// must learn: returns `(frequency_before, frequency_after)` where "before"
/// is measured on the masked object in the original image and "after" on the
/// enlarged crop.
pub fn frequency_reduction(image: &Image, mask: &Mask, crop: &EnlargedCrop) -> (f64, f64) {
    let before = frequency::analyze_masked(image, mask).detail_frequency();
    let after = frequency::analyze(&crop.image).detail_frequency();
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_image::draw::checkerboard;
    use nerflex_image::Color;

    /// A busy checkered square occupying a small part of an otherwise flat image.
    fn small_busy_object() -> (Image, Mask) {
        let mut image = Image::new(96, 96, Color::gray(0.5));
        let tex = checkerboard(24, 24, 1, Color::BLACK, Color::WHITE);
        for y in 0..24 {
            for x in 0..24 {
                image.set(36 + x, 36 + y, tex.get(x, y));
            }
        }
        let mask = Mask::from_fn(96, 96, |x, y| (36..60).contains(&x) && (36..60).contains(&y));
        (image, mask)
    }

    #[test]
    fn crop_covers_the_object_and_fills_the_frame() {
        let (image, mask) = small_busy_object();
        let crop = crop_and_enlarge(&image, &mask, Interpolation::Bilinear).unwrap();
        assert_eq!(crop.image.width(), 96);
        assert_eq!(crop.image.height(), 96);
        assert!(crop.scale_factor > 3.0, "24px object in a 96px frame should enlarge ~4x");
        let (x0, y0, x1, y1) = crop.source_bbox;
        assert!(x0 <= 36 && y0 <= 36 && x1 >= 60 && y1 >= 60);
    }

    #[test]
    fn enlargement_reduces_detail_frequency() {
        // The core claim of the segmentation design: enlarging the object
        // lowers the spatial frequency of the detail the dedicated NeRF must
        // learn.
        let (image, mask) = small_busy_object();
        let crop = crop_and_enlarge(&image, &mask, Interpolation::Bilinear).unwrap();
        let (before, after) = frequency_reduction(&image, &mask, &crop);
        assert!(after < before, "frequency should drop: {before} -> {after}");
        assert!(before > 0.3, "source object is genuinely high-frequency: {before}");
    }

    #[test]
    fn empty_mask_returns_none() {
        let image = Image::new(32, 32, Color::WHITE);
        assert!(crop_and_enlarge(&image, &Mask::new(32, 32), Interpolation::Bilinear).is_none());
    }

    #[test]
    fn object_already_filling_the_frame_is_not_shrunk() {
        let image = checkerboard(64, 64, 2, Color::BLACK, Color::WHITE);
        let mask = Mask::from_fn(64, 64, |_, _| true);
        let crop = crop_and_enlarge(&image, &mask, Interpolation::Nearest).unwrap();
        assert!((crop.scale_factor - 1.0).abs() < 1e-6);
        assert_eq!(crop.image.width(), 64);
    }

    #[test]
    fn different_kernels_produce_different_enlargements() {
        let (image, mask) = small_busy_object();
        let bilinear = crop_and_enlarge(&image, &mask, Interpolation::Bilinear).unwrap();
        let nearest = crop_and_enlarge(&image, &mask, Interpolation::Nearest).unwrap();
        assert!(nerflex_image::metrics::mse(&bilinear.image, &nearest.image) > 1e-6);
    }
}
