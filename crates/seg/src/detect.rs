//! Object detection over the training images.
//!
//! "Object detection is first applied to all the original training images to
//! detect objects in these images ... and generate a corresponding mask to
//! cover all the pixels they occupy" (paper §III-A). Our detector reads the
//! dataset's per-pixel instance maps — the substitution for the paper's
//! neural detector — and additionally provides a connected-component utility
//! used to reject spurious single-pixel detections, mimicking the
//! post-processing a real detector needs.

use nerflex_image::Mask;
use nerflex_scene::dataset::Dataset;

/// One detected object: its instance id and a mask per training view (the
/// mask is `None` for views where the object is not visible).
#[derive(Debug, Clone)]
pub struct DetectedObject {
    /// Instance id of the object within the scene.
    pub object_id: usize,
    /// Per-training-view masks (index-aligned with `dataset.train`).
    pub masks: Vec<Option<Mask>>,
}

impl DetectedObject {
    /// Number of training views in which the object is visible.
    pub fn visible_view_count(&self) -> usize {
        self.masks.iter().filter(|m| m.is_some()).count()
    }

    /// The largest pixel coverage of the object over all views.
    pub fn max_pixel_count(&self) -> usize {
        self.masks.iter().flatten().map(Mask::count).max().unwrap_or(0)
    }
}

/// Minimum number of pixels for a per-view detection to be kept; smaller
/// blobs are treated as detector noise.
pub const MIN_DETECTION_PIXELS: usize = 9;

/// Detects every object appearing in the dataset's training views.
pub fn detect_objects(dataset: &Dataset) -> Vec<DetectedObject> {
    // Collect the set of object ids seen anywhere in the training views.
    let mut ids: Vec<usize> = dataset.train.iter().flat_map(|v| v.visible_objects()).collect();
    ids.sort_unstable();
    ids.dedup();

    ids.into_iter()
        .map(|object_id| {
            let masks = dataset
                .train
                .iter()
                .map(|view| {
                    let mask = view.object_mask(object_id);
                    (mask.count() >= MIN_DETECTION_PIXELS).then_some(mask)
                })
                .collect();
            DetectedObject { object_id, masks }
        })
        .collect()
}

/// Splits a binary mask into 4-connected components, largest first. Used to
/// discard stray pixels from noisy detections and by the ablation that runs
/// detection without instance maps.
pub fn connected_components(mask: &Mask) -> Vec<Mask> {
    let (w, h) = (mask.width(), mask.height());
    let mut visited = vec![false; w * h];
    let mut components: Vec<Mask> = Vec::new();
    for start_y in 0..h {
        for start_x in 0..w {
            if !mask.get(start_x, start_y) || visited[start_y * w + start_x] {
                continue;
            }
            // Flood fill from this seed.
            let mut component = Mask::new(w, h);
            let mut stack = vec![(start_x, start_y)];
            visited[start_y * w + start_x] = true;
            while let Some((x, y)) = stack.pop() {
                component.set(x, y, true);
                let mut push = |nx: usize, ny: usize, stack: &mut Vec<(usize, usize)>| {
                    if mask.get(nx, ny) && !visited[ny * w + nx] {
                        visited[ny * w + nx] = true;
                        stack.push((nx, ny));
                    }
                };
                if x > 0 {
                    push(x - 1, y, &mut stack);
                }
                if x + 1 < w {
                    push(x + 1, y, &mut stack);
                }
                if y > 0 {
                    push(x, y - 1, &mut stack);
                }
                if y + 1 < h {
                    push(x, y + 1, &mut stack);
                }
            }
            components.push(component);
        }
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.count()));
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use nerflex_scene::object::CanonicalObject;
    use nerflex_scene::scene::Scene;

    fn two_object_dataset() -> Dataset {
        let scene = Scene::with_objects(&[CanonicalObject::Hotdog, CanonicalObject::Chair], 3);
        Dataset::generate(&scene, 4, 1, 56, 56)
    }

    #[test]
    fn detects_every_scene_object() {
        let ds = two_object_dataset();
        let detections = detect_objects(&ds);
        assert_eq!(detections.len(), 2);
        let ids: Vec<usize> = detections.iter().map(|d| d.object_id).collect();
        assert_eq!(ids, vec![0, 1]);
        for d in &detections {
            assert!(d.visible_view_count() > 0, "object {} never visible", d.object_id);
            assert!(d.max_pixel_count() >= MIN_DETECTION_PIXELS);
            assert_eq!(d.masks.len(), ds.train.len());
        }
    }

    #[test]
    fn masks_are_disjoint_between_objects_in_a_view() {
        let ds = two_object_dataset();
        let detections = detect_objects(&ds);
        for v in 0..ds.train.len() {
            if let (Some(a), Some(b)) = (&detections[0].masks[v], &detections[1].masks[v]) {
                assert_eq!(a.intersection(b).count(), 0, "view {v} masks overlap");
            }
        }
    }

    #[test]
    fn connected_components_split_and_order_by_size() {
        let mut mask = Mask::new(16, 16);
        // Large blob (3x4) and small blob (2x2), not touching.
        for y in 1..5 {
            for x in 1..4 {
                mask.set(x, y, true);
            }
        }
        for y in 10..12 {
            for x in 10..12 {
                mask.set(x, y, true);
            }
        }
        let comps = connected_components(&mask);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].count(), 12);
        assert_eq!(comps[1].count(), 4);
        assert_eq!(comps[0].union(&comps[1]).count(), mask.count());
    }

    #[test]
    fn connected_components_of_empty_mask_is_empty() {
        assert!(connected_components(&Mask::new(8, 8)).is_empty());
    }

    #[test]
    fn diagonal_pixels_are_separate_components() {
        let mut mask = Mask::new(4, 4);
        mask.set(0, 0, true);
        mask.set(1, 1, true);
        assert_eq!(connected_components(&mask).len(), 2);
    }
}
