//! Deterministic fault injection for the pipeline's *compute* stages.
//!
//! PR 8 made storage failure a seeded, replayable input
//! ([`nerflex_bake::FaultPlan`]); this module does the same for the four
//! pipeline stages themselves. A [`StageFaultPlan`] reuses the generic
//! [`FaultSchedule`] machinery — one-shot schedule, persistent window,
//! seeded noise, all keyed on per-stage invocation indices — and a
//! [`StageFaultInjector`] threaded through
//! [`PipelineOptions`](crate::pipeline::PipelineOptions) gates every stage
//! entry:
//!
//! - [`StageFaultMode::Panic`] and [`StageFaultMode::Fail`] unwind with a
//!   typed [`StageFaultPanic`] payload. The service's panic classifier
//!   downcasts it into a per-request
//!   [`PipelineError::Stage`](crate::pipeline::PipelineError::Stage)
//!   outcome — exercising the same `classify_panic`/stage-cell-rollback
//!   paths a genuine stage crash would take, for non-store failures.
//! - [`StageFaultMode::Delay`] sleeps before the stage runs, widening race
//!   windows for cancellation and coalescing tests.
//! - [`StageFaultMode::Stall`] parks the executing thread indefinitely —
//!   the scenario the service's stall watchdog exists to detect.
//!
//! Faults change *who pays and who fails*, never what a completing request
//! computes: any schedule that permits a request to finish leaves its
//! deployment bit-identical to the fault-free run (`tests/chaos.rs` holds
//! the system to that; see `docs/faults.md` for the full model).

use nerflex_bake::FaultSchedule;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Number of faultable pipeline stages (size of the per-stage tables).
const STAGE_COUNT: usize = 4;

/// A pipeline stage that faults can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageOp {
    /// Detail-based scene segmentation.
    Segmentation,
    /// Lightweight per-object profiling.
    Profiling,
    /// DP configuration selection.
    Selection,
    /// Parallel baking of the selected configurations.
    Baking,
}

impl StageOp {
    fn index(self) -> usize {
        match self {
            StageOp::Segmentation => 0,
            StageOp::Profiling => 1,
            StageOp::Selection => 2,
            StageOp::Baking => 3,
        }
    }

    /// Lowercase stage name as it appears in error messages.
    pub fn name(self) -> &'static str {
        match self {
            StageOp::Segmentation => "segmentation",
            StageOp::Profiling => "profiling",
            StageOp::Selection => "selection",
            StageOp::Baking => "baking",
        }
    }
}

impl fmt::Display for StageOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected stage fault does to the intercepted stage entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageFaultMode {
    /// Unwind with a typed [`StageFaultPanic`] payload — a stage crash.
    Panic,
    /// Unwind with a typed [`StageFaultPanic`] payload marked as a clean
    /// failure rather than a crash. Classified identically; the message
    /// distinguishes the flavors in logs and assertions.
    Fail,
    /// Sleep for the given duration before the stage runs. Results are
    /// unchanged; only timing (and therefore race windows) moves.
    Delay(Duration),
    /// Park the executing thread indefinitely — a stage that will never
    /// finish. Only the service's stall watchdog gets a request out of
    /// this; the thread itself is abandoned.
    Stall,
}

/// Typed panic payload raised by [`StageFaultMode::Panic`] /
/// [`StageFaultMode::Fail`].
///
/// The service's panic classifier downcasts unwound payloads to this type
/// to convert an injected stage fault into a per-request
/// [`PipelineError::Stage`](crate::pipeline::PipelineError::Stage) outcome
/// instead of dying.
#[derive(Debug, Clone)]
pub struct StageFaultPanic {
    /// The stage that was intercepted.
    pub stage: StageOp,
    /// Per-stage invocation index (0-based) at which the fault fired.
    pub index: usize,
    /// `true` for [`StageFaultMode::Fail`], `false` for
    /// [`StageFaultMode::Panic`].
    pub clean: bool,
}

impl fmt::Display for StageFaultPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flavor = if self.clean { "failed" } else { "panicked" };
        write!(f, "injected stage fault: {} {flavor} (invocation {})", self.stage, self.index)
    }
}

/// A deterministic schedule of compute-stage faults —
/// [`FaultSchedule`] instantiated over the four [`StageOp`]s. The same
/// plan applied to the same stage-invocation sequence always injects the
/// same faults, so a failing seed replays exactly.
#[derive(Debug, Clone, Default)]
pub struct StageFaultPlan {
    schedule: FaultSchedule<StageFaultMode, STAGE_COUNT>,
}

impl StageFaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        Self::default()
    }

    /// Set the seed for the noise layer.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.schedule = self.schedule.with_seed(seed);
        self
    }

    /// Inject noise-layer faults on roughly `percent`% of `stage`
    /// invocations, firing `mode` (one mode shared by all stages).
    pub fn with_noise(mut self, stage: StageOp, percent: u8, mode: StageFaultMode) -> Self {
        self.schedule = self.schedule.with_noise(stage.index(), percent).with_noise_mode(mode);
        self
    }

    /// Fire `mode` on every invocation of `stage` with index ≥ `from`.
    pub fn persistent_from(mut self, stage: StageOp, from: usize, mode: StageFaultMode) -> Self {
        self.schedule = self.schedule.persistent_from(stage.index(), from, mode);
        self
    }

    /// Fire `mode` on exactly the `n`-th invocation (0-based) of `stage`.
    pub fn fail_nth(mut self, stage: StageOp, n: usize, mode: StageFaultMode) -> Self {
        self.schedule = self.schedule.fail_nth(stage.index(), n, mode);
        self
    }

    /// The fault (if any) this plan injects for invocation `index` of
    /// `stage`.
    pub fn decide(&self, stage: StageOp, index: usize) -> Option<StageFaultMode> {
        self.schedule.decide(stage.index(), index)
    }
}

/// Injection counters for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageOpFaultStats {
    /// Invocations intercepted (faulted or not).
    pub calls: usize,
    /// Panics injected ([`StageFaultMode::Panic`]).
    pub panics: usize,
    /// Clean failures injected ([`StageFaultMode::Fail`]).
    pub failures: usize,
    /// Delays injected.
    pub delays: usize,
    /// Stalls injected.
    pub stalls: usize,
}

/// Per-stage injection counters for a [`StageFaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageFaultStats {
    /// Counters for segmentation.
    pub segmentation: StageOpFaultStats,
    /// Counters for profiling.
    pub profiling: StageOpFaultStats,
    /// Counters for selection.
    pub selection: StageOpFaultStats,
    /// Counters for baking.
    pub baking: StageOpFaultStats,
}

impl StageFaultStats {
    fn op_mut(&mut self, stage: StageOp) -> &mut StageOpFaultStats {
        match stage {
            StageOp::Segmentation => &mut self.segmentation,
            StageOp::Profiling => &mut self.profiling,
            StageOp::Selection => &mut self.selection,
            StageOp::Baking => &mut self.baking,
        }
    }

    /// Counters for one stage.
    pub fn op(&self, stage: StageOp) -> StageOpFaultStats {
        match stage {
            StageOp::Segmentation => self.segmentation,
            StageOp::Profiling => self.profiling,
            StageOp::Selection => self.selection,
            StageOp::Baking => self.baking,
        }
    }

    /// Total faults injected across all stages.
    pub fn total_injected(&self) -> usize {
        [self.segmentation, self.profiling, self.selection, self.baking]
            .iter()
            .map(|op| op.panics + op.failures + op.delays + op.stalls)
            .sum()
    }
}

/// Applies a [`StageFaultPlan`] at pipeline stage entries, counting
/// per-stage invocations across the pipeline's lifetime (so a plan
/// addresses "the 3rd bake" regardless of which request triggers it).
///
/// Thread-safe with the same caveat as the store-side injector: under
/// concurrency the *set* of faulted indices is deterministic, which thread
/// draws one is not — concurrent tests assert aggregate properties.
#[derive(Debug, Default)]
pub struct StageFaultInjector {
    plan: StageFaultPlan,
    counts: [AtomicUsize; STAGE_COUNT],
    stats: Mutex<StageFaultStats>,
}

impl StageFaultInjector {
    /// An injector applying `plan`.
    pub fn new(plan: StageFaultPlan) -> Self {
        Self { plan, counts: Default::default(), stats: Mutex::new(StageFaultStats::default()) }
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> StageFaultStats {
        *self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one invocation of `stage` and apply the scheduled fault, if
    /// any: delays sleep here, stalls never return, panics/failures unwind
    /// with a [`StageFaultPanic`] payload.
    ///
    /// # Panics
    ///
    /// Deliberately, with a [`StageFaultPanic`] payload, when the plan
    /// schedules [`StageFaultMode::Panic`] or [`StageFaultMode::Fail`] for
    /// this invocation.
    pub fn gate(&self, stage: StageOp) {
        let index = self.counts[stage.index()].fetch_add(1, Ordering::Relaxed);
        let mode = self.plan.decide(stage, index);
        {
            let mut stats = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
            let counters = stats.op_mut(stage);
            counters.calls += 1;
            match mode {
                Some(StageFaultMode::Panic) => counters.panics += 1,
                Some(StageFaultMode::Fail) => counters.failures += 1,
                Some(StageFaultMode::Delay(_)) => counters.delays += 1,
                Some(StageFaultMode::Stall) => counters.stalls += 1,
                None => {}
            }
        }
        match mode {
            None => {}
            Some(StageFaultMode::Delay(duration)) => std::thread::sleep(duration),
            Some(StageFaultMode::Stall) => loop {
                std::thread::park_timeout(Duration::from_millis(50));
            },
            Some(mode @ (StageFaultMode::Panic | StageFaultMode::Fail)) => {
                std::panic::panic_any(StageFaultPanic {
                    stage,
                    index,
                    clean: mode == StageFaultMode::Fail,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_nth_fires_on_exactly_the_scheduled_invocation() {
        let injector = StageFaultInjector::new(StageFaultPlan::none().fail_nth(
            StageOp::Profiling,
            1,
            StageFaultMode::Panic,
        ));
        injector.gate(StageOp::Profiling); // invocation 0 passes
        injector.gate(StageOp::Segmentation); // other stages unaffected
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.gate(StageOp::Profiling); // invocation 1 fires
        }))
        .expect_err("scheduled panic unwinds");
        let fault = payload.downcast::<StageFaultPanic>().expect("typed payload");
        assert_eq!(fault.stage, StageOp::Profiling);
        assert_eq!(fault.index, 1);
        assert!(!fault.clean);
        assert!(fault.to_string().contains("profiling panicked"));
        injector.gate(StageOp::Profiling); // invocation 2 passes again
        let stats = injector.stats();
        assert_eq!(stats.profiling.calls, 3);
        assert_eq!(stats.profiling.panics, 1);
        assert_eq!(stats.segmentation.calls, 1);
        assert_eq!(stats.total_injected(), 1);
    }

    #[test]
    fn fail_mode_unwinds_with_a_clean_payload_and_delay_only_sleeps() {
        let injector = StageFaultInjector::new(
            StageFaultPlan::none().fail_nth(StageOp::Baking, 0, StageFaultMode::Fail).fail_nth(
                StageOp::Baking,
                1,
                StageFaultMode::Delay(Duration::from_millis(1)),
            ),
        );
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            injector.gate(StageOp::Baking);
        }))
        .expect_err("fail mode unwinds");
        let fault = payload.downcast::<StageFaultPanic>().expect("typed payload");
        assert!(fault.clean);
        assert!(fault.to_string().contains("baking failed"));
        injector.gate(StageOp::Baking); // the delay returns normally
        assert_eq!(injector.stats().op(StageOp::Baking).delays, 1);
        assert_eq!(injector.stats().op(StageOp::Baking).failures, 1);
    }

    #[test]
    fn seeded_noise_replays_identically() {
        let plan = StageFaultPlan::none().with_seed(42).with_noise(
            StageOp::Selection,
            30,
            StageFaultMode::Fail,
        );
        let a: Vec<bool> = (0..100).map(|i| plan.decide(StageOp::Selection, i).is_some()).collect();
        let b: Vec<bool> = (0..100).map(|i| plan.decide(StageOp::Selection, i).is_some()).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let fired = a.iter().filter(|hit| **hit).count();
        assert!((10..=50).contains(&fired), "~30% of 100 invocations, got {fired}");
        assert!(
            (0..100).all(|i| plan.decide(StageOp::Baking, i).is_none()),
            "noise rates are per-stage"
        );
    }
}
